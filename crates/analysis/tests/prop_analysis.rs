//! Property-based tests of the Section 6 closed forms: inverse
//! relationships, monotonicity, and domain behavior.

use proptest::prelude::*;
use tta_analysis::{
    bauer_min_buffer_bits, clock_ratio_limit, figure3_series, max_buffer_bits, max_frame_bits,
    max_rho, min_buffer_bits, rho, rho_from_crystal_ppm,
};

proptest! {
    /// Equations (4) and (7) are inverses of each other.
    #[test]
    fn eq4_and_eq7_invert(
        f_min in 6u32..512,
        f_max in 16u32..100_000,
        le in 0u32..5,
    ) {
        prop_assume!(f_min > le + 1);
        let Ok(rho_limit) = max_rho(f_min, f_max, le) else {
            return Err(TestCaseError::reject("infeasible"));
        };
        prop_assume!(rho_limit < 1.0);
        let back = max_frame_bits(f_min, le, rho_limit).unwrap();
        prop_assert!((back - f64::from(f_max)).abs() < 1e-6 * f64::from(f_max).max(1.0));
    }

    /// f_max is monotone: larger ρ shrinks the largest safe frame;
    /// larger f_min headroom grows it.
    #[test]
    fn eq4_monotonicity(
        f_min in 8u32..256,
        le in 0u32..4,
        rho_a in 1u32..1_000,
        rho_b in 1u32..1_000,
    ) {
        prop_assume!(f_min > le + 1);
        let (lo, hi) = if rho_a <= rho_b { (rho_a, rho_b) } else { (rho_b, rho_a) };
        prop_assume!(lo < hi);
        let f_lo = max_frame_bits(f_min, le, f64::from(hi) * 1e-4).unwrap();
        let f_hi = max_frame_bits(f_min, le, f64::from(lo) * 1e-4).unwrap();
        prop_assert!(f_hi > f_lo, "smaller ρ must allow larger frames");
        let f_bigger_min = max_frame_bits(f_min + 8, le, f64::from(hi) * 1e-4).unwrap();
        prop_assert!(f_bigger_min > f_lo, "larger f_min must allow larger frames");
    }

    /// The minimum buffer grows with ρ and frame size; the Bauer variant
    /// always dominates the eq. (1) form.
    #[test]
    fn buffer_bounds_are_monotone_and_ordered(
        le in 0u32..8,
        rho_scaled in 0u32..5_000,
        f_a in 1u32..100_000,
        f_b in 1u32..100_000,
    ) {
        let r = f64::from(rho_scaled) * 1e-4;
        prop_assume!(r < 1.0);
        let (small, large) = if f_a <= f_b { (f_a, f_b) } else { (f_b, f_a) };
        prop_assert!(min_buffer_bits(le, r, small) <= min_buffer_bits(le, r, large));
        prop_assert!(bauer_min_buffer_bits(le, r, large) >= min_buffer_bits(le, r, large));
        // At ρ = 0 both collapse to the line-encoding bits.
        prop_assert_eq!(min_buffer_bits(le, 0.0, large), f64::from(le));
    }

    /// The permitted buffer is always strictly below the smallest frame —
    /// the no-replay guarantee by construction.
    #[test]
    fn max_buffer_never_holds_a_frame(f_min in 1u32..1_000_000) {
        prop_assert!(max_buffer_bits(f_min) < f_min);
    }

    /// The Figure 3 curve is monotone: widening the frame-size range
    /// (smaller f_min at fixed f_max) lowers the admissible clock ratio,
    /// and the ratio is always > 1 and at most f_max/(1+le).
    #[test]
    fn figure3_curve_shape(
        f_max in 32u32..10_000,
        le in 0u32..8,
        f_min_a in 1u32..10_000,
        f_min_b in 1u32..10_000,
    ) {
        let a = f_min_a.min(f_max);
        let b = f_min_b.min(f_max);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let wide = clock_ratio_limit(f_max, lo, le).unwrap();
        let narrow = clock_ratio_limit(f_max, hi, le).unwrap();
        prop_assert!(narrow >= wide, "narrower range must not reduce the ratio");
        let ceiling = clock_ratio_limit(f_max, f_max, le).unwrap();
        prop_assert!(narrow <= ceiling + 1e-12);
        prop_assert!((ceiling - f64::from(f_max) / f64::from(1 + le)).abs() < 1e-9);
    }

    /// Every point emitted by the series generator satisfies its own
    /// equation and the configured floor.
    #[test]
    fn figure3_series_is_self_consistent(
        maxes in prop::collection::vec(16u32..5_000, 1..4),
        floor in 1u32..64,
        steps in 1u32..64,
        le in 0u32..6,
    ) {
        for point in figure3_series(&maxes, floor, steps, le) {
            prop_assert!(point.min_frame_bits >= floor);
            prop_assert!(point.min_frame_bits <= point.max_frame_bits);
            let expected = clock_ratio_limit(point.max_frame_bits, point.min_frame_bits, le).unwrap();
            prop_assert!((point.ratio_limit - expected).abs() < 1e-12);
        }
    }

    /// Figure 3 monotonicity *within each curve*: along one `f_max`
    /// series, raising the minimum frame size never lowers the
    /// admissible clock ratio. (The earlier `figure3_curve_shape` checks
    /// two arbitrary points; this walks whole generated curves in plot
    /// order, which is what the figure actually shows.)
    #[test]
    fn figure3_series_is_monotone_within_each_curve(
        maxes in prop::collection::vec(16u32..5_000, 1..4),
        floor in 1u32..64,
        steps in 2u32..64,
        le in 0u32..6,
    ) {
        let points = figure3_series(&maxes, floor, steps, le);
        for curve in points.chunk_by(|a, b| a.max_frame_bits == b.max_frame_bits) {
            for pair in curve.windows(2) {
                prop_assert!(
                    pair[0].min_frame_bits <= pair[1].min_frame_bits,
                    "series must sweep f_min upward within an f_max curve"
                );
                prop_assert!(
                    pair[0].ratio_limit <= pair[1].ratio_limit + 1e-12,
                    "f_max={}: ratio limit fell from {} to {} as f_min rose",
                    pair[0].max_frame_bits, pair[0].ratio_limit, pair[1].ratio_limit
                );
            }
        }
    }

    /// ρ from rates and ρ from crystal tolerance agree where they overlap:
    /// a guardian `t` ppm fast vs a node `t` ppm slow gives (to first
    /// order) 2t·1e-6.
    #[test]
    fn crystal_rho_matches_rate_rho(t_ppm in 1u32..1_000) {
        let t = f64::from(t_ppm);
        let fast = 1.0 + t * 1e-6;
        let slow = 1.0 - t * 1e-6;
        let from_rates = rho(fast, slow);
        let from_crystals = rho_from_crystal_ppm(t);
        // First-order agreement: relative error below t·1e-6.
        prop_assert!((from_rates - from_crystals).abs() / from_crystals < 2.0 * t * 1e-6 + 1e-9);
    }
}

/// Published anchors from Section 6, pinned exactly. The paper works an
/// example with `f_min = 28` bits (the shortest N-frame), `le = 4`
/// line-encoding bits and ρ = 0.02%: eq. (4) yields a largest safe
/// frame of (28 − 1 − 4) / 0.0002 = 115,000 bits. Inverting with the
/// TTP/C maximum X-frame of 2076 bits, eq. (7) bounds ρ at
/// 23 / 2076 ≈ 1.108%.
#[test]
fn paper_section6_anchors_hold() {
    let f_max = max_frame_bits(28, 4, 0.0002).unwrap();
    assert!(
        (f_max - 115_000.0).abs() < 1e-6,
        "eq. (4) anchor: got {f_max}"
    );

    let rho_limit = max_rho(28, 2076, 4).unwrap();
    assert!(
        (rho_limit - 23.0 / 2076.0).abs() < 1e-12,
        "eq. (7) anchor: got {rho_limit}"
    );
    assert!(
        rho_limit < 0.0111 && rho_limit > 0.0110,
        "the paper quotes ≈1.11%: got {:.4}%",
        rho_limit * 100.0
    );

    // The two anchors are consistent with each other: a 2076-bit X-frame
    // is far below the 115,000-bit ceiling, so the paper's example
    // tolerates much sloppier clocks than crystal oscillators provide.
    assert!(2076.0 < f_max);
}
