//! Property-based tests of the delta-encoded visited set against the
//! plain interning arena.
//!
//! The [`DeltaArena`] stores sparse xor-deltas against BFS parents with
//! periodic keyframes; these tests drive it with randomized
//! parent/child insertion patterns — arbitrary tree shapes, arbitrary
//! word-level differences — and require byte-exact agreement with the
//! full-width [`StateArena`] on every observable: assigned ids,
//! parents, lookups, reconstructed encodings, and whole exploration
//! outcomes through a [`StateCodec`].

use proptest::prelude::*;
use tta_modelcheck::hashing::fx_hash;
use tta_modelcheck::{
    DeltaArena, Explorer, StateArena, StateCodec, TransitionSystem, Visited, WordEncoded, NO_PARENT,
};

/// A four-word encoding, wide enough that keyframes and sparse deltas
/// genuinely differ in payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Wide([u64; 4]);

impl WordEncoded for Wide {
    const WORDS: usize = 4;

    fn write_words(&self, out: &mut [u64]) {
        out.copy_from_slice(&self.0);
    }

    fn from_words(words: &[u64]) -> Self {
        let mut packed = [0u64; 4];
        packed.copy_from_slice(words);
        Wide(packed)
    }
}

/// Dedup-then-intern through the hashed [`Visited`] API, the way the
/// explorers drive both arenas.
fn intern<V: Visited<Wide>>(visited: &mut V, encoded: Wide, parent: u32) -> u32 {
    let hash = fx_hash(&encoded);
    match visited.lookup_hashed(hash, &encoded) {
        Some(id) => id,
        None => visited.insert_new_hashed(hash, encoded, parent),
    }
}

/// Insertion scripts: each step carries four small words (small ranges
/// force duplicates and near-duplicate parent/child pairs) plus a
/// parent selector resolved against the ids inserted so far.
fn arb_script() -> impl Strategy<Value = Vec<(u64, u64, u64, u64, u8)>> {
    prop::collection::vec((0..6u64, 0..6u64, 0..6u64, 0..6u64, any::<u8>()), 1..120)
}

proptest! {
    /// Every inserted encoding reconstructs bit-for-bit from its delta
    /// chain, and lookups resolve to the id that stored it.
    #[test]
    fn delta_arena_round_trips_arbitrary_parent_child_pairs(script in arb_script()) {
        let mut arena: DeltaArena<Wide> = DeltaArena::new();
        let mut inserted: Vec<(u32, Wide)> = Vec::new();
        for (a, b, c, d, pick) in script {
            let encoded = Wide([a, b, c, d]);
            let parent = if inserted.is_empty() {
                NO_PARENT
            } else {
                inserted[pick as usize % inserted.len()].0
            };
            let id = intern(&mut arena, encoded, parent);
            inserted.push((id, encoded));
        }
        for &(id, encoded) in &inserted {
            prop_assert_eq!(arena.decode(id), encoded, "reconstruction at id {}", id);
            prop_assert_eq!(
                arena.lookup_hashed(fx_hash(&encoded), &encoded),
                Some(id),
                "lookup of id {}", id
            );
        }
    }

    /// The delta arena and the plain arena assign identical ids and
    /// parents for identical insertion sequences, and agree on every
    /// stored encoding.
    #[test]
    fn delta_and_plain_arenas_agree_on_arbitrary_scripts(script in arb_script()) {
        let mut delta: DeltaArena<Wide> = DeltaArena::new();
        let mut plain: StateArena<Wide> = StateArena::new();
        for (a, b, c, d, pick) in script {
            let encoded = Wide([a, b, c, d]);
            let parent = if plain.is_empty() {
                NO_PARENT
            } else {
                u32::try_from(pick as usize % plain.len()).unwrap()
            };
            let delta_id = intern(&mut delta, encoded, parent);
            let plain_id = intern(&mut plain, encoded, parent);
            prop_assert_eq!(delta_id, plain_id, "id assignment diverged");
        }
        prop_assert_eq!(Visited::len(&delta), plain.len());
        for id in 0..plain.len() as u32 {
            prop_assert_eq!(&arena_decode(&delta, id).0, &plain.get(id).0, "encoding at {}", id);
            prop_assert_eq!(
                Visited::parent(&delta, id),
                plain.parent(id),
                "parent at {}", id
            );
        }
    }
}

fn arena_decode(arena: &DeltaArena<Wide>, id: u32) -> Wide {
    arena.decode(id)
}

/// A random digraph explored through a packing codec — the xor-delta
/// path must reproduce the plain-arena exploration exactly, trace
/// included.
#[derive(Debug, Clone)]
struct RandomGraph {
    edges: Vec<Vec<u32>>,
    bad: Vec<bool>,
}

impl TransitionSystem for RandomGraph {
    type State = u32;

    fn initial_states(&self) -> Vec<u32> {
        vec![0]
    }

    fn successors(&self, s: &u32, out: &mut Vec<u32>) {
        out.extend(self.edges[*s as usize].iter().copied());
    }
}

/// Spreads the node id across one word (delta against the parent is
/// still sparse but nonzero).
#[derive(Debug, Clone, Copy)]
struct SpreadCodec;

impl StateCodec for SpreadCodec {
    type State = u32;
    type Encoded = u64;

    fn encode(&self, s: &u32) -> u64 {
        u64::from(*s) << 17 | u64::from(*s)
    }

    fn decode(&self, e: &u64) -> u32 {
        (*e & 0x1FFFF) as u32
    }
}

fn arb_graph(max_nodes: usize) -> impl Strategy<Value = RandomGraph> {
    (2..max_nodes).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(0..n as u32, 0..4), n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(0.0f64..1.0, n),
        )
            .prop_map(move |(edges, coin, weight)| RandomGraph {
                edges,
                bad: coin
                    .into_iter()
                    .zip(weight)
                    .map(|(c, w)| c && w < 0.15)
                    .collect(),
            })
    })
}

proptest! {
    /// Whole-exploration agreement through a codec: verdict, counts,
    /// and the exact counterexample states.
    #[test]
    fn delta_codec_exploration_matches_plain(graph in arb_graph(40)) {
        let inv = |s: &u32| !graph.bad[*s as usize];
        let plain = Explorer::new().check_with_codec(&graph, &SpreadCodec, inv);
        let delta = Explorer::new().check_with_delta_codec(&graph, &SpreadCodec, inv);
        prop_assert_eq!(delta.verdict, plain.verdict);
        prop_assert_eq!(delta.stats.states_explored, plain.stats.states_explored);
        prop_assert_eq!(delta.stats.depth_reached, plain.stats.depth_reached);
        match (plain.counterexample, delta.counterexample) {
            (None, None) => {}
            (Some(a), Some(b)) => prop_assert_eq!(a.states(), b.states(), "traces diverged"),
            (a, b) => prop_assert!(false, "one backend found a trace: {:?} vs {:?}", a.is_some(), b.is_some()),
        }
    }
}
