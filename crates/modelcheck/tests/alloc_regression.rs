//! Allocation regression test for the interned visited set.
//!
//! The old visited-set design cloned every state twice (hash-map key +
//! parent link) and allocated per insert; the arena design stores one
//! encoded state in flat vectors. With a packing codec whose encoding is
//! `Copy`, exploration must perform O(log n) allocations (vector
//! doublings and rehashes) — *not* O(n). This test pins that with a
//! counting global allocator: a per-state-allocating regression fails it
//! by two orders of magnitude.
//!
//! (The library forbids `unsafe`; a `GlobalAlloc` impl needs it, which
//! is exactly why this lives in an integration test.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tta_modelcheck::{parallel::ParallelExplorer, Explorer, StateCodec, TransitionSystem, Verdict};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to the `System` allocator
// (which upholds the `GlobalAlloc` contract) after bumping a Relaxed
// counter; the counter itself never allocates, so no reentrancy.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller contract forwarded unchanged to `System.alloc`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same `layout`, same contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller contract forwarded unchanged to `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from our `alloc`, which delegated
        // to `System`, so they are valid for `System.dealloc`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller contract forwarded unchanged to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` originate from `System` via our
        // `alloc`; `new_size` is passed through untouched.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A grid whose state is heap-free; successors write into the reused
/// buffer, so the only allocations left are the visited set's own.
struct Grid {
    bound: u32,
}

impl TransitionSystem for Grid {
    type State = (u32, u32);

    fn initial_states(&self) -> Vec<(u32, u32)> {
        vec![(0, 0)]
    }

    fn successors(&self, s: &(u32, u32), out: &mut Vec<(u32, u32)>) {
        if s.0 < self.bound {
            out.push((s.0 + 1, s.1));
        }
        if s.1 < self.bound {
            out.push((s.0, s.1 + 1));
        }
    }
}

/// Packs a grid coordinate into one word; encode is allocation-free.
#[derive(Debug, Clone, Copy)]
struct PackCodec;

impl StateCodec for PackCodec {
    type State = (u32, u32);
    type Encoded = u64;

    fn encode(&self, s: &(u32, u32)) -> u64 {
        u64::from(s.0) << 32 | u64::from(s.1)
    }

    fn decode(&self, e: &u64) -> (u32, u32) {
        ((e >> 32) as u32, *e as u32)
    }
}

#[test]
fn interned_exploration_does_not_allocate_per_state() {
    let grid = Grid { bound: 100 };
    // Warm up lazy runtime allocations (stdout locks etc.) outside the
    // measured window.
    let warmup = Explorer::new().check_with_codec(&grid, &PackCodec, |_: &(u32, u32)| true);
    assert_eq!(warmup.verdict, Verdict::Holds);

    let before = allocations();
    let outcome = Explorer::new().check_with_codec(&grid, &PackCodec, |_: &(u32, u32)| true);
    let spent = allocations() - before;

    assert_eq!(outcome.verdict, Verdict::Holds);
    assert_eq!(outcome.stats.states_explored, 101 * 101);
    // 10k states. Doubling vectors + rehashes + per-layer frontier vecs
    // cost a few hundred allocations; one-allocation-per-state designs
    // cost ≥ 10k. Generous slack keeps the test robust across allocator
    // and std versions while still catching an O(n) regression.
    assert!(
        spent < 2_000,
        "exploring {} states allocated {spent} times — per-state allocation regression",
        outcome.stats.states_explored
    );
}

#[test]
fn chunked_exploration_does_not_allocate_per_state() {
    // The parallel explorer's chunked successor path: every frontier
    // chunk is expanded into one batched proposal vector, then merged.
    // Grid layers stay under the default chunk size, so `map_chunks`
    // runs the worker inline — the measurement exercises the
    // expand/merge batching itself, deterministically, without thread
    // spawn noise. Budget: a few allocations per BFS layer (the
    // proposal batch, the chunk-output slots, the next frontier), not
    // per state.
    let grid = Grid { bound: 100 };
    let explorer = ParallelExplorer::new().threads(2);
    let warmup = explorer.check_with_codec(&grid, &PackCodec, |_: &(u32, u32)| true);
    assert_eq!(warmup.verdict, Verdict::Holds);

    let before = allocations();
    let outcome = explorer.check_with_codec(&grid, &PackCodec, |_: &(u32, u32)| true);
    let spent = allocations() - before;

    assert_eq!(outcome.verdict, Verdict::Holds);
    assert_eq!(outcome.stats.states_explored, 101 * 101);
    // 10k states over ~200 layers: layer-proportional costs land in the
    // low thousands; one-allocation-per-state designs cost ≥ 10k.
    assert!(
        spent < 4_000,
        "chunked exploration of {} states allocated {spent} times — per-state allocation regression",
        outcome.stats.states_explored
    );
}

#[test]
fn delta_exploration_does_not_allocate_per_state() {
    // The delta arena stores xor-deltas in one growing payload vector;
    // reconstruction uses a fixed stack buffer. Its allocation profile
    // must match the plain arena's: vector doublings and rehashes only.
    let grid = Grid { bound: 100 };
    let warmup = Explorer::new().check_with_delta_codec(&grid, &PackCodec, |_: &(u32, u32)| true);
    assert_eq!(warmup.verdict, Verdict::Holds);

    let before = allocations();
    let outcome = Explorer::new().check_with_delta_codec(&grid, &PackCodec, |_: &(u32, u32)| true);
    let spent = allocations() - before;

    assert_eq!(outcome.verdict, Verdict::Holds);
    assert_eq!(outcome.stats.states_explored, 101 * 101);
    assert!(
        spent < 2_000,
        "delta exploration of {} states allocated {spent} times — per-state allocation regression",
        outcome.stats.states_explored
    );
}

#[test]
fn counter_sees_per_state_allocations_when_they_happen() {
    // Sanity-check the instrument itself: exploring heap-carrying states
    // through the identity codec *must* allocate at least once per state
    // (each visited state owns a Vec). If this fails, the counting
    // allocator is not measuring what the regression test assumes.
    struct HeapGrid {
        bound: u32,
    }

    impl TransitionSystem for HeapGrid {
        type State = Vec<u32>;

        fn initial_states(&self) -> Vec<Vec<u32>> {
            vec![vec![0, 0]]
        }

        fn successors(&self, s: &Vec<u32>, out: &mut Vec<Vec<u32>>) {
            if s[0] < self.bound {
                out.push(vec![s[0] + 1, s[1]]);
            }
            if s[1] < self.bound {
                out.push(vec![s[0], s[1] + 1]);
            }
        }
    }

    let grid = HeapGrid { bound: 30 };
    let before = allocations();
    let outcome = Explorer::new().check(&grid, |_: &Vec<u32>| true);
    let spent = allocations() - before;

    assert_eq!(outcome.stats.states_explored, 31 * 31);
    assert!(
        spent >= outcome.stats.states_explored,
        "identity-interned heap states must allocate per state, saw {spent}"
    );
}
