//! Property-based tests of the exploration engines against each other on
//! randomized graph-shaped transition systems.

use proptest::prelude::*;
use tta_modelcheck::parallel::ParallelExplorer;
use tta_modelcheck::{BoundedChecker, BoundedVerdict, Explorer, TransitionSystem, Verdict};

/// A random finite digraph over `0..n` with designated bad states.
#[derive(Debug, Clone)]
struct RandomGraph {
    edges: Vec<Vec<u32>>,
    bad: Vec<bool>,
}

impl TransitionSystem for RandomGraph {
    type State = u32;

    fn initial_states(&self) -> Vec<u32> {
        vec![0]
    }

    fn successors(&self, s: &u32, out: &mut Vec<u32>) {
        out.extend(self.edges[*s as usize].iter().copied());
    }
}

fn arb_graph(max_nodes: usize) -> impl Strategy<Value = RandomGraph> {
    (2..max_nodes).prop_flat_map(|n| {
        (
            prop::collection::vec(prop::collection::vec(0..n as u32, 0..4), n),
            prop::collection::vec(any::<bool>(), n),
            // Keep violations rare enough that both verdicts occur.
            prop::collection::vec(0.0f64..1.0, n),
        )
            .prop_map(move |(edges, coin, weight)| RandomGraph {
                edges,
                bad: coin
                    .into_iter()
                    .zip(weight)
                    .map(|(c, w)| c && w < 0.15)
                    .collect(),
            })
    })
}

/// Reference reachability: plain DFS over the graph.
fn reference_reachable(graph: &RandomGraph) -> Vec<u32> {
    let mut seen = vec![false; graph.edges.len()];
    let mut stack = vec![0u32];
    seen[0] = true;
    let mut order = Vec::new();
    while let Some(s) = stack.pop() {
        order.push(s);
        for next in &graph.edges[s as usize] {
            if !seen[*next as usize] {
                seen[*next as usize] = true;
                stack.push(*next);
            }
        }
    }
    order.sort_unstable();
    order
}

/// Reference shortest distance to a bad state (BFS).
fn reference_shortest_violation(graph: &RandomGraph) -> Option<usize> {
    use std::collections::VecDeque;
    let mut dist = vec![usize::MAX; graph.edges.len()];
    let mut queue = VecDeque::new();
    dist[0] = 0;
    queue.push_back(0u32);
    if graph.bad[0] {
        return Some(0);
    }
    while let Some(s) = queue.pop_front() {
        for next in &graph.edges[s as usize] {
            if dist[*next as usize] == usize::MAX {
                dist[*next as usize] = dist[s as usize] + 1;
                if graph.bad[*next as usize] {
                    return Some(dist[*next as usize]);
                }
                queue.push_back(*next);
            }
        }
    }
    None
}

proptest! {
    /// The explorer's verdict matches reference reachability of bad
    /// states, and a Violated verdict comes with a minimal-length trace
    /// that really is a path.
    #[test]
    fn bfs_matches_reference(graph in arb_graph(40)) {
        let inv = |s: &u32| !graph.bad[*s as usize];
        let outcome = Explorer::new().check(&graph, inv);
        match reference_shortest_violation(&graph) {
            None => {
                prop_assert_eq!(outcome.verdict, Verdict::Holds);
                prop_assert_eq!(
                    outcome.stats.states_explored as usize,
                    reference_reachable(&graph).len()
                );
            }
            Some(dist) => {
                prop_assert_eq!(outcome.verdict, Verdict::Violated);
                let trace = outcome.counterexample.unwrap();
                prop_assert_eq!(trace.transition_count(), dist, "trace must be shortest");
                prop_assert!(graph.bad[*trace.violating_state() as usize]);
                for (a, b) in trace.transitions() {
                    prop_assert!(
                        graph.edges[*a as usize].contains(b),
                        "trace edge {a}→{b} not in graph"
                    );
                }
            }
        }
    }

    /// Parallel and sequential BFS agree on verdict, state count and
    /// counterexample length.
    #[test]
    fn parallel_agrees_with_sequential(graph in arb_graph(40), threads in 1usize..5) {
        let inv = |s: &u32| !graph.bad[*s as usize];
        let seq = Explorer::new().check(&graph, inv);
        let par = ParallelExplorer::new().threads(threads).check(&graph, inv);
        prop_assert_eq!(par.verdict, seq.verdict);
        if seq.verdict == Verdict::Holds {
            prop_assert_eq!(par.stats.states_explored, seq.stats.states_explored);
        }
        if let (Some(a), Some(b)) = (seq.counterexample, par.counterexample) {
            prop_assert_eq!(a.transition_count(), b.transition_count());
            // The parallel trace is a real path too.
            for (x, y) in b.transitions() {
                prop_assert!(graph.edges[*x as usize].contains(y));
            }
        }
    }

    /// The bounded checker is sound (finds nothing that BFS would not)
    /// and complete up to its bound (finds everything within it).
    #[test]
    fn bounded_is_sound_and_bound_complete(graph in arb_graph(30), bound in 0u64..20) {
        let inv = |s: &u32| !graph.bad[*s as usize];
        let outcome = BoundedChecker::new(bound).check(&graph, inv);
        match reference_shortest_violation(&graph) {
            Some(dist) if (dist as u64) <= bound => {
                prop_assert_eq!(outcome.verdict, BoundedVerdict::Violated);
                let trace = outcome.counterexample.unwrap();
                prop_assert!(trace.transition_count() as u64 <= bound);
                prop_assert!(graph.bad[*trace.violating_state() as usize]);
                for (a, b) in trace.transitions() {
                    prop_assert!(graph.edges[*a as usize].contains(b));
                }
            }
            Some(_) | None => {
                // Violation beyond the bound (or none at all): DFS must
                // not invent one.
                if outcome.verdict == BoundedVerdict::Violated {
                    let trace = outcome.counterexample.unwrap();
                    prop_assert!(graph.bad[*trace.violating_state() as usize]);
                }
            }
        }
    }

    /// State budgets are hard caps.
    #[test]
    fn budgets_cap_exploration(graph in arb_graph(60), cap in 1u64..20) {
        let outcome = Explorer::new().max_states(cap).check(&graph, |_: &u32| true);
        prop_assert!(outcome.stats.states_explored <= cap);
        if (reference_reachable(&graph).len() as u64) > cap {
            prop_assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        }
    }
}
