//! Loom model of the parallel explorer's merge-phase handshake.
//!
//! `ParallelExplorer::check_with_codec` phase 2 gives each merge worker
//! exclusive `&mut` access to a contiguous range of visited-set shards;
//! the only *shared* mutable state is the `AtomicU64` exploration
//! budget, claimed with an optimistic `fetch_add` and rolled back with
//! `fetch_sub` on overshoot (see `merge_shard_group` in
//! `src/parallel.rs`). This test re-states that handshake as a loom
//! model and checks, for every explored interleaving:
//!
//! * the counter never drifts: its final value equals the number of
//!   states actually accepted (every overshoot is rolled back);
//! * the budget is a hard cap, and any worker reporting `budget_hit`
//!   implies the cap was genuinely exhausted (no false cut-offs from
//!   a neighbor's in-flight overshoot);
//! * shard ownership keeps accepted global ids disjoint across workers.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p tta-modelcheck
//! --test loom_merge`. Under the vendored offline stub this runs once
//! on plain threads; with the real loom it explores all interleavings.
#![cfg(loom)]

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::Arc;
use loom::thread;

const SHARD_BITS: u32 = 4;

/// The merge loop of `merge_shard_group`, reduced to its shared-state
/// essence: claim one budget slot per proposal, roll back and stop on
/// overshoot, record accepted ids for the worker's own shard.
fn merge_worker(
    shard: u32,
    proposals: u32,
    explored: &AtomicU64,
    max_states: u64,
) -> (Vec<u32>, bool) {
    let mut next = Vec::new();
    let mut budget_hit = false;
    for local in 0..proposals {
        if explored.fetch_add(1, Ordering::Relaxed) >= max_states {
            explored.fetch_sub(1, Ordering::Relaxed);
            budget_hit = true;
            break;
        }
        next.push((local << SHARD_BITS) | shard);
    }
    (next, budget_hit)
}

fn run_model(proposals: [u32; 2], max_states: u64) {
    loom::model(move || {
        let explored = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = proposals
            .iter()
            .enumerate()
            .map(|(shard, &n)| {
                let explored = Arc::clone(&explored);
                thread::spawn(move || merge_worker(shard as u32, n, &explored, max_states))
            })
            .collect();
        let results: Vec<(Vec<u32>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        let accepted: u64 = results.iter().map(|(next, _)| next.len() as u64).sum();
        let any_hit = results.iter().any(|&(_, hit)| hit);
        let offered: u64 = proposals.iter().map(|&n| u64::from(n)).sum();

        // Rollbacks leave no residue: the counter is exactly the
        // number of accepted states.
        assert_eq!(explored.load(Ordering::Relaxed), accepted);
        // The budget is a hard cap...
        assert!(accepted <= max_states, "budget exceeded: {accepted}");
        // ...and a reported hit is never a false cut-off: the first
        // overshoot in any interleaving observes real accepts, so a
        // hit implies the cap was fully used.
        if any_hit {
            assert_eq!(accepted, max_states, "worker cut off below budget");
        } else {
            assert_eq!(accepted, offered, "states lost without a budget hit");
        }
        // Shard ownership keeps global ids disjoint across workers.
        let mut ids: Vec<u32> = results.iter().flat_map(|(next, _)| next.clone()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len() as u64, accepted, "duplicate global id");
    });
}

#[test]
fn merge_budget_handshake_under_contention() {
    // 6 proposals against a budget of 4: some interleaving order must
    // lose, and every one of them must cut off exactly at the cap.
    run_model([3, 3], 4);
}

#[test]
fn merge_budget_handshake_under_budget() {
    // 4 proposals against a budget of 8: nothing may be dropped and no
    // worker may report a budget hit.
    run_model([2, 2], 8);
}

#[test]
fn merge_budget_handshake_exact_fit() {
    // Offered == budget: all accepted; a hit report would be a false
    // cut-off unless the cap is genuinely consumed (it is, exactly).
    run_model([2, 2], 4);
}
