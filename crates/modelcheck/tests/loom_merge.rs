//! Loom model of the work-stealing chunk-claim handshake.
//!
//! `map_chunks` (src/chunks.rs) is the only concurrency in the parallel
//! explorer and the chunked `FairGraph` builder: workers claim chunk
//! indices off one `AtomicUsize` with `fetch_add`, stash each chunk's
//! output tagged with its index, and the caller adopts the outputs in
//! chunk-index order after the scope joins. Everything downstream
//! (merge order, determinism, budget semantics) is sequential code that
//! relies on exactly two properties of this handshake, re-stated here
//! as a loom model and checked over every interleaving:
//!
//! * **exactly-once partition** — every chunk index in `0..n_chunks`
//!   is claimed by exactly one worker: no index is lost, none is
//!   processed twice;
//! * **order-independent adoption** — reassembling the tagged outputs
//!   in index order yields the same sequence no matter which worker
//!   claimed which chunk or in which order they ran.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p tta-modelcheck
//! --test loom_merge`. Under the vendored offline stub this runs once
//! on plain threads; with the real loom it explores all interleavings.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use loom::thread;

/// The worker loop of `map_chunks`, reduced to its shared-state
/// essence: steal indices until the counter runs past the chunk count,
/// record `(index, output)` pairs.
fn claim_worker(next: &AtomicUsize, n_chunks: usize) -> Vec<(usize, usize)> {
    let mut claimed = Vec::new();
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n_chunks {
            break;
        }
        // The "output" is a pure function of the chunk index, as in the
        // real scheduler (chunk boundaries depend only on the items).
        claimed.push((i, i * 10));
    }
    claimed
}

fn run_model(n_chunks: usize, workers: usize) {
    loom::model(move || {
        let next = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = Arc::clone(&next);
                thread::spawn(move || claim_worker(&next, n_chunks))
            })
            .collect();
        let parts: Vec<Vec<(usize, usize)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();

        // Exactly-once partition: adopting into slots must fill every
        // slot exactly once.
        let mut slots: Vec<Option<usize>> = vec![None; n_chunks];
        for part in &parts {
            for &(i, out) in part {
                assert!(i < n_chunks, "claimed index {i} out of range");
                assert!(slots[i].is_none(), "chunk {i} claimed twice");
                slots[i] = Some(out);
            }
        }
        let adopted: Vec<usize> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("chunk {i} never claimed")))
            .collect();

        // Order-independent adoption: the reassembled sequence is the
        // sequential result, whatever the interleaving did.
        let expected: Vec<usize> = (0..n_chunks).map(|i| i * 10).collect();
        assert_eq!(adopted, expected, "adoption order diverged");

        // The claim counter overshoots by at most one failed claim per
        // worker — the loop's exit reads — and never loses a claim.
        let final_count = next.load(Ordering::Relaxed);
        assert!(
            final_count >= n_chunks && final_count <= n_chunks + workers,
            "counter drifted: {final_count} for {n_chunks} chunks / {workers} workers"
        );
    });
}

#[test]
fn chunk_claims_partition_exactly_once_two_workers() {
    // More chunks than workers: stealing must cover the tail.
    run_model(4, 2);
}

#[test]
fn chunk_claims_partition_exactly_once_three_workers() {
    // More workers than chunks: the surplus workers must exit without
    // claiming and without disturbing the partition.
    run_model(2, 3);
}

#[test]
fn single_chunk_is_claimed_by_exactly_one_worker() {
    run_model(1, 2);
}
