//! Frontier-parallel breadth-first exploration.
//!
//! Layer-synchronous BFS with a two-phase, low-contention layer step —
//! no locks anywhere:
//!
//! 1. **Expand** — the current layer is split into contiguous chunks,
//!    one per worker. Each worker decodes its states from the shared
//!    (read-only) shard arenas, generates successors into a reused
//!    buffer, dedups them against the global visited set and a
//!    per-thread local set, and routes survivors into per-shard output
//!    buckets by the *high* bits of their Fx hash.
//! 2. **Merge** — shards are partitioned contiguously across workers
//!    (shard ownership), so every worker gets exclusive `&mut` access
//!    to its shard arenas and drains the matching buckets from every
//!    expander in deterministic order: no mutex, no CAS loop, just a
//!    global atomic counter for the state budget.
//!
//! A state's global id is `(local_index << SHARD_BITS) | shard`; parent
//! links are these `u32` ids, so trace reconstruction walks indices
//! instead of cloning states. Because a violating layer is always
//! completed (same as the sequential [`crate::Explorer`]), verdicts,
//! `states_explored` and counterexample *lengths* are identical across
//! backends and thread counts; counterexamples are minimal-depth.

use crate::codec::{IdentityCodec, StateCodec};
use crate::counterexample::Trace;
use crate::explore::{CheckOutcome, Verdict, DEFAULT_MAX_STATES};
use crate::hashing::{fx_hash, FxHashSet};
use crate::intern::{Interned, StateArena, NO_PARENT};
use crate::stats::ExploreStats;
use crate::system::{Invariant, TransitionSystem};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// log2 of [`SHARD_COUNT`]; global ids are `(local << SHARD_BITS) | shard`.
const SHARD_BITS: u32 = 6;

/// Number of visited-set shards (and the maximum useful merge fan-out).
const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// Below this many layer items per worker the phases run inline on the
/// calling thread (identical partitioning, so results are unchanged —
/// spawning would cost more than the work).
const SPAWN_THRESHOLD_PER_WORKER: usize = 32;

/// Shard selector: the **high** bits of the Fx hash. FxHash is a
/// multiply-xor hash whose final multiplication mixes the low bits
/// least, so `hash % SHARD_COUNT` (the old selector) correlated with
/// the low input bits and skewed shard occupancy; the top bits carry
/// the most-mixed entropy.
#[inline]
fn shard_of(hash: u64) -> usize {
    (hash >> (64 - SHARD_BITS)) as usize
}

/// Successors `(encoded, parent id)` one expander routed to one shard.
type Bucket<E> = Vec<(E, u32)>;

/// Every expander's bucket for one shard, in expander order (the
/// deterministic merge order).
type ShardColumn<E> = Vec<Bucket<E>>;

#[inline]
fn global_id(local: u32, shard: usize) -> u32 {
    (local << SHARD_BITS) | shard as u32
}

#[inline]
fn split_id(id: u32) -> (u32, usize) {
    (id >> SHARD_BITS, (id & (SHARD_COUNT as u32 - 1)) as usize)
}

/// Per-expander output: successor proposals routed per shard, plus the
/// transition count of the chunk.
struct Expansion<E> {
    buckets: Vec<Bucket<E>>,
    transitions: u64,
}

/// Per-merger output: the new layer members it interned (global ids, in
/// deterministic shard-then-proposal order), the first violation it
/// saw, and whether it hit the state budget.
struct Merged {
    next: Vec<u32>,
    violation: Option<u32>,
    budget_hit: bool,
}

/// A parallel explicit-state model checker.
///
/// Requires the system and its states to be shareable across threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExplorer {
    threads: usize,
    max_states: u64,
    max_depth: u64,
}

impl ParallelExplorer {
    /// Creates an explorer using the machine's available parallelism and
    /// the same default budgets as the sequential [`crate::Explorer`].
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, usize::from);
        ParallelExplorer {
            threads: threads.max(1),
            max_states: DEFAULT_MAX_STATES,
            max_depth: u64::MAX,
        }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = threads;
        self
    }

    /// Caps the number of distinct states visited.
    #[must_use]
    pub fn max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Caps the BFS depth (number of transitions from an initial state).
    #[must_use]
    pub fn max_depth(mut self, max_depth: u64) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Checks `AG p` in parallel with the identity codec; same outcome
    /// shape as [`crate::Explorer::check`], including a minimal-depth
    /// counterexample on violation.
    pub fn check<T, I>(&self, system: &T, invariant: I) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        T::State: Send + Sync,
        I: Invariant<T::State> + Sync,
    {
        self.check_with_codec(system, &IdentityCodec::new(), invariant)
    }

    /// Checks `AG p` in parallel, interning visited states through
    /// `codec`.
    pub fn check_with_codec<T, C, I>(
        &self,
        system: &T,
        codec: &C,
        invariant: I,
    ) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        T::State: Send,
        C: StateCodec<State = T::State> + Sync,
        C::Encoded: Send + Sync,
        I: Invariant<T::State> + Sync,
    {
        let start = Instant::now();
        let mut stats = ExploreStats::default();
        let mut shards: Vec<StateArena<C::Encoded>> =
            (0..SHARD_COUNT).map(|_| StateArena::new()).collect();
        let explored = AtomicU64::new(0);
        let mut layer: Vec<u32> = Vec::new();
        let mut violation: Option<u32> = None;
        let mut exhausted = false;

        // Layer 0 on the calling thread: initial-state sets are tiny.
        for init in system.initial_states() {
            let encoded = codec.encode(&init);
            let shard = shard_of(fx_hash(&encoded));
            if shards[shard].lookup(&encoded).is_some() {
                continue;
            }
            if explored.fetch_add(1, Ordering::Relaxed) >= self.max_states {
                exhausted = true;
                break;
            }
            let Interned::New(local) = shards[shard].insert_if_absent(encoded, NO_PARENT) else {
                unreachable!("lookup said absent");
            };
            let id = global_id(local, shard);
            if violation.is_none() && !invariant.holds(&init) {
                violation = Some(id);
            }
            layer.push(id);
        }
        stats.frontier_peak = layer.len() as u64;

        let mut depth: u64 = 0;
        while violation.is_none() && !exhausted && !layer.is_empty() && depth < self.max_depth {
            // Phase 1: expand the layer into per-shard proposal buckets.
            let chunk_len = layer.len().div_ceil(self.threads).max(1);
            let spawn =
                self.threads > 1 && layer.len() >= self.threads * SPAWN_THRESHOLD_PER_WORKER;
            let expansions: Vec<Expansion<C::Encoded>> = if spawn {
                std::thread::scope(|scope| {
                    let shards = &shards;
                    let handles: Vec<_> = layer
                        .chunks(chunk_len)
                        .map(|chunk| {
                            scope.spawn(move || expand_chunk(system, codec, shards, chunk))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("expand worker panicked"))
                        .collect()
                })
            } else {
                layer
                    .chunks(chunk_len)
                    .map(|chunk| expand_chunk(system, codec, &shards, chunk))
                    .collect()
            };

            let mut proposals = 0usize;
            for expansion in &expansions {
                stats.transitions += expansion.transitions;
                proposals += expansion.buckets.iter().map(Vec::len).sum::<usize>();
            }

            // Transpose to per-shard columns (bucket per expander, in
            // expander order — the deterministic merge order).
            let mut columns: Vec<ShardColumn<C::Encoded>> = (0..SHARD_COUNT)
                .map(|_| Vec::with_capacity(expansions.len()))
                .collect();
            for expansion in expansions {
                for (shard, bucket) in expansion.buckets.into_iter().enumerate() {
                    if !bucket.is_empty() {
                        columns[shard].push(bucket);
                    }
                }
            }

            // Phase 2: merge, each worker owning a contiguous shard range.
            let group_len = SHARD_COUNT.div_ceil(self.threads);
            let mut groups: Vec<Vec<ShardColumn<C::Encoded>>> = Vec::new();
            {
                let mut iter = columns.into_iter();
                loop {
                    let group: Vec<_> = iter.by_ref().take(group_len).collect();
                    if group.is_empty() {
                        break;
                    }
                    groups.push(group);
                }
            }
            let spawn_merge =
                self.threads > 1 && proposals >= self.threads * SPAWN_THRESHOLD_PER_WORKER;
            let merged: Vec<Merged> = if spawn_merge {
                std::thread::scope(|scope| {
                    let explored = &explored;
                    let invariant = &invariant;
                    let max_states = self.max_states;
                    let handles: Vec<_> = shards
                        .chunks_mut(group_len)
                        .zip(groups)
                        .enumerate()
                        .map(|(group_index, (arenas, columns))| {
                            scope.spawn(move || {
                                merge_shard_group(
                                    arenas,
                                    group_index * group_len,
                                    columns,
                                    codec,
                                    invariant,
                                    explored,
                                    max_states,
                                )
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("merge worker panicked"))
                        .collect()
                })
            } else {
                shards
                    .chunks_mut(group_len)
                    .zip(groups)
                    .enumerate()
                    .map(|(group_index, (arenas, columns))| {
                        merge_shard_group(
                            arenas,
                            group_index * group_len,
                            columns,
                            codec,
                            &invariant,
                            &explored,
                            self.max_states,
                        )
                    })
                    .collect()
            };

            let mut next_layer: Vec<u32> = Vec::new();
            for part in merged {
                next_layer.extend(part.next);
                exhausted |= part.budget_hit;
                if violation.is_none() {
                    violation = part.violation;
                }
            }
            if !next_layer.is_empty() {
                depth += 1;
            }
            stats.frontier_peak = stats.frontier_peak.max(next_layer.len() as u64);
            layer = next_layer;
        }

        stats.depth_reached = depth;
        stats.states_explored = shards.iter().map(|s| s.len() as u64).sum();
        stats.visited_bytes = shards.iter().map(StateArena::approx_bytes).sum();
        stats.duration = start.elapsed();

        match violation {
            Some(id) => {
                let mut path = Vec::new();
                let mut cursor = id;
                loop {
                    let (local, shard) = split_id(cursor);
                    path.push(codec.decode(shards[shard].get(local)));
                    let parent = shards[shard].parent(local);
                    if parent == NO_PARENT {
                        break;
                    }
                    cursor = parent;
                }
                path.reverse();
                CheckOutcome {
                    verdict: Verdict::Violated,
                    counterexample: Some(Trace::new(path)),
                    stats,
                }
            }
            None => CheckOutcome {
                verdict: if exhausted
                    || (!layer.is_empty() && self.max_depth != u64::MAX && depth >= self.max_depth)
                {
                    Verdict::BudgetExhausted
                } else {
                    Verdict::Holds
                },
                counterexample: None,
                stats,
            },
        }
    }
}

/// Phase 1 worker: expands one contiguous chunk of the current layer.
///
/// The successor buffer is reused across every state in the chunk, and
/// a per-thread `local_seen` set drops in-chunk duplicates before they
/// are routed, so the merge phase sees each proposal at most once per
/// expander.
fn expand_chunk<T, C>(
    system: &T,
    codec: &C,
    shards: &[StateArena<C::Encoded>],
    chunk: &[u32],
) -> Expansion<C::Encoded>
where
    T: TransitionSystem,
    C: StateCodec<State = T::State>,
    C::Encoded: Clone + Eq + Hash,
{
    let mut buckets: Vec<Bucket<C::Encoded>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
    let mut local_seen: FxHashSet<C::Encoded> = FxHashSet::default();
    let mut succ_buf: Vec<T::State> = Vec::new();
    let mut transitions = 0u64;
    for &id in chunk {
        let (local, shard) = split_id(id);
        let state = codec.decode(shards[shard].get(local));
        succ_buf.clear();
        system.successors(&state, &mut succ_buf);
        transitions += succ_buf.len() as u64;
        for next in succ_buf.drain(..) {
            let encoded = codec.encode(&next);
            let shard = shard_of(fx_hash(&encoded));
            if shards[shard].lookup(&encoded).is_some() {
                continue;
            }
            if !local_seen.insert(encoded.clone()) {
                continue;
            }
            buckets[shard].push((encoded, id));
        }
    }
    Expansion {
        buckets,
        transitions,
    }
}

/// Phase 2 worker: merges every expander's buckets for a contiguous,
/// exclusively-owned range of shards.
fn merge_shard_group<C, I>(
    arenas: &mut [StateArena<C::Encoded>],
    base_shard: usize,
    columns: Vec<ShardColumn<C::Encoded>>,
    codec: &C,
    invariant: &I,
    explored: &AtomicU64,
    max_states: u64,
) -> Merged
where
    C: StateCodec,
    I: Invariant<C::State>,
{
    let mut merged = Merged {
        next: Vec::new(),
        violation: None,
        budget_hit: false,
    };
    'group: for (offset, (arena, column)) in arenas.iter_mut().zip(columns).enumerate() {
        let shard = base_shard + offset;
        for bucket in column {
            for (encoded, parent) in bucket {
                if arena.lookup(&encoded).is_some() {
                    continue;
                }
                if explored.fetch_add(1, Ordering::Relaxed) >= max_states {
                    explored.fetch_sub(1, Ordering::Relaxed);
                    merged.budget_hit = true;
                    break 'group;
                }
                let state = codec.decode(&encoded);
                let Interned::New(local) = arena.insert_if_absent(encoded, parent) else {
                    unreachable!("lookup said absent and this worker owns the shard");
                };
                let id = global_id(local, shard);
                if merged.violation.is_none() && !invariant.holds(&state) {
                    merged.violation = Some(id);
                }
                merged.next.push(id);
            }
        }
    }
    merged
}

impl Default for ParallelExplorer {
    fn default() -> Self {
        ParallelExplorer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Grid {
        bound: u32,
    }

    impl TransitionSystem for Grid {
        type State = (u32, u32);

        fn initial_states(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)]
        }

        fn successors(&self, s: &(u32, u32), out: &mut Vec<(u32, u32)>) {
            if s.0 < self.bound {
                out.push((s.0 + 1, s.1));
            }
            if s.1 < self.bound {
                out.push((s.0, s.1 + 1));
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "interpreted grid too slow; wide_fanout covers the threaded path"
    )]
    fn explores_whole_space_in_parallel() {
        let outcome = ParallelExplorer::new()
            .threads(4)
            .check(&Grid { bound: 30 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 31 * 31);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "interpreted grid too slow; wide_fanout covers the threaded path"
    )]
    fn finds_minimal_depth_counterexample() {
        let outcome = ParallelExplorer::new()
            .threads(4)
            .check(&Grid { bound: 30 }, |s: &(u32, u32)| s.0 + s.1 != 6);
        assert_eq!(outcome.verdict, Verdict::Violated);
        let trace = outcome.counterexample.unwrap();
        assert_eq!(trace.transition_count(), 6);
        for (a, b) in trace.transitions() {
            assert_eq!((b.0 - a.0) + (b.1 - a.1), 1, "trace is a real path");
        }
    }

    #[test]
    fn single_thread_matches_sequential_results() {
        let parallel = ParallelExplorer::new()
            .threads(1)
            .check(&Grid { bound: 12 }, |_: &(u32, u32)| true);
        let sequential = crate::Explorer::new().check(&Grid { bound: 12 }, |_: &(u32, u32)| true);
        assert_eq!(
            parallel.stats.states_explored,
            sequential.stats.states_explored
        );
        assert_eq!(parallel.verdict, sequential.verdict);
    }

    /// Layer-synchronous determinism: every thread count agrees with the
    /// sequential explorer on verdict, state count and trace length —
    /// including on violated runs, where the violating layer is
    /// completed by both backends.
    #[test]
    fn all_thread_counts_agree_with_sequential() {
        let grid = Grid { bound: 9 };
        let invariant = |s: &(u32, u32)| s.0 + s.1 != 4;
        let sequential = crate::Explorer::new().check(&grid, invariant);
        assert_eq!(sequential.stats.states_explored, 15, "layers 0..=4");
        for threads in 1..=4 {
            let parallel = ParallelExplorer::new()
                .threads(threads)
                .check(&grid, invariant);
            assert_eq!(parallel.verdict, sequential.verdict, "{threads} threads");
            assert_eq!(
                parallel.stats.states_explored, sequential.stats.states_explored,
                "{threads} threads"
            );
            assert_eq!(
                parallel.counterexample.unwrap().transition_count(),
                sequential
                    .counterexample
                    .as_ref()
                    .unwrap()
                    .transition_count(),
                "{threads} threads"
            );
        }
    }

    /// A single root fanning out to 200 leaves: the proposal count
    /// crosses `SPAWN_THRESHOLD_PER_WORKER` with two workers, so the
    /// scoped expand/merge threads really spawn — while staying small
    /// enough for miri, which interprets this test as its UB check of
    /// the sharded layer-merge handshake (arena inserts + codec decode
    /// under the shared atomic budget).
    #[test]
    fn wide_fanout_exercises_threaded_merge() {
        struct Fan;
        impl TransitionSystem for Fan {
            type State = u32;
            fn initial_states(&self) -> Vec<u32> {
                vec![0]
            }
            fn successors(&self, s: &u32, out: &mut Vec<u32>) {
                if *s == 0 {
                    out.extend(1..=200);
                }
            }
        }
        let outcome = ParallelExplorer::new()
            .threads(2)
            .check(&Fan, |_: &u32| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 201);
    }

    #[test]
    fn budget_is_respected() {
        let outcome = ParallelExplorer::new()
            .threads(2)
            .max_states(50)
            .check(&Grid { bound: 1000 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        assert!(outcome.stats.states_explored <= 50, "budget is strict");
    }

    #[test]
    fn depth_budget_matches_sequential() {
        let parallel = ParallelExplorer::new()
            .threads(3)
            .max_depth(3)
            .check(&Grid { bound: 100 }, |_: &(u32, u32)| true);
        assert_eq!(parallel.verdict, Verdict::BudgetExhausted);
        assert_eq!(parallel.stats.states_explored, 10, "1 + 2 + 3 + 4 states");
    }

    #[test]
    fn violated_initial_state_short_circuits() {
        let outcome =
            ParallelExplorer::new().check(&Grid { bound: 5 }, |s: &(u32, u32)| *s != (0, 0));
        assert_eq!(outcome.verdict, Verdict::Violated);
        assert_eq!(outcome.counterexample.unwrap().transition_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = ParallelExplorer::new().threads(0);
    }
}
