//! Frontier-parallel breadth-first exploration over work-stealing
//! chunks.
//!
//! Layer-synchronous BFS with a two-phase layer step built on
//! [`crate::chunks::map_chunks`]:
//!
//! 1. **Expand** — the current layer is split into fixed-size chunks
//!    ([`ParallelExplorer::chunk_states`] states each) that workers
//!    *steal* off a shared atomic counter. Each worker decodes its
//!    chunk's states from the shared (read-only) arena, generates
//!    successors into a reused buffer, encodes and hashes each exactly
//!    once, pre-filters against the visited set, evaluates the
//!    invariant, and emits the survivors as a proposal batch.
//! 2. **Merge** — the calling thread adopts the proposal batches in
//!    chunk-index order and replays them into the single global arena:
//!    dedup, budget check, insert, violation recording — the exact
//!    inner loop of the sequential explorer, minus the re-encode,
//!    re-hash and invariant work the expand phase already paid for.
//!
//! Because chunk boundaries depend only on the layer (never the thread
//! count) and the merge replays proposals in layer order, the arena's
//! insertion sequence is **identical to the sequential explorer's** —
//! ids, parents, verdicts, `states_explored` and the counterexample
//! trace are all bit-for-bit the same at every thread count and chunk
//! size. One thread short-circuits to the sequential driver itself.
//!
//! This replaces the former sharded-visited-set design, whose per-state
//! atomic budget claims and per-shard hash sets made the parallel
//! explorer *slower* than the sequential one at every thread count: the
//! only cross-thread state left is one chunk-claim counter per layer
//! (modeled under loom in `tests/loom_merge.rs`).

use crate::chunks::map_chunks;
use crate::codec::{IdentityCodec, StateCodec};
use crate::delta::{DeltaArena, WordEncoded};
use crate::explore::{
    drive_sequential, finish_outcome, seed_roots, CheckOutcome, DEFAULT_MAX_STATES,
};
use crate::hashing::fx_hash;
use crate::intern::{StateArena, Visited};
use crate::stats::ExploreStats;
use crate::system::{Invariant, TransitionSystem};
use std::time::Instant;

/// Default states per work-stealing chunk: small enough to balance
/// skewed successor costs, large enough that one claim (one atomic op)
/// amortizes over ~10³ states.
const DEFAULT_CHUNK_STATES: usize = 1024;

/// One successor surviving the expand phase's pre-filter: everything
/// the merge needs, with the encode/hash/invariant work already done.
struct Proposal<E> {
    hash: u64,
    encoded: E,
    parent: u32,
    violates: bool,
}

/// Per-chunk expand output, adopted by the merge in chunk order.
struct Expansion<E> {
    proposals: Vec<Proposal<E>>,
    transitions: u64,
}

/// A parallel explicit-state model checker.
///
/// Requires the system and its encodings to be shareable across
/// threads. Results are bit-identical to [`crate::Explorer`] for every
/// thread count and chunk size.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExplorer {
    threads: usize,
    chunk_states: usize,
    max_states: u64,
    max_depth: u64,
}

impl ParallelExplorer {
    /// Creates an explorer using the machine's available parallelism and
    /// the same default budgets as the sequential [`crate::Explorer`].
    #[must_use]
    pub fn new() -> Self {
        // detlint: allow(DL03) reason=default worker count; picks a schedule only, exploration results are identical at any thread count
        let threads = std::thread::available_parallelism().map_or(4, usize::from);
        ParallelExplorer {
            threads: threads.max(1),
            chunk_states: DEFAULT_CHUNK_STATES,
            max_states: DEFAULT_MAX_STATES,
            max_depth: u64::MAX,
        }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = threads;
        self
    }

    /// Sets the work-stealing granularity: states per frontier chunk.
    /// Results are identical for every value — this only tunes
    /// scheduling (smaller chunks balance better, larger ones claim
    /// less).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_states == 0`.
    #[must_use]
    pub fn chunk_states(mut self, chunk_states: usize) -> Self {
        assert!(chunk_states > 0, "chunks must hold at least one state");
        self.chunk_states = chunk_states;
        self
    }

    /// Caps the number of distinct states visited.
    #[must_use]
    pub fn max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Caps the BFS depth (number of transitions from an initial state).
    #[must_use]
    pub fn max_depth(mut self, max_depth: u64) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Checks `AG p` in parallel with the identity codec; same outcome
    /// as [`crate::Explorer::check`], including the counterexample.
    pub fn check<T, I>(&self, system: &T, invariant: I) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        T::State: Send + Sync,
        I: Invariant<T::State> + Sync,
    {
        self.check_with_codec(system, &IdentityCodec::new(), invariant)
    }

    /// Checks `AG p` in parallel, interning visited states through
    /// `codec`.
    pub fn check_with_codec<T, C, I>(
        &self,
        system: &T,
        codec: &C,
        invariant: I,
    ) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        C: StateCodec<State = T::State> + Sync,
        C::Encoded: Send + Sync,
        I: Invariant<T::State> + Sync,
    {
        let mut arena: StateArena<C::Encoded> = StateArena::new();
        self.drive(system, codec, &invariant, &mut arena)
    }

    /// Checks `AG p` in parallel with delta-encoded visited-set storage
    /// (see [`crate::Explorer::check_with_delta_codec`]): identical
    /// results, a fraction of the resident bytes.
    pub fn check_with_delta_codec<T, C, I>(
        &self,
        system: &T,
        codec: &C,
        invariant: I,
    ) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        C: StateCodec<State = T::State> + Sync,
        C::Encoded: WordEncoded + Send + Sync,
        I: Invariant<T::State> + Sync,
    {
        let mut arena: DeltaArena<C::Encoded> = DeltaArena::new();
        self.drive(system, codec, &invariant, &mut arena)
    }

    /// The chunked layer loop, generic over visited-set storage.
    fn drive<T, C, I, V>(
        &self,
        system: &T,
        codec: &C,
        invariant: &I,
        arena: &mut V,
    ) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        C: StateCodec<State = T::State> + Sync,
        C::Encoded: Send + Sync,
        I: Invariant<T::State> + Sync,
        V: Visited<C::Encoded> + Sync,
    {
        if self.threads <= 1 {
            // One worker: the sequential driver *is* the fast path, and
            // using it directly keeps the single-thread case from
            // paying for proposal batching it cannot amortize.
            return drive_sequential(
                self.max_states,
                self.max_depth,
                system,
                codec,
                invariant,
                arena,
            );
        }

        // detlint: allow(DL02) reason=elapsed-time stats only; reported out-of-band, never part of the verification result
        let start = Instant::now();
        let mut stats = ExploreStats::default();
        let (mut layer, mut violation, mut exhausted) =
            seed_roots(system, codec, invariant, arena, self.max_states);
        stats.frontier_peak = layer.len() as u64;

        let mut depth: u64 = 0;
        while violation.is_none() && !exhausted && !layer.is_empty() && depth < self.max_depth {
            // Phase 1: expand stolen chunks against the read-only arena.
            let shared: &V = arena;
            let expansions = map_chunks(&layer, self.chunk_states, self.threads, &|_, chunk| {
                expand_chunk(system, codec, shared, invariant, chunk)
            });

            // Phase 2: adopt in chunk order — this replays the exact
            // insertion sequence of the sequential explorer.
            let mut next_layer: Vec<u32> = Vec::new();
            'merge: for expansion in expansions {
                stats.transitions += expansion.transitions;
                for proposal in expansion.proposals {
                    if arena
                        .lookup_hashed(proposal.hash, &proposal.encoded)
                        .is_some()
                    {
                        continue;
                    }
                    if arena.len() as u64 >= self.max_states {
                        exhausted = true;
                        break 'merge;
                    }
                    let id =
                        arena.insert_new_hashed(proposal.hash, proposal.encoded, proposal.parent);
                    if violation.is_none() && proposal.violates {
                        violation = Some(id);
                    }
                    next_layer.push(id);
                }
            }
            if exhausted {
                // Mirror the sequential driver's mid-layer `break 'bfs`:
                // the partial layer counts toward neither depth nor the
                // frontier peak.
                break;
            }
            if !next_layer.is_empty() {
                depth += 1;
            }
            stats.frontier_peak = stats.frontier_peak.max(next_layer.len() as u64);
            layer = next_layer;
        }

        finish_outcome(
            stats,
            start,
            depth,
            self.max_depth,
            &layer,
            violation,
            exhausted,
            arena,
            codec,
        )
    }
}

/// Expand-phase worker: one chunk of the current layer, batched.
///
/// The successor buffer is reused across the chunk; each successor is
/// encoded and hashed exactly once, pre-filtered against the shared
/// visited set (read-only — in-layer duplicates are resolved by the
/// merge), and invariant-checked so the merge never has to decode.
fn expand_chunk<T, C, I, V>(
    system: &T,
    codec: &C,
    arena: &V,
    invariant: &I,
    chunk: &[u32],
) -> Expansion<C::Encoded>
where
    T: TransitionSystem,
    C: StateCodec<State = T::State>,
    I: Invariant<T::State>,
    V: Visited<C::Encoded>,
{
    let mut proposals: Vec<Proposal<C::Encoded>> = Vec::with_capacity(chunk.len());
    let mut succ_buf: Vec<T::State> = Vec::new();
    let mut transitions = 0u64;
    for &id in chunk {
        let state = arena.with_encoded(id, |e| codec.decode(e));
        succ_buf.clear();
        system.successors(&state, &mut succ_buf);
        transitions += succ_buf.len() as u64;
        for next in succ_buf.drain(..) {
            let encoded = codec.encode(&next);
            let hash = fx_hash(&encoded);
            if arena.lookup_hashed(hash, &encoded).is_some() {
                continue;
            }
            proposals.push(Proposal {
                hash,
                encoded,
                parent: id,
                violates: !invariant.holds(&next),
            });
        }
    }
    Expansion {
        proposals,
        transitions,
    }
}

impl Default for ParallelExplorer {
    fn default() -> Self {
        ParallelExplorer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Verdict;

    struct Grid {
        bound: u32,
    }

    impl TransitionSystem for Grid {
        type State = (u32, u32);

        fn initial_states(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)]
        }

        fn successors(&self, s: &(u32, u32), out: &mut Vec<(u32, u32)>) {
            if s.0 < self.bound {
                out.push((s.0 + 1, s.1));
            }
            if s.1 < self.bound {
                out.push((s.0, s.1 + 1));
            }
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "interpreted grid too slow; wide_fanout covers the threaded path"
    )]
    fn explores_whole_space_in_parallel() {
        let outcome = ParallelExplorer::new()
            .threads(4)
            .chunk_states(64)
            .check(&Grid { bound: 30 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 31 * 31);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "interpreted grid too slow; wide_fanout covers the threaded path"
    )]
    fn finds_minimal_depth_counterexample() {
        let outcome = ParallelExplorer::new()
            .threads(4)
            .chunk_states(64)
            .check(&Grid { bound: 30 }, |s: &(u32, u32)| s.0 + s.1 != 6);
        assert_eq!(outcome.verdict, Verdict::Violated);
        let trace = outcome.counterexample.unwrap();
        assert_eq!(trace.transition_count(), 6);
        for (a, b) in trace.transitions() {
            assert_eq!((b.0 - a.0) + (b.1 - a.1), 1, "trace is a real path");
        }
    }

    #[test]
    fn single_thread_matches_sequential_results() {
        let parallel = ParallelExplorer::new()
            .threads(1)
            .check(&Grid { bound: 12 }, |_: &(u32, u32)| true);
        let sequential = crate::Explorer::new().check(&Grid { bound: 12 }, |_: &(u32, u32)| true);
        assert_eq!(
            parallel.stats.states_explored,
            sequential.stats.states_explored
        );
        assert_eq!(parallel.verdict, sequential.verdict);
    }

    /// Chunk-order merge determinism: every thread count reproduces the
    /// sequential explorer **bit for bit** — verdict, state count, and
    /// the exact counterexample states, not just its length.
    #[test]
    fn all_thread_counts_agree_with_sequential() {
        let grid = Grid { bound: 9 };
        let invariant = |s: &(u32, u32)| s.0 + s.1 != 4;
        let sequential = crate::Explorer::new().check(&grid, invariant);
        assert_eq!(sequential.stats.states_explored, 15, "layers 0..=4");
        let expected_trace = sequential.counterexample.as_ref().unwrap().states();
        for threads in 1..=4 {
            let parallel = ParallelExplorer::new()
                .threads(threads)
                .chunk_states(4)
                .check(&grid, invariant);
            assert_eq!(parallel.verdict, sequential.verdict, "{threads} threads");
            assert_eq!(
                parallel.stats.states_explored, sequential.stats.states_explored,
                "{threads} threads"
            );
            assert_eq!(
                parallel.counterexample.unwrap().states(),
                expected_trace,
                "{threads} threads"
            );
        }
    }

    /// Chunk size is pure scheduling: any granularity yields the same
    /// exploration.
    #[test]
    fn chunk_size_does_not_change_results() {
        let grid = Grid { bound: 14 };
        let invariant = |s: &(u32, u32)| s.0 * s.1 != 60;
        let baseline = crate::Explorer::new().check(&grid, invariant);
        let expected_trace = baseline.counterexample.as_ref().unwrap().states();
        for chunk in [1, 3, 7, 64, 4096] {
            let outcome = ParallelExplorer::new()
                .threads(3)
                .chunk_states(chunk)
                .check(&grid, invariant);
            assert_eq!(outcome.verdict, baseline.verdict, "chunk {chunk}");
            assert_eq!(
                outcome.stats.states_explored, baseline.stats.states_explored,
                "chunk {chunk}"
            );
            assert_eq!(
                outcome.counterexample.unwrap().states(),
                expected_trace,
                "chunk {chunk}"
            );
        }
    }

    /// A single root fanning out to 200 leaves across 64-state chunks:
    /// with two workers the layer really crosses threads — small enough
    /// for miri, which interprets this test as its UB check of the
    /// steal/adopt handshake (shared-arena reads + codec work on worker
    /// threads, adoption on the caller).
    #[test]
    fn wide_fanout_exercises_threaded_merge() {
        struct Fan;
        impl TransitionSystem for Fan {
            type State = u32;
            fn initial_states(&self) -> Vec<u32> {
                vec![0]
            }
            fn successors(&self, s: &u32, out: &mut Vec<u32>) {
                if *s == 0 {
                    out.extend(1..=200);
                }
            }
        }
        let outcome = ParallelExplorer::new()
            .threads(2)
            .chunk_states(64)
            .check(&Fan, |_: &u32| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 201);
    }

    #[test]
    fn budget_is_respected() {
        let outcome = ParallelExplorer::new()
            .threads(2)
            .chunk_states(16)
            .max_states(50)
            .check(&Grid { bound: 1000 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        assert!(outcome.stats.states_explored <= 50, "budget is strict");
    }

    #[test]
    fn budget_cut_matches_sequential_exactly() {
        let sequential = crate::Explorer::new()
            .max_states(37)
            .check(&Grid { bound: 1000 }, |_: &(u32, u32)| true);
        let parallel = ParallelExplorer::new()
            .threads(3)
            .chunk_states(4)
            .max_states(37)
            .check(&Grid { bound: 1000 }, |_: &(u32, u32)| true);
        assert_eq!(parallel.verdict, sequential.verdict);
        assert_eq!(
            parallel.stats.states_explored,
            sequential.stats.states_explored
        );
        assert_eq!(parallel.stats.depth_reached, sequential.stats.depth_reached);
    }

    #[test]
    fn depth_budget_matches_sequential() {
        let parallel = ParallelExplorer::new()
            .threads(3)
            .max_depth(3)
            .check(&Grid { bound: 100 }, |_: &(u32, u32)| true);
        assert_eq!(parallel.verdict, Verdict::BudgetExhausted);
        assert_eq!(parallel.stats.states_explored, 10, "1 + 2 + 3 + 4 states");
    }

    #[test]
    fn violated_initial_state_short_circuits() {
        let outcome =
            ParallelExplorer::new().check(&Grid { bound: 5 }, |s: &(u32, u32)| *s != (0, 0));
        assert_eq!(outcome.verdict, Verdict::Violated);
        assert_eq!(outcome.counterexample.unwrap().transition_count(), 0);
    }

    /// Delta storage through the chunked path agrees with the plain
    /// arena and the sequential explorer.
    #[test]
    fn delta_codec_agrees_across_backends() {
        #[derive(Debug)]
        struct PackCodec;
        impl StateCodec for PackCodec {
            type State = (u32, u32);
            type Encoded = u64;
            fn encode(&self, s: &(u32, u32)) -> u64 {
                (u64::from(s.0) << 32) | u64::from(s.1)
            }
            fn decode(&self, e: &u64) -> (u32, u32) {
                ((e >> 32) as u32, *e as u32)
            }
        }
        let grid = Grid { bound: 11 };
        let invariant = |s: &(u32, u32)| s.0 + s.1 != 9;
        let sequential = crate::Explorer::new().check_with_codec(&grid, &PackCodec, invariant);
        let expected_trace = sequential.counterexample.as_ref().unwrap().states();
        for threads in [1, 3] {
            let outcome = ParallelExplorer::new()
                .threads(threads)
                .chunk_states(8)
                .check_with_delta_codec(&grid, &PackCodec, invariant);
            assert_eq!(outcome.verdict, sequential.verdict, "{threads} threads");
            assert_eq!(
                outcome.stats.states_explored, sequential.stats.states_explored,
                "{threads} threads"
            );
            assert_eq!(
                outcome.counterexample.unwrap().states(),
                expected_trace,
                "{threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = ParallelExplorer::new().threads(0);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn zero_chunk_size_is_rejected() {
        let _ = ParallelExplorer::new().chunk_states(0);
    }
}
