//! Frontier-parallel breadth-first exploration.
//!
//! Layer-synchronous BFS: each depth layer is split across worker threads
//! (crossbeam scoped threads), and the visited set is sharded across
//! mutex-protected hash maps keyed by state hash. Because layers complete
//! before the next begins, the first layer containing a violation yields a
//! minimal-depth counterexample — the same shortest-trace guarantee as the
//! sequential [`crate::Explorer`].

use crate::counterexample::Trace;
use crate::explore::{CheckOutcome, Verdict};
use crate::hashing::{FxHashMap, FxHasher};
use crate::stats::ExploreStats;
use crate::system::{Invariant, TransitionSystem};
use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

const SHARD_COUNT: usize = 64;

/// A parallel explicit-state model checker.
///
/// Requires the system and its states to be shareable across threads.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExplorer {
    threads: usize,
    max_states: u64,
}

struct Shards<S> {
    shards: Vec<Mutex<FxHashMap<S, Option<S>>>>,
}

impl<S: Eq + Hash + Clone> Shards<S> {
    fn new() -> Self {
        Shards {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(FxHashMap::default())).collect(),
        }
    }

    fn shard_of(&self, state: &S) -> usize {
        let mut h = FxHasher::default();
        state.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// Inserts `state` with `parent` if unseen; returns whether it was new.
    fn try_insert(&self, state: &S, parent: Option<&S>) -> bool {
        let mut shard = self.shards[self.shard_of(state)].lock();
        if shard.contains_key(state) {
            false
        } else {
            shard.insert(state.clone(), parent.cloned());
            true
        }
    }

    fn parent_of(&self, state: &S) -> Option<S> {
        self.shards[self.shard_of(state)]
            .lock()
            .get(state)
            .cloned()
            .flatten()
    }
}

impl ParallelExplorer {
    /// Creates an explorer using the machine's available parallelism.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map_or(4, usize::from);
        ParallelExplorer {
            threads: threads.max(1),
            max_states: 1 << 26,
        }
    }

    /// Sets the worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "at least one worker thread is required");
        self.threads = threads;
        self
    }

    /// Caps the number of distinct states visited.
    #[must_use]
    pub fn max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Checks `AG p` in parallel; returns the same outcome shape as
    /// [`crate::Explorer::check`], including a minimal-depth
    /// counterexample on violation.
    pub fn check<T, I>(&self, system: &T, invariant: I) -> CheckOutcome<T::State>
    where
        T: TransitionSystem + Sync,
        T::State: Send + Sync,
        I: Invariant<T::State> + Sync,
    {
        let start = Instant::now();
        let shards = Shards::new();
        let explored = AtomicU64::new(0);
        let transitions = AtomicU64::new(0);

        let mut layer: Vec<T::State> = Vec::new();
        let mut first_violation: Option<T::State> = None;

        for init in system.initial_states() {
            if shards.try_insert(&init, None) {
                explored.fetch_add(1, Ordering::Relaxed);
                if !invariant.holds(&init) {
                    first_violation = Some(init);
                    break;
                }
                layer.push(init);
            }
        }

        let mut depth: u64 = 0;
        let mut frontier_peak = layer.len() as u64;
        let mut budget_hit = false;

        while first_violation.is_none() && !layer.is_empty() && !budget_hit {
            let chunk = layer.len().div_ceil(self.threads);
            let results: Vec<(Vec<T::State>, Option<T::State>, bool)> =
                crossbeam::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for slice in layer.chunks(chunk.max(1)) {
                        let shards = &shards;
                        let explored = &explored;
                        let transitions = &transitions;
                        let invariant = &invariant;
                        let max_states = self.max_states;
                        handles.push(scope.spawn(move |_| {
                            let mut next = Vec::new();
                            let mut violation = None;
                            let mut hit_budget = false;
                            let mut buf = Vec::new();
                            'outer: for state in slice {
                                buf.clear();
                                system.successors(state, &mut buf);
                                transitions.fetch_add(buf.len() as u64, Ordering::Relaxed);
                                for succ in buf.drain(..) {
                                    if !shards.try_insert(&succ, Some(state)) {
                                        continue;
                                    }
                                    if explored.fetch_add(1, Ordering::Relaxed) + 1 > max_states {
                                        hit_budget = true;
                                        break 'outer;
                                    }
                                    if !invariant.holds(&succ) {
                                        violation = Some(succ);
                                        break 'outer;
                                    }
                                    next.push(succ);
                                }
                            }
                            (next, violation, hit_budget)
                        }));
                    }
                    handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
                })
                .expect("exploration scope panicked");

            depth += 1;
            let mut next_layer = Vec::new();
            for (next, violation, hit) in results {
                next_layer.extend(next);
                budget_hit |= hit;
                if first_violation.is_none() {
                    first_violation = violation;
                }
            }
            frontier_peak = frontier_peak.max(next_layer.len() as u64);
            layer = next_layer;
        }

        let stats = ExploreStats {
            states_explored: explored.load(Ordering::Relaxed),
            transitions: transitions.load(Ordering::Relaxed),
            frontier_peak,
            depth_reached: depth,
            duration: start.elapsed(),
        };

        match first_violation {
            Some(bad) => {
                let mut path = vec![bad.clone()];
                let mut cursor = shards.parent_of(&bad);
                while let Some(state) = cursor {
                    cursor = shards.parent_of(&state);
                    path.push(state);
                }
                path.reverse();
                CheckOutcome {
                    verdict: Verdict::Violated,
                    counterexample: Some(Trace::new(path)),
                    stats,
                }
            }
            None => CheckOutcome {
                verdict: if budget_hit { Verdict::BudgetExhausted } else { Verdict::Holds },
                counterexample: None,
                stats,
            },
        }
    }
}

impl Default for ParallelExplorer {
    fn default() -> Self {
        ParallelExplorer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Grid {
        bound: u32,
    }

    impl TransitionSystem for Grid {
        type State = (u32, u32);

        fn initial_states(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)]
        }

        fn successors(&self, s: &(u32, u32), out: &mut Vec<(u32, u32)>) {
            if s.0 < self.bound {
                out.push((s.0 + 1, s.1));
            }
            if s.1 < self.bound {
                out.push((s.0, s.1 + 1));
            }
        }
    }

    #[test]
    fn explores_whole_space_in_parallel() {
        let outcome = ParallelExplorer::new()
            .threads(4)
            .check(&Grid { bound: 30 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 31 * 31);
    }

    #[test]
    fn finds_minimal_depth_counterexample() {
        let outcome = ParallelExplorer::new()
            .threads(4)
            .check(&Grid { bound: 30 }, |s: &(u32, u32)| s.0 + s.1 != 6);
        assert_eq!(outcome.verdict, Verdict::Violated);
        let trace = outcome.counterexample.unwrap();
        assert_eq!(trace.transition_count(), 6);
        for (a, b) in trace.transitions() {
            assert_eq!((b.0 - a.0) + (b.1 - a.1), 1, "trace is a real path");
        }
    }

    #[test]
    fn single_thread_matches_sequential_results() {
        let parallel = ParallelExplorer::new()
            .threads(1)
            .check(&Grid { bound: 12 }, |_: &(u32, u32)| true);
        let sequential = crate::Explorer::new().check(&Grid { bound: 12 }, |_: &(u32, u32)| true);
        assert_eq!(parallel.stats.states_explored, sequential.stats.states_explored);
        assert_eq!(parallel.verdict, sequential.verdict);
    }

    #[test]
    fn budget_is_respected() {
        let outcome = ParallelExplorer::new()
            .threads(2)
            .max_states(50)
            .check(&Grid { bound: 1000 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
    }

    #[test]
    fn violated_initial_state_short_circuits() {
        let outcome = ParallelExplorer::new().check(&Grid { bound: 5 }, |s: &(u32, u32)| *s != (0, 0));
        assert_eq!(outcome.verdict, Verdict::Violated);
        assert_eq!(outcome.counterexample.unwrap().transition_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let _ = ParallelExplorer::new().threads(0);
    }
}
