//! Delta-encoded visited-set storage: states stored as sparse xor-deltas
//! against their BFS parent.
//!
//! A model-checking step changes very little of a packed state — in the
//! cluster model, one controller lane and maybe the shared word out of
//! nine. Storing every visited state at full width (72 bytes for
//! `CompactState`) therefore wastes most of the arena on bytes identical
//! to the parent's. A [`DeltaArena`] stores, per state, only the words
//! that differ from its BFS parent (`delta = child ^ parent`, a bitmask
//! of changed word positions plus the xor'd words), and reconstructs the
//! full encoding on demand by replaying deltas down from the nearest
//! **keyframe** ancestor.
//!
//! Keyframes bound reconstruction cost: every [`KEY_INTERVAL`]-th state
//! along any parent chain (and every root) is stored at full width, so
//! reconstruction walks at most `KEY_INTERVAL - 1` parent links, each
//! applying a sparse xor. Lookups hit this path once per hash-bucket
//! candidate — i.e. essentially once per *duplicate* successor — which
//! trades a short xor replay for a 3–4× smaller visited set on the
//! paper's models.
//!
//! The arena implements the same [`Visited`] interface as the plain
//! [`crate::StateArena`], so both explorers drive it through the exact
//! same code path: verdicts, ids, parents and traces are bit-identical
//! between the two storage schemes — footprint is the only difference.

use crate::hashing::FxHashMap;
use crate::intern::{Bucket, Visited, NO_PARENT};
use std::hash::Hash;
use std::marker::PhantomData;

/// Upper bound on words per encoded state a [`DeltaArena`] supports
/// (reconstruction buffers live on the stack; the changed-word bitmask
/// is a `u16`).
pub const MAX_WORDS: usize = 16;

/// Distance between full-width keyframes along a parent chain: state
/// reconstruction replays at most `KEY_INTERVAL - 1` sparse deltas.
pub const KEY_INTERVAL: u8 = 8;

/// An encoding that exposes itself as a fixed number of `u64` words, the
/// substrate [`DeltaArena`] xor-deltas operate on.
///
/// Contract: `from_words` inverts `write_words` (`from_words(w) == e`
/// whenever `e.write_words(w)`), and equal values write equal words —
/// word equality must coincide with `Eq` on the type.
pub trait WordEncoded: Clone + Eq + Hash {
    /// Number of `u64` words in the encoding (at most [`MAX_WORDS`]).
    const WORDS: usize;

    /// Writes the encoding into `out` (`out.len() == Self::WORDS`).
    fn write_words(&self, out: &mut [u64]);

    /// Rebuilds the value from `words` (`words.len() == Self::WORDS`).
    fn from_words(words: &[u64]) -> Self;
}

impl WordEncoded for u64 {
    const WORDS: usize = 1;

    #[inline]
    fn write_words(&self, out: &mut [u64]) {
        out[0] = *self;
    }

    #[inline]
    fn from_words(words: &[u64]) -> Self {
        words[0]
    }
}

/// Per-state storage record: where its payload words start, which word
/// positions they cover (deltas), and how far the nearest keyframe
/// ancestor is.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Start of this state's words in the shared payload vector.
    payload: u32,
    /// Bitmask of changed word positions (deltas); 0 for keyframes.
    mask: u16,
    /// Parent-chain distance to the nearest keyframe; 0 marks a keyframe
    /// (payload holds all `E::WORDS` words verbatim).
    key_dist: u8,
}

/// A delta-encoding visited set: full-width keyframes plus sparse
/// xor-deltas against BFS parents, behind the same [`Visited`] interface
/// as [`crate::StateArena`].
pub struct DeltaArena<E> {
    slots: Vec<Slot>,
    parents: Vec<u32>,
    payload: Vec<u64>,
    index: FxHashMap<u64, Bucket>,
    collision_slots: usize,
    /// Memo of the last parent reconstructed on the insert path:
    /// successive successors of one state share a parent, so the replay
    /// runs once per expanded state instead of once per insert.
    memo_id: u32,
    memo_words: [u64; MAX_WORDS],
    _encoding: PhantomData<fn() -> E>,
}

impl<E: WordEncoded> DeltaArena<E> {
    /// An empty arena.
    ///
    /// # Panics
    ///
    /// Panics if `E::WORDS` is zero or exceeds [`MAX_WORDS`].
    #[must_use]
    pub fn new() -> Self {
        assert!(
            E::WORDS >= 1 && E::WORDS <= MAX_WORDS,
            "DeltaArena supports 1..={MAX_WORDS} words per state, got {}",
            E::WORDS
        );
        DeltaArena {
            slots: Vec::new(),
            parents: Vec::new(),
            payload: Vec::new(),
            index: FxHashMap::default(),
            collision_slots: 0,
            memo_id: NO_PARENT,
            memo_words: [0; MAX_WORDS],
            _encoding: PhantomData,
        }
    }

    /// Number of interned states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The BFS parent recorded for `id` ([`NO_PARENT`] for roots).
    #[must_use]
    pub fn parent(&self, id: u32) -> u32 {
        self.parents[id as usize]
    }

    /// Reconstructs the full words of state `id` into `out`: copy the
    /// nearest keyframe ancestor, then replay the (at most
    /// `KEY_INTERVAL - 1`) deltas down the chain.
    fn words_of(&self, id: u32, out: &mut [u64; MAX_WORDS]) {
        let mut chain = [0u32; KEY_INTERVAL as usize];
        let mut chain_len = 0usize;
        let mut cur = id;
        while self.slots[cur as usize].key_dist != 0 {
            chain[chain_len] = cur;
            chain_len += 1;
            cur = self.parents[cur as usize];
        }
        let key = self.slots[cur as usize];
        let start = key.payload as usize;
        out[..E::WORDS].copy_from_slice(&self.payload[start..start + E::WORDS]);
        for &delta_id in chain[..chain_len].iter().rev() {
            let slot = self.slots[delta_id as usize];
            let mut bits = slot.mask;
            let mut at = slot.payload as usize;
            while bits != 0 {
                out[bits.trailing_zeros() as usize] ^= self.payload[at];
                at += 1;
                bits &= bits - 1;
            }
        }
    }

    /// Whether state `id` reconstructs to exactly `probe[..E::WORDS]`.
    fn matches(&self, id: u32, probe: &[u64; MAX_WORDS]) -> bool {
        let mut words = [0u64; MAX_WORDS];
        self.words_of(id, &mut words);
        words[..E::WORDS] == probe[..E::WORDS]
    }

    /// Materializes the encoded state stored at `id`.
    #[must_use]
    pub fn decode(&self, id: u32) -> E {
        let mut words = [0u64; MAX_WORDS];
        self.words_of(id, &mut words);
        E::from_words(&words[..E::WORDS])
    }

    /// Looks up an encoded state by its precomputed Fx hash without
    /// inserting (see [`crate::StateArena::lookup_hashed`]).
    #[must_use]
    pub fn lookup_hashed(&self, hash: u64, encoded: &E) -> Option<u32> {
        let mut probe = [0u64; MAX_WORDS];
        encoded.write_words(&mut probe[..E::WORDS]);
        match self.index.get(&hash)? {
            Bucket::One(id) => self.matches(*id, &probe).then_some(*id),
            Bucket::Many(ids) => ids.iter().copied().find(|&id| self.matches(id, &probe)),
        }
    }

    /// Interns an encoded state the caller has just confirmed absent via
    /// [`Self::lookup_hashed`] with the same `hash`.
    ///
    /// Roots and every `KEY_INTERVAL`-th chain member are stored as
    /// full-width keyframes; everything else as a sparse xor-delta
    /// against its parent (a delta touching every word is promoted to a
    /// keyframe — same size, shorter replay chains below it).
    pub fn insert_new_hashed(&mut self, hash: u64, encoded: &E, parent: u32) -> u32 {
        let next_id = u32::try_from(self.slots.len()).expect("arena exceeds u32 addressing");
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(next_id));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => match slot.get_mut() {
                Bucket::One(existing) => {
                    let existing = *existing;
                    self.collision_slots += 2;
                    *slot.get_mut() = Bucket::Many(vec![existing, next_id]);
                }
                Bucket::Many(ids) => {
                    self.collision_slots += 1;
                    ids.push(next_id);
                }
            },
        }

        let mut words = [0u64; MAX_WORDS];
        encoded.write_words(&mut words[..E::WORDS]);
        let start = u32::try_from(self.payload.len()).expect("payload exceeds u32 words");
        let key_dist = if parent == NO_PARENT {
            0
        } else {
            let up = self.slots[parent as usize].key_dist + 1;
            if up >= KEY_INTERVAL {
                0
            } else {
                up
            }
        };

        if key_dist == 0 {
            self.payload.extend_from_slice(&words[..E::WORDS]);
            self.slots.push(Slot {
                payload: start,
                mask: 0,
                key_dist: 0,
            });
        } else {
            if self.memo_id != parent {
                let mut buf = [0u64; MAX_WORDS];
                self.words_of(parent, &mut buf);
                self.memo_words = buf;
                self.memo_id = parent;
            }
            let mut mask: u16 = 0;
            for (w, &word) in words.iter().enumerate().take(E::WORDS) {
                let delta = word ^ self.memo_words[w];
                if delta != 0 {
                    mask |= 1 << w;
                    self.payload.push(delta);
                }
            }
            if mask.count_ones() as usize == E::WORDS {
                // Full-width delta: keyframe it instead.
                self.payload.truncate(start as usize);
                self.payload.extend_from_slice(&words[..E::WORDS]);
                self.slots.push(Slot {
                    payload: start,
                    mask: 0,
                    key_dist: 0,
                });
            } else {
                self.slots.push(Slot {
                    payload: start,
                    mask,
                    key_dist,
                });
            }
        }
        self.parents.push(parent);
        next_id
    }

    /// Approximate resident bytes of the visited set: payload words,
    /// per-state slots and parents, and the hash index.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let payload_bytes = self.payload.capacity() * std::mem::size_of::<u64>();
        let slot_bytes = self.slots.capacity() * std::mem::size_of::<Slot>();
        let parent_bytes = self.parents.capacity() * std::mem::size_of::<u32>();
        let index_bytes =
            self.index.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<Bucket>());
        let bucket_bytes = self.collision_slots * std::mem::size_of::<u32>();
        (payload_bytes + slot_bytes + parent_bytes + index_bytes + bucket_bytes) as u64
    }
}

impl<E: WordEncoded> Visited<E> for DeltaArena<E> {
    fn len(&self) -> usize {
        DeltaArena::len(self)
    }

    fn parent(&self, id: u32) -> u32 {
        DeltaArena::parent(self, id)
    }

    fn lookup_hashed(&self, hash: u64, encoded: &E) -> Option<u32> {
        DeltaArena::lookup_hashed(self, hash, encoded)
    }

    fn insert_new_hashed(&mut self, hash: u64, encoded: E, parent: u32) -> u32 {
        DeltaArena::insert_new_hashed(self, hash, &encoded, parent)
    }

    fn with_encoded<R>(&self, id: u32, f: impl FnOnce(&E) -> R) -> R {
        f(&self.decode(id))
    }

    fn approx_bytes(&self) -> u64 {
        DeltaArena::approx_bytes(self)
    }
}

impl<E: WordEncoded> Default for DeltaArena<E> {
    fn default() -> Self {
        DeltaArena::new()
    }
}

impl<E> std::fmt::Debug for DeltaArena<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaArena")
            .field("states", &self.slots.len())
            .field("payload_words", &self.payload.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::fx_hash;
    use crate::intern::{Interned, StateArena};

    /// A 4-word encoding for tests.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    struct Quad([u64; 4]);

    impl WordEncoded for Quad {
        const WORDS: usize = 4;
        fn write_words(&self, out: &mut [u64]) {
            out.copy_from_slice(&self.0);
        }
        fn from_words(words: &[u64]) -> Self {
            let mut q = [0u64; 4];
            q.copy_from_slice(words);
            Quad(q)
        }
    }

    fn insert(arena: &mut DeltaArena<Quad>, q: Quad, parent: u32) -> u32 {
        let hash = fx_hash(&q);
        assert_eq!(arena.lookup_hashed(hash, &q), None, "test inserts are new");
        arena.insert_new_hashed(hash, &q, parent)
    }

    #[test]
    fn states_round_trip_through_delta_chains() {
        let mut arena: DeltaArena<Quad> = DeltaArena::new();
        // A chain three keyframe-intervals long: every state must
        // reconstruct exactly, wherever it sits relative to a keyframe.
        let mut states = Vec::new();
        let mut parent = NO_PARENT;
        for i in 0..(3 * KEY_INTERVAL as u64) {
            let q = Quad([i, i.wrapping_mul(0x9e37), i >> 1, 0xabcd ^ i]);
            parent = insert(&mut arena, q, parent);
            states.push(q);
        }
        for (id, &q) in states.iter().enumerate() {
            assert_eq!(arena.decode(id as u32), q, "state {id}");
        }
    }

    #[test]
    fn lookup_distinguishes_all_states() {
        let mut arena: DeltaArena<Quad> = DeltaArena::new();
        let mut parent = NO_PARENT;
        let states: Vec<Quad> = (0..50u64).map(|i| Quad([i, 0, i * i, 3])).collect();
        for &q in &states {
            parent = insert(&mut arena, q, parent);
        }
        for (id, q) in states.iter().enumerate() {
            assert_eq!(arena.lookup_hashed(fx_hash(q), q), Some(id as u32));
        }
        let absent = Quad([1, 2, 3, 4]);
        assert_eq!(arena.lookup_hashed(fx_hash(&absent), &absent), None);
    }

    #[test]
    fn branching_parents_reconstruct_independently() {
        // One root, many children, grandchildren under each child: the
        // insert-path memo must not leak across parents.
        let mut arena: DeltaArena<Quad> = DeltaArena::new();
        let root = Quad([7, 7, 7, 7]);
        let root_id = insert(&mut arena, root, NO_PARENT);
        let mut expect = vec![(root_id, root)];
        for c in 0..6u64 {
            let child = Quad([7, c + 100, 7, 7]);
            let cid = insert(&mut arena, child, root_id);
            expect.push((cid, child));
            for g in 0..3u64 {
                let grand = Quad([g, c + 100, 7, g ^ c]);
                let gid = insert(&mut arena, grand, cid);
                expect.push((gid, grand));
            }
        }
        for (id, q) in expect {
            assert_eq!(arena.decode(id), q, "state {id}");
        }
    }

    #[test]
    fn delta_storage_is_smaller_than_full_width() {
        // A long chain where each step changes one word: the delta arena
        // must store far less payload than states × words.
        let mut arena: DeltaArena<Quad> = DeltaArena::new();
        let mut parent = NO_PARENT;
        let n = 1024u64;
        for i in 0..n {
            let q = Quad([i, 1, 2, 3]);
            parent = insert(&mut arena, q, parent);
        }
        let full_width = n * 4 * 8;
        assert!(
            (arena.payload.len() * 8) as u64 * 2 < full_width,
            "payload {} words is not < half of full width {} bytes",
            arena.payload.len(),
            full_width
        );
    }

    /// The delta arena and the plain arena must agree on every id for
    /// the same insert sequence — they are interchangeable storage for
    /// the same exploration.
    #[test]
    fn agrees_with_plain_arena_on_ids() {
        let mut delta: DeltaArena<u64> = DeltaArena::new();
        let mut plain: StateArena<u64> = StateArena::new();
        let seq: Vec<u64> = (0..200).map(|i| (i * 37) % 120).collect();
        let mut last: u32 = NO_PARENT;
        for &v in &seq {
            let hash = fx_hash(&v);
            let d = match delta.lookup_hashed(hash, &v) {
                Some(id) => Interned::Present(id),
                None => Interned::New(delta.insert_new_hashed(hash, &v, last)),
            };
            let p = plain.insert_if_absent(v, last);
            assert_eq!(d, p, "value {v}");
            last = match d {
                Interned::New(id) | Interned::Present(id) => id,
            };
        }
        assert_eq!(delta.len(), plain.len());
        for id in 0..delta.len() as u32 {
            assert_eq!(delta.decode(id), *plain.get(id));
            assert_eq!(
                <DeltaArena<u64>>::parent(&delta, id),
                StateArena::parent(&plain, id)
            );
        }
    }

    #[test]
    #[should_panic(expected = "words per state")]
    fn oversized_encodings_are_rejected() {
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        struct Big;
        impl WordEncoded for Big {
            const WORDS: usize = MAX_WORDS + 1;
            fn write_words(&self, _: &mut [u64]) {}
            fn from_words(_: &[u64]) -> Self {
                Big
            }
        }
        let _ = DeltaArena::<Big>::new();
    }
}
