//! Depth-bounded checking (a bounded-model-checking-style ablation).
//!
//! Where the BFS [`crate::Explorer`] proves `AG p` over the full reachable
//! space, the bounded checker only examines paths of length ≤ `k`. It is
//! included as the A2 ablation of DESIGN.md: it finds the paper's
//! counterexamples at small `k` with far less memory, but its "holds"
//! verdict is only valid up to the bound.

use crate::counterexample::Trace;
use crate::hashing::FxHashMap;
use crate::stats::ExploreStats;
use crate::system::{Invariant, TransitionSystem};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Verdict of a bounded check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundedVerdict {
    /// No violation exists on any path of length ≤ k.
    HoldsUpToBound,
    /// A violation was found within the bound.
    Violated,
}

/// Result of [`BoundedChecker::check`].
#[derive(Debug, Clone)]
pub struct BoundedOutcome<S> {
    /// The verdict (valid only up to the configured bound).
    pub verdict: BoundedVerdict,
    /// A violating path, if found. Depth-first search does **not**
    /// guarantee minimality.
    pub counterexample: Option<Trace<S>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

/// Iterative-deepening depth-first checker.
///
/// States are memoized with the depth budget they were last expanded
/// under, so re-visits with a smaller remaining budget are pruned.
#[derive(Debug, Clone, Copy)]
pub struct BoundedChecker {
    bound: u64,
}

impl BoundedChecker {
    /// Creates a checker examining paths of at most `bound` transitions.
    #[must_use]
    pub fn new(bound: u64) -> Self {
        BoundedChecker { bound }
    }

    /// The configured bound.
    #[must_use]
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Checks `p` on every state reachable within the bound.
    pub fn check<T, I>(&self, system: &T, invariant: I) -> BoundedOutcome<T::State>
    where
        T: TransitionSystem,
        I: Invariant<T::State>,
    {
        // detlint: allow(DL02) reason=elapsed-time stats only; reported out-of-band, never part of the verification result
        let start = Instant::now();
        let mut stats = ExploreStats::default();
        // state → largest remaining budget it has been expanded with.
        let mut best_budget: FxHashMap<T::State, u64> = FxHashMap::default();
        let mut path: Vec<T::State> = Vec::new();

        for init in system.initial_states() {
            if self.dfs(
                system,
                &invariant,
                init,
                self.bound,
                &mut best_budget,
                &mut path,
                &mut stats,
            ) {
                stats.duration = start.elapsed();
                return BoundedOutcome {
                    verdict: BoundedVerdict::Violated,
                    counterexample: Some(Trace::new(path)),
                    stats,
                };
            }
        }
        stats.duration = start.elapsed();
        BoundedOutcome {
            verdict: BoundedVerdict::HoldsUpToBound,
            counterexample: None,
            stats,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs<T, I>(
        &self,
        system: &T,
        invariant: &I,
        state: T::State,
        budget: u64,
        best_budget: &mut FxHashMap<T::State, u64>,
        path: &mut Vec<T::State>,
        stats: &mut ExploreStats,
    ) -> bool
    where
        T: TransitionSystem,
        I: Invariant<T::State>,
    {
        match best_budget.get(&state) {
            Some(prev) if *prev >= budget => return false,
            _ => {
                if best_budget.insert(state.clone(), budget).is_none() {
                    stats.states_explored += 1;
                }
            }
        }
        stats.depth_reached = stats.depth_reached.max(self.bound - budget);
        path.push(state.clone());
        if !invariant.holds(&state) {
            return true;
        }
        if budget > 0 {
            let mut succ = Vec::new();
            system.successors(&state, &mut succ);
            stats.transitions += succ.len() as u64;
            for next in succ {
                if self.dfs(
                    system,
                    invariant,
                    next,
                    budget - 1,
                    best_budget,
                    path,
                    stats,
                ) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Line(u32);

    impl TransitionSystem for Line {
        type State = u32;

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            if *s < self.0 {
                out.push(s + 1);
            }
        }
    }

    #[test]
    fn violation_beyond_bound_is_missed() {
        let outcome = BoundedChecker::new(3).check(&Line(10), |s: &u32| *s != 5);
        assert_eq!(outcome.verdict, BoundedVerdict::HoldsUpToBound);
    }

    #[test]
    fn violation_within_bound_is_found() {
        let outcome = BoundedChecker::new(7).check(&Line(10), |s: &u32| *s != 5);
        assert_eq!(outcome.verdict, BoundedVerdict::Violated);
        let trace = outcome.counterexample.unwrap();
        assert_eq!(*trace.violating_state(), 5);
        assert_eq!(trace.states(), [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bound_zero_checks_initial_states_only() {
        let ok = BoundedChecker::new(0).check(&Line(10), |s: &u32| *s != 1);
        assert_eq!(ok.verdict, BoundedVerdict::HoldsUpToBound);
        assert_eq!(ok.stats.states_explored, 1);
        let bad = BoundedChecker::new(0).check(&Line(10), |s: &u32| *s != 0);
        assert_eq!(bad.verdict, BoundedVerdict::Violated);
    }

    #[test]
    fn memoization_prunes_revisits() {
        // Diamond graph: exponential paths, linear distinct states.
        struct Diamond;
        impl TransitionSystem for Diamond {
            type State = (u32, bool);
            fn initial_states(&self) -> Vec<(u32, bool)> {
                vec![(0, false)]
            }
            fn successors(&self, s: &(u32, bool), out: &mut Vec<(u32, bool)>) {
                if s.0 < 20 {
                    out.push((s.0 + 1, false));
                    out.push((s.0 + 1, true));
                }
            }
        }
        let outcome = BoundedChecker::new(20).check(&Diamond, |_: &(u32, bool)| true);
        assert_eq!(outcome.verdict, BoundedVerdict::HoldsUpToBound);
        assert!(outcome.stats.states_explored <= 41);
    }

    #[test]
    fn path_is_a_real_path() {
        let outcome = BoundedChecker::new(10).check(&Line(10), |s: &u32| *s < 8);
        let trace = outcome.counterexample.unwrap();
        for (a, b) in trace.transitions() {
            assert_eq!(*b, *a + 1);
        }
    }
}
