//! The arena-interned visited set shared by both explorers.
//!
//! A [`StateArena`] stores each distinct encoded state **exactly once**
//! in a flat vector, with the BFS parent recorded as a `u32` arena
//! index instead of an `Option<State>` clone. Deduplication goes
//! through a hash → bucket index keyed on the 64-bit Fx hash of the
//! encoding, so the hash table never duplicates the encoded bytes the
//! arena already owns (the classic interning layout; the old design
//! stored every state twice — map key plus parent clone).
//!
//! Parent indices are opaque to the arena: the sequential explorer
//! stores its own arena ids, the parallel explorer stores *global*
//! `(local << shard_bits) | shard` ids. [`NO_PARENT`] marks roots.

use crate::hashing::{fx_hash, FxHashMap};
use std::hash::Hash;

/// Parent marker for initial states (no predecessor).
pub const NO_PARENT: u32 = u32::MAX;

/// Outcome of [`StateArena::insert_if_absent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interned {
    /// The state was new; it now lives at this index.
    New(u32),
    /// The state was already interned at this index.
    Present(u32),
}

/// Hash-bucket entry: almost every hash maps to a single state, so the
/// common case stays allocation-free. Shared with the delta arena
/// ([`crate::delta::DeltaArena`]), which keys the same way.
#[derive(Debug, Clone)]
pub(crate) enum Bucket {
    One(u32),
    Many(Vec<u32>),
}

/// The visited-set interface both explorers drive, implemented by the
/// plain [`StateArena`] and the delta-encoding
/// [`crate::delta::DeltaArena`].
///
/// All methods take a caller-computed Fx hash so the hot loop hashes
/// each encoding exactly once (the hash must be `fx_hash(&encoded)` —
/// see [`crate::hashing::fx_hash`]). `insert_new_hashed` requires the
/// caller to have just confirmed absence via `lookup_hashed` with the
/// same hash; inserting a present state wastes storage and may shadow
/// the original in later lookups.
pub trait Visited<E> {
    /// Number of interned states.
    fn len(&self) -> usize;

    /// Whether the set is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The parent index recorded for `id` ([`NO_PARENT`] for roots).
    fn parent(&self, id: u32) -> u32;

    /// Looks up an encoded state by its precomputed hash.
    fn lookup_hashed(&self, hash: u64, encoded: &E) -> Option<u32>;

    /// Interns a state known to be absent, returning its new id.
    fn insert_new_hashed(&mut self, hash: u64, encoded: E, parent: u32) -> u32;

    /// Calls `f` with the encoded state stored at `id` (materializing it
    /// first if the storage is not full-width).
    fn with_encoded<R>(&self, id: u32, f: impl FnOnce(&E) -> R) -> R;

    /// Approximate resident bytes of the visited set.
    fn approx_bytes(&self) -> u64;
}

/// An interning visited set: flat state storage + `u32` parent links.
#[derive(Debug, Clone, Default)]
pub struct StateArena<E> {
    states: Vec<E>,
    parents: Vec<u32>,
    index: FxHashMap<u64, Bucket>,
    collision_slots: usize,
}

impl<E: Eq + Hash> StateArena<E> {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        StateArena {
            states: Vec::new(),
            parents: Vec::new(),
            index: FxHashMap::default(),
            collision_slots: 0,
        }
    }

    /// Number of interned states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the arena is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The encoded state at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by an insert on this arena.
    #[must_use]
    pub fn get(&self, id: u32) -> &E {
        &self.states[id as usize]
    }

    /// The parent index recorded for `id` ([`NO_PARENT`] for roots).
    #[must_use]
    pub fn parent(&self, id: u32) -> u32 {
        self.parents[id as usize]
    }

    /// Looks up an encoded state without inserting.
    #[must_use]
    pub fn lookup(&self, encoded: &E) -> Option<u32> {
        self.lookup_hashed(fx_hash(encoded), encoded)
    }

    /// [`Self::lookup`] with a caller-precomputed Fx hash, so hot loops
    /// hash each encoding once across dedup and insert.
    #[must_use]
    pub fn lookup_hashed(&self, hash: u64, encoded: &E) -> Option<u32> {
        match self.index.get(&hash)? {
            Bucket::One(id) => (self.states[*id as usize] == *encoded).then_some(*id),
            Bucket::Many(ids) => ids
                .iter()
                .copied()
                .find(|&id| self.states[id as usize] == *encoded),
        }
    }

    /// Interns an encoded state the caller has just confirmed absent via
    /// [`Self::lookup_hashed`] with the same `hash`, skipping the
    /// equality re-scan [`Self::insert_if_absent`] would do.
    pub fn insert_new_hashed(&mut self, hash: u64, encoded: E, parent: u32) -> u32 {
        let next_id = self.states.len() as u32;
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(next_id));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => match slot.get_mut() {
                Bucket::One(existing) => {
                    let existing = *existing;
                    self.collision_slots += 2;
                    *slot.get_mut() = Bucket::Many(vec![existing, next_id]);
                }
                Bucket::Many(ids) => {
                    self.collision_slots += 1;
                    ids.push(next_id);
                }
            },
        }
        self.states.push(encoded);
        self.parents.push(parent);
        next_id
    }

    /// Interns `encoded` with the given parent index unless it is
    /// already present.
    pub fn insert_if_absent(&mut self, encoded: E, parent: u32) -> Interned {
        let hash = fx_hash(&encoded);
        let next_id = self.states.len() as u32;
        match self.index.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(Bucket::One(next_id));
            }
            std::collections::hash_map::Entry::Occupied(mut slot) => match slot.get_mut() {
                Bucket::One(id) => {
                    if self.states[*id as usize] == encoded {
                        return Interned::Present(*id);
                    }
                    let existing = *id;
                    self.collision_slots += 2;
                    *slot.get_mut() = Bucket::Many(vec![existing, next_id]);
                }
                Bucket::Many(ids) => {
                    if let Some(&id) = ids.iter().find(|&&id| self.states[id as usize] == encoded) {
                        return Interned::Present(id);
                    }
                    self.collision_slots += 1;
                    ids.push(next_id);
                }
            },
        }
        self.states.push(encoded);
        self.parents.push(parent);
        Interned::New(next_id)
    }

    /// Approximate resident bytes of the visited set: the interned
    /// states themselves, the parent links, and the hash index.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let state_bytes = self.states.capacity() * std::mem::size_of::<E>();
        let parent_bytes = self.parents.capacity() * std::mem::size_of::<u32>();
        let index_bytes =
            self.index.capacity() * (std::mem::size_of::<u64>() + std::mem::size_of::<Bucket>());
        let bucket_bytes = self.collision_slots * std::mem::size_of::<u32>();
        (state_bytes + parent_bytes + index_bytes + bucket_bytes) as u64
    }
}

impl<E: Eq + Hash> Visited<E> for StateArena<E> {
    fn len(&self) -> usize {
        StateArena::len(self)
    }

    fn parent(&self, id: u32) -> u32 {
        StateArena::parent(self, id)
    }

    fn lookup_hashed(&self, hash: u64, encoded: &E) -> Option<u32> {
        StateArena::lookup_hashed(self, hash, encoded)
    }

    fn insert_new_hashed(&mut self, hash: u64, encoded: E, parent: u32) -> u32 {
        StateArena::insert_new_hashed(self, hash, encoded, parent)
    }

    fn with_encoded<R>(&self, id: u32, f: impl FnOnce(&E) -> R) -> R {
        f(&self.states[id as usize])
    }

    fn approx_bytes(&self) -> u64 {
        StateArena::approx_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut arena: StateArena<u64> = StateArena::new();
        assert_eq!(arena.insert_if_absent(10, NO_PARENT), Interned::New(0));
        assert_eq!(arena.insert_if_absent(20, 0), Interned::New(1));
        assert_eq!(arena.insert_if_absent(10, 1), Interned::Present(0));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.lookup(&20), Some(1));
        assert_eq!(arena.lookup(&30), None);
    }

    #[test]
    fn parents_are_indices_not_clones() {
        let mut arena: StateArena<(u32, u32)> = StateArena::new();
        arena.insert_if_absent((0, 0), NO_PARENT);
        arena.insert_if_absent((0, 1), 0);
        arena.insert_if_absent((1, 1), 1);
        assert_eq!(arena.parent(2), 1);
        assert_eq!(arena.parent(1), 0);
        assert_eq!(arena.parent(0), NO_PARENT);
    }

    /// Force every key into one hash bucket to exercise collision
    /// handling: equal encodings must still dedup, distinct ones must
    /// all be retained.
    #[test]
    fn hash_collisions_are_resolved_by_equality() {
        #[derive(Clone, PartialEq, Eq)]
        struct Collide(u32);
        impl std::hash::Hash for Collide {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                0u64.hash(state);
            }
        }
        let mut arena: StateArena<Collide> = StateArena::new();
        for i in 0..20u32 {
            assert_eq!(
                arena.insert_if_absent(Collide(i), NO_PARENT),
                Interned::New(i)
            );
        }
        for i in 0..20u32 {
            assert_eq!(
                arena.insert_if_absent(Collide(i), NO_PARENT),
                Interned::Present(i)
            );
            assert_eq!(arena.lookup(&Collide(i)), Some(i));
        }
        assert_eq!(arena.len(), 20);
    }

    #[test]
    fn hashed_apis_agree_with_plain_apis() {
        let mut arena: StateArena<u64> = StateArena::new();
        let hash = fx_hash(&99u64);
        assert_eq!(arena.lookup_hashed(hash, &99), None);
        let id = arena.insert_new_hashed(hash, 99, NO_PARENT);
        assert_eq!(arena.lookup(&99), Some(id));
        assert_eq!(arena.lookup_hashed(hash, &99), Some(id));
        assert_eq!(arena.insert_if_absent(99, NO_PARENT), Interned::Present(id));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn approx_bytes_grows_with_content() {
        let mut arena: StateArena<[u64; 4]> = StateArena::new();
        let empty = arena.approx_bytes();
        for i in 0..1000 {
            arena.insert_if_absent([i, 0, 0, 0], NO_PARENT);
        }
        assert!(arena.approx_bytes() > empty);
        // The dominant term is the flat state storage, not per-entry
        // heap boxes: well under 3× the raw payload.
        let payload = 1000 * std::mem::size_of::<[u64; 4]>() as u64;
        assert!(arena.approx_bytes() < 3 * payload + 4096);
    }
}
