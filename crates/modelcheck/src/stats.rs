//! Exploration statistics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Statistics collected during one exploration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Distinct states visited.
    pub states_explored: u64,
    /// Transitions generated (including those leading to already-visited
    /// states).
    pub transitions: u64,
    /// Largest frontier (BFS queue) observed.
    pub frontier_peak: u64,
    /// Deepest BFS layer reached.
    pub depth_reached: u64,
    /// Approximate resident bytes of the visited-state structure
    /// (interning arena + hash index) when exploration finished.
    pub visited_bytes: u64,
    /// Wall-clock exploration time.
    pub duration: Duration,
}

impl ExploreStats {
    /// States per second, 0.0 for an instantaneous run.
    #[must_use]
    pub fn states_per_second(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            self.states_explored as f64 / secs
        } else {
            0.0
        }
    }

    /// Average visited-set bytes per distinct state (0.0 when nothing
    /// was explored or the backend did not report memory use).
    #[must_use]
    pub fn bytes_per_state(&self) -> f64 {
        if self.states_explored > 0 {
            self.visited_bytes as f64 / self.states_explored as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for ExploreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} states, {} transitions, depth {}, peak frontier {}, {:.3}s ({:.0} states/s)",
            self.states_explored,
            self.transitions,
            self.depth_reached,
            self.frontier_peak,
            self.duration.as_secs_f64(),
            self.states_per_second()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_guarded_against_zero_duration() {
        let stats = ExploreStats {
            states_explored: 100,
            ..Default::default()
        };
        assert_eq!(stats.states_per_second(), 0.0);
    }

    #[test]
    fn throughput_divides_by_duration() {
        let stats = ExploreStats {
            states_explored: 1000,
            duration: Duration::from_secs(2),
            ..Default::default()
        };
        assert!((stats.states_per_second() - 500.0).abs() < f64::EPSILON);
    }

    #[test]
    fn display_mentions_counts() {
        let stats = ExploreStats {
            states_explored: 7,
            transitions: 9,
            ..Default::default()
        };
        let s = stats.to_string();
        assert!(s.contains("7 states") && s.contains("9 transitions"));
    }
}
