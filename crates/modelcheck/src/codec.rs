//! State interning codecs: fixed-size encodings for visited-set storage.
//!
//! The explorers never store full model states in their visited sets;
//! they store *encoded* states produced by a [`StateCodec`]. A model
//! with a naturally compact state (a `u64`, a small tuple) uses the
//! [`IdentityCodec`]; a model with a heap-carrying state (like
//! `tta-core`'s `ClusterState`, a `Vec` of controllers) supplies a
//! bit-packing codec so millions of visited states cost a few dozen
//! flat bytes each instead of a heap allocation per clone.
//!
//! Contract: `encode` must be injective on the model's reachable states
//! and `decode(encode(s)) == s`; equal states must produce equal
//! encodings (so hashing the encoding partitions states correctly).
//! `encode` sits on the hottest path of the checker — it runs once per
//! *generated* transition, not once per distinct state — so it should
//! be allocation-free whenever possible.

use std::hash::Hash;
use std::marker::PhantomData;

/// An invertible encoding between model states and a compact,
/// hashable visited-set key.
pub trait StateCodec {
    /// The model state type being encoded.
    type State;
    /// The interned representation; this is what visited sets store.
    type Encoded: Clone + Eq + Hash;

    /// Encodes a state (hot path: once per generated transition).
    fn encode(&self, state: &Self::State) -> Self::Encoded;

    /// Reconstructs the state (runs once per *expanded* state and per
    /// counterexample step).
    fn decode(&self, encoded: &Self::Encoded) -> Self::State;

    /// Approximate bytes one encoded state occupies in the arena, used
    /// for [`crate::ExploreStats::visited_bytes`] accounting.
    fn encoded_size_hint(&self) -> usize {
        std::mem::size_of::<Self::Encoded>()
    }
}

/// The trivial codec: states are their own encoding (cloned).
///
/// Correct for every `Clone + Eq + Hash` state and the default for
/// [`crate::Explorer::check`]; models with heap-carrying states should
/// provide a packing codec instead.
pub struct IdentityCodec<S>(PhantomData<fn() -> S>);

impl<S> IdentityCodec<S> {
    /// Creates the identity codec.
    #[must_use]
    pub const fn new() -> Self {
        IdentityCodec(PhantomData)
    }
}

impl<S> Default for IdentityCodec<S> {
    fn default() -> Self {
        IdentityCodec::new()
    }
}

impl<S> Clone for IdentityCodec<S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S> Copy for IdentityCodec<S> {}

impl<S> std::fmt::Debug for IdentityCodec<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("IdentityCodec")
    }
}

impl<S: Clone + Eq + Hash> StateCodec for IdentityCodec<S> {
    type State = S;
    type Encoded = S;

    #[inline]
    fn encode(&self, state: &S) -> S {
        state.clone()
    }

    #[inline]
    fn decode(&self, encoded: &S) -> S {
        encoded.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::fx_hash;

    #[test]
    fn identity_round_trips() {
        let codec = IdentityCodec::<(u32, u32)>::new();
        let state = (3, 9);
        let enc = codec.encode(&state);
        assert_eq!(codec.decode(&enc), state);
        assert_eq!(codec.encode(&codec.decode(&enc)), enc);
    }

    #[test]
    fn equal_states_hash_equal_through_identity() {
        let codec = IdentityCodec::<u64>::new();
        assert_eq!(fx_hash(&codec.encode(&77)), fx_hash(&codec.encode(&77)));
    }

    #[test]
    fn size_hint_matches_encoded_type() {
        let codec = IdentityCodec::<u64>::new();
        assert_eq!(codec.encoded_size_hint(), 8);
    }
}
