//! # tta-modelcheck
//!
//! An explicit-state model checker, built as the substrate that replaces
//! SMV in the reproduction of *Fault Tolerance Tradeoffs in Moving from
//! Decentralized to Centralized Embedded Systems* (DSN 2004).
//!
//! The paper's model is finite and synchronous: a set of initial states
//! `I`, a transition relation `R`, and an invariant property checked on
//! all reachable states (`AG p`). This crate provides exactly that:
//!
//! * [`TransitionSystem`] — the `(I, R)` interface a model implements;
//! * [`Explorer`] — breadth-first reachability with invariant checking;
//!   like SMV, it returns the **shortest** counterexample trace when the
//!   property fails;
//! * [`BoundedChecker`] — depth-bounded search (a BMC-style ablation);
//! * [`parallel::ParallelExplorer`] — frontier-parallel BFS: workers
//!   steal fixed-size frontier chunks off an atomic counter and the
//!   results merge in chunk order, so every thread count reproduces the
//!   sequential exploration bit for bit;
//! * [`StateCodec`] / [`StateArena`] — compact state interning: visited
//!   sets store fixed-size encodings once, and parent links are `u32`
//!   arena indices instead of per-state clones;
//! * [`DeltaArena`] — optional delta-encoded visited-set storage
//!   (sparse xor-deltas against BFS parents with periodic keyframes),
//!   behind `check_with_delta_codec` on both explorers.
//!
//! # Example
//!
//! ```
//! use tta_modelcheck::{Explorer, TransitionSystem, Verdict};
//!
//! /// A counter that wraps at 6; we check it never reaches 4 (it does).
//! struct Wrap;
//! impl TransitionSystem for Wrap {
//!     type State = u32;
//!     fn initial_states(&self) -> Vec<u32> { vec![0] }
//!     fn successors(&self, s: &u32, out: &mut Vec<u32>) {
//!         out.push((s + 1) % 6);
//!     }
//! }
//!
//! let outcome = Explorer::new().check(&Wrap, |s: &u32| *s != 4);
//! assert_eq!(outcome.verdict, Verdict::Violated);
//! // BFS finds the shortest path: 0 → 1 → 2 → 3 → 4.
//! assert_eq!(outcome.counterexample.unwrap().states(), [0, 1, 2, 3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bounded;
pub mod chunks;
pub mod codec;
mod counterexample;
pub mod delta;
mod explore;
pub mod graph;
pub mod hashing;
pub mod intern;
pub mod parallel;
mod stats;
mod system;

pub use bounded::{BoundedChecker, BoundedOutcome, BoundedVerdict};
pub use chunks::map_chunks;
pub use codec::{IdentityCodec, StateCodec};
pub use counterexample::Trace;
pub use delta::{DeltaArena, WordEncoded, KEY_INTERVAL, MAX_WORDS};
pub use explore::{CheckOutcome, Explorer, Verdict, DEFAULT_MAX_STATES};
pub use graph::StateGraph;
pub use intern::{Interned, StateArena, Visited, NO_PARENT};
pub use stats::ExploreStats;
pub use system::{Invariant, TransitionSystem};
