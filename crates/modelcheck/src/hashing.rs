//! Fast, non-cryptographic hashing for visited-state sets.
//!
//! The default `std` hasher (SipHash) is keyed and DoS-resistant, which a
//! model checker does not need; state deduplication dominates the
//! explorer's runtime, so we use an FxHash-style multiply-xor hasher
//! (the rustc compiler's interning hasher) instead.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: `state = (state rotl 5 ^ word) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hashes one value with [`FxHasher`] (the hash the visited-set arena
/// and the parallel shard router both key on).
#[inline]
#[must_use]
pub fn fx_hash<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of<T: std::hash::Hash>(value: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(value)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(1u8, 2u16, 3u32)), hash_of(&(1u8, 2u16, 3u32)));
    }

    #[test]
    fn different_values_hash_differently() {
        // Not guaranteed in general, but these must not collide for the
        // hasher to be useful.
        let hashes: Vec<u64> = (0u64..1000).map(|v| hash_of(&v)).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn byte_stream_and_word_writes_differ_only_by_encoding() {
        // Sanity: hashing is deterministic across calls.
        let a = hash_of(&"the same string");
        let b = hash_of(&"the same string");
        assert_eq!(a, b);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));
        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }
}
