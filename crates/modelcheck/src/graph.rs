//! Reachable-state-graph extraction and Graphviz export.
//!
//! For small models (or small fragments of big ones) it is often more
//! illuminating to *look at* the state graph than to read traces. This
//! module explores a [`TransitionSystem`] up to a budget and renders the
//! result as Graphviz DOT, with user-supplied labels and an optional
//! highlight predicate (e.g. the paper's violating states).

use crate::codec::StateCodec;
use crate::hashing::FxHashMap;
use crate::intern::{Interned, StateArena, NO_PARENT};
use crate::system::TransitionSystem;
use std::collections::VecDeque;
use std::hash::Hash;
use std::io;

/// An extracted finite state graph.
#[derive(Debug, Clone)]
pub struct StateGraph<S> {
    states: Vec<S>,
    edges: Vec<(usize, usize)>,
    truncated: bool,
}

impl<S: Clone + Eq + Hash> StateGraph<S> {
    /// Explores `system` breadth-first, keeping at most `max_states`
    /// states. Edges into states beyond the budget are dropped and the
    /// graph is marked truncated.
    #[must_use]
    pub fn explore<T>(system: &T, max_states: usize) -> Self
    where
        T: TransitionSystem<State = S>,
    {
        let mut states: Vec<S> = Vec::new();
        let mut index: FxHashMap<S, usize> = FxHashMap::default();
        let mut edges = Vec::new();
        let mut truncated = false;
        let mut frontier = VecDeque::new();

        for init in system.initial_states() {
            if index.contains_key(&init) {
                continue;
            }
            if states.len() >= max_states {
                truncated = true;
                break;
            }
            index.insert(init.clone(), states.len());
            frontier.push_back(states.len());
            states.push(init);
        }

        let mut succ = Vec::new();
        while let Some(current) = frontier.pop_front() {
            succ.clear();
            let state = states[current].clone();
            system.successors(&state, &mut succ);
            for next in succ.drain(..) {
                let target = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        if states.len() >= max_states {
                            truncated = true;
                            continue;
                        }
                        let i = states.len();
                        index.insert(next.clone(), i);
                        frontier.push_back(i);
                        states.push(next);
                        i
                    }
                };
                edges.push((current, target));
            }
        }
        StateGraph {
            states,
            edges,
            truncated,
        }
    }

    /// [`Self::explore`] with the visited set interned through `codec`:
    /// each discovered state is stored in its compact encoded form (one
    /// arena slot, no per-probe clone of `S`) and decoded back exactly
    /// once when the graph is assembled. Semantically identical to
    /// [`Self::explore`] — same states, same edges, same truncation.
    #[must_use]
    pub fn explore_with_codec<T, C>(system: &T, codec: &C, max_states: usize) -> Self
    where
        T: TransitionSystem<State = S>,
        C: StateCodec<State = S>,
    {
        let mut arena: StateArena<C::Encoded> = StateArena::new();
        let mut edges = Vec::new();
        let mut truncated = false;

        for init in system.initial_states() {
            let encoded = codec.encode(&init);
            if arena.lookup(&encoded).is_some() {
                continue;
            }
            if arena.len() >= max_states {
                truncated = true;
                break;
            }
            arena.insert_if_absent(encoded, NO_PARENT);
        }

        // Arena insertion order *is* BFS discovery order, so a cursor
        // over ids replaces the explicit queue.
        let mut cursor = 0usize;
        let mut succ = Vec::new();
        while cursor < arena.len() {
            let state = codec.decode(arena.get(cursor as u32));
            succ.clear();
            system.successors(&state, &mut succ);
            for next in succ.drain(..) {
                let encoded = codec.encode(&next);
                let target = match arena.lookup(&encoded) {
                    Some(id) => id as usize,
                    None if arena.len() >= max_states => {
                        truncated = true;
                        continue;
                    }
                    None => match arena.insert_if_absent(encoded, cursor as u32) {
                        Interned::New(id) | Interned::Present(id) => id as usize,
                    },
                };
                edges.push((cursor, target));
            }
            cursor += 1;
        }

        let states = (0..arena.len() as u32)
            .map(|id| codec.decode(arena.get(id)))
            .collect();
        StateGraph {
            states,
            edges,
            truncated,
        }
    }

    /// The extracted states, in BFS discovery order.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The extracted edges as `(from, to)` indices into [`states`].
    ///
    /// [`states`]: StateGraph::states
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether the budget cut off part of the graph.
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Renders the graph as Graphviz DOT. `label` produces node labels;
    /// `highlight` marks nodes to draw filled red (violations, targets).
    pub fn to_dot<L, H>(&self, name: &str, label: L, highlight: H) -> String
    where
        L: Fn(&S) -> String,
        H: Fn(&S) -> bool,
    {
        let mut out = Vec::new();
        self.write_dot(&mut out, name, label, highlight)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("DOT output is UTF-8")
    }

    /// Streams the graph as Graphviz DOT into `writer` without
    /// materializing the document — a multi-million-state graph renders
    /// in constant memory straight to a file. [`Self::to_dot`] is this,
    /// buffered into a `String`.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_dot<W, L, H>(
        &self,
        writer: &mut W,
        name: &str,
        label: L,
        highlight: H,
    ) -> io::Result<()>
    where
        W: io::Write,
        L: Fn(&S) -> String,
        H: Fn(&S) -> bool,
    {
        writeln!(writer, "digraph {} {{", sanitize(name))?;
        writeln!(writer, "  rankdir=LR;")?;
        writeln!(writer, "  node [shape=box, fontsize=10];")?;
        for (i, state) in self.states.iter().enumerate() {
            let attrs = if highlight(state) {
                ", style=filled, fillcolor=\"#ffcccc\", color=red"
            } else {
                ""
            };
            writeln!(
                writer,
                "  s{i} [label=\"{}\"{attrs}];",
                escape(&label(state))
            )?;
        }
        for (from, to) in &self.edges {
            writeln!(writer, "  s{from} -> s{to};")?;
        }
        if self.truncated {
            writeln!(
                writer,
                "  trunc [label=\"… (truncated)\", shape=plaintext];"
            )?;
        }
        writeln!(writer, "}}")
    }
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g{cleaned}")
    } else if cleaned.is_empty() {
        "graph_".to_string()
    } else {
        cleaned
    }
}

fn escape(label: &str) -> String {
    label
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ring(u32);

    impl TransitionSystem for Ring {
        type State = u32;

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            out.push((s + 1) % self.0);
            if s.is_multiple_of(2) {
                out.push((s + 2) % self.0);
            }
        }
    }

    #[test]
    fn explores_the_whole_ring() {
        let graph = StateGraph::explore(&Ring(6), 100);
        assert_eq!(graph.states().len(), 6);
        assert!(!graph.is_truncated());
        // Every even state has two successors, every odd one has one.
        assert_eq!(graph.edges().len(), 3 * 2 + 3);
    }

    #[test]
    fn budget_truncates() {
        let graph = StateGraph::explore(&Ring(50), 5);
        assert_eq!(graph.states().len(), 5);
        assert!(graph.is_truncated());
        // All recorded edges stay within the kept states.
        for (a, b) in graph.edges() {
            assert!(*a < 5 && *b < 5);
        }
    }

    #[test]
    fn dot_output_is_well_formed() {
        let graph = StateGraph::explore(&Ring(4), 100);
        let dot = graph.to_dot("ring 4", |s| format!("state {s}"), |s| *s == 3);
        assert!(dot.starts_with("digraph ring_4 {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("s0 [label=\"state 0\"]"));
        assert!(dot.contains("fillcolor=\"#ffcccc\""), "highlight rendered");
        assert!(dot.contains("s0 -> s1;"));
        assert!(!dot.contains("truncated"));
    }

    #[test]
    fn dot_escapes_labels_and_names() {
        let graph = StateGraph::explore(&Ring(2), 100);
        let dot = graph.to_dot("2bad\"name", |s| format!("a\"b\n{s}"), |_| false);
        assert!(dot.contains("digraph g2bad_name"));
        assert!(dot.contains("a\\\"b\\n0"));
    }

    #[test]
    fn truncation_is_visible_in_dot() {
        let graph = StateGraph::explore(&Ring(50), 3);
        let dot = graph.to_dot("big", std::string::ToString::to_string, |_| false);
        assert!(dot.contains("truncated"));
    }

    /// A deliberately non-identity codec: states are stored shifted, so
    /// any decode/encode mix-up changes the extracted graph.
    struct ShiftCodec;

    impl StateCodec for ShiftCodec {
        type State = u32;
        type Encoded = u64;

        fn encode(&self, state: &u32) -> u64 {
            u64::from(*state) + 1000
        }

        fn decode(&self, encoded: &u64) -> u32 {
            (encoded - 1000) as u32
        }
    }

    #[test]
    fn codec_exploration_matches_plain_exploration() {
        for (ring, budget) in [(6u32, 100usize), (50, 5)] {
            let plain = StateGraph::explore(&Ring(ring), budget);
            let interned = StateGraph::explore_with_codec(&Ring(ring), &ShiftCodec, budget);
            assert_eq!(plain.states(), interned.states());
            assert_eq!(plain.edges(), interned.edges());
            assert_eq!(plain.is_truncated(), interned.is_truncated());
        }
    }

    #[test]
    fn streaming_dot_matches_buffered_dot() {
        let graph = StateGraph::explore(&Ring(6), 100);
        let mut streamed = Vec::new();
        graph
            .write_dot(
                &mut streamed,
                "ring 6",
                |s| format!("state {s}"),
                |s| *s == 3,
            )
            .unwrap();
        let buffered = graph.to_dot("ring 6", |s| format!("state {s}"), |s| *s == 3);
        assert_eq!(String::from_utf8(streamed).unwrap(), buffered);
    }
}
