//! Counterexample traces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A path from an initial state to a property violation.
///
/// Produced by the breadth-first [`crate::Explorer`], the trace is the
/// *shortest* such path — the same guarantee SMV gives and the paper
/// relies on ("SMV produces the shortest possible trace").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace<S> {
    states: Vec<S>,
}

impl<S> Trace<S> {
    /// Builds a trace from the path of states (initial state first).
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty — a violation is always witnessed by at
    /// least one state.
    #[must_use]
    pub fn new(states: Vec<S>) -> Self {
        assert!(!states.is_empty(), "a trace contains at least one state");
        Trace { states }
    }

    /// The states along the path, initial state first, violating state
    /// last.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Number of transitions in the trace (states − 1).
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.states.len() - 1
    }

    /// The violating (final) state.
    #[must_use]
    pub fn violating_state(&self) -> &S {
        self.states.last().expect("trace is non-empty")
    }

    /// The initial state.
    #[must_use]
    pub fn initial_state(&self) -> &S {
        &self.states[0]
    }

    /// Iterates consecutive `(from, to)` transition pairs.
    pub fn transitions(&self) -> impl Iterator<Item = (&S, &S)> {
        self.states.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Maps every state through `f`, preserving the path structure.
    #[must_use]
    pub fn map<T, F: FnMut(&S) -> T>(&self, f: F) -> Trace<T> {
        Trace {
            states: self.states.iter().map(f).collect(),
        }
    }
}

impl<S: fmt::Display> fmt::Display for Trace<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace of {} transitions:", self.transition_count())?;
        for (i, s) in self.states.iter().enumerate() {
            writeln!(f, "  {i}) {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_expose_path_structure() {
        let t = Trace::new(vec![10, 20, 30]);
        assert_eq!(t.states(), [10, 20, 30]);
        assert_eq!(t.transition_count(), 2);
        assert_eq!(*t.initial_state(), 10);
        assert_eq!(*t.violating_state(), 30);
    }

    #[test]
    fn transitions_pair_consecutive_states() {
        let t = Trace::new(vec![1, 2, 3]);
        let pairs: Vec<(i32, i32)> = t.transitions().map(|(a, b)| (*a, *b)).collect();
        assert_eq!(pairs, [(1, 2), (2, 3)]);
    }

    #[test]
    fn single_state_trace_is_valid() {
        let t = Trace::new(vec![7]);
        assert_eq!(t.transition_count(), 0);
        assert_eq!(t.initial_state(), t.violating_state());
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn empty_trace_is_rejected() {
        let _: Trace<u32> = Trace::new(vec![]);
    }

    #[test]
    fn map_preserves_length() {
        let t = Trace::new(vec![1, 2, 3]).map(|s| s * 10);
        assert_eq!(t.states(), [10, 20, 30]);
    }

    #[test]
    fn display_numbers_steps() {
        let t = Trace::new(vec![5, 6]);
        let s = t.to_string();
        assert!(s.contains("0) 5") && s.contains("1) 6"));
    }
}
