//! Breadth-first explicit-state exploration with invariant checking.

use crate::counterexample::Trace;
use crate::hashing::FxHashMap;
use crate::stats::ExploreStats;
use crate::system::{Invariant, TransitionSystem};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Outcome of a check: `AG p` over all reachable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The invariant holds on every reachable state.
    Holds,
    /// A reachable state violates the invariant (see the counterexample).
    Violated,
    /// Exploration hit a configured budget before finishing; the invariant
    /// held on every state actually visited.
    BudgetExhausted,
}

/// Result of [`Explorer::check`].
#[derive(Debug, Clone)]
pub struct CheckOutcome<S> {
    /// The verdict.
    pub verdict: Verdict,
    /// Shortest path to a violating state, if one was found.
    pub counterexample: Option<Trace<S>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

/// A breadth-first explicit-state model checker.
///
/// BFS guarantees that the first violation found lies at minimal depth, so
/// the produced counterexample is the shortest possible — matching the SMV
/// behavior the paper depends on.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    max_states: u64,
    max_depth: u64,
}

impl Explorer {
    /// An explorer with a generous default budget (2^26 states, unbounded
    /// depth).
    #[must_use]
    pub fn new() -> Self {
        Explorer {
            max_states: 1 << 26,
            max_depth: u64::MAX,
        }
    }

    /// Caps the number of distinct states visited.
    #[must_use]
    pub fn max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Caps the BFS depth (number of transitions from an initial state).
    #[must_use]
    pub fn max_depth(mut self, max_depth: u64) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Checks `AG p`: explores every reachable state of `system` and tests
    /// `invariant` on each. Stops at the first violation and reconstructs
    /// the shortest trace to it.
    pub fn check<T, I>(&self, system: &T, invariant: I) -> CheckOutcome<T::State>
    where
        T: TransitionSystem,
        I: Invariant<T::State>,
    {
        let start = Instant::now();
        let mut stats = ExploreStats::default();

        // Arena of (state, parent index); `seen` maps state → arena index.
        let mut arena: Vec<(T::State, Option<usize>)> = Vec::new();
        let mut seen: FxHashMap<T::State, usize> = FxHashMap::default();
        let mut frontier: VecDeque<(usize, u64)> = VecDeque::new();

        let mut violation: Option<usize> = None;

        for init in system.initial_states() {
            if seen.contains_key(&init) {
                continue;
            }
            let idx = arena.len();
            arena.push((init.clone(), None));
            seen.insert(init.clone(), idx);
            stats.states_explored += 1;
            if !invariant.holds(&init) {
                violation = Some(idx);
                break;
            }
            frontier.push_back((idx, 0));
        }

        let mut succ_buf: Vec<T::State> = Vec::new();
        while violation.is_none() {
            let Some((current, depth)) = frontier.pop_front() else {
                break;
            };
            stats.depth_reached = stats.depth_reached.max(depth);
            if depth >= self.max_depth {
                continue;
            }
            succ_buf.clear();
            let state = arena[current].0.clone();
            system.successors(&state, &mut succ_buf);
            stats.transitions += succ_buf.len() as u64;
            for next in succ_buf.drain(..) {
                if seen.contains_key(&next) {
                    continue;
                }
                if stats.states_explored >= self.max_states {
                    stats.duration = start.elapsed();
                    return CheckOutcome {
                        verdict: Verdict::BudgetExhausted,
                        counterexample: None,
                        stats,
                    };
                }
                let idx = arena.len();
                arena.push((next.clone(), Some(current)));
                seen.insert(next, idx);
                stats.states_explored += 1;
                if !invariant.holds(&arena[idx].0) {
                    stats.depth_reached = stats.depth_reached.max(depth + 1);
                    violation = Some(idx);
                    break;
                }
                frontier.push_back((idx, depth + 1));
            }
            stats.frontier_peak = stats.frontier_peak.max(frontier.len() as u64);
        }

        stats.duration = start.elapsed();
        match violation {
            Some(idx) => {
                let mut path = Vec::new();
                let mut cursor = Some(idx);
                while let Some(i) = cursor {
                    path.push(arena[i].0.clone());
                    cursor = arena[i].1;
                }
                path.reverse();
                CheckOutcome {
                    verdict: Verdict::Violated,
                    counterexample: Some(Trace::new(path)),
                    stats,
                }
            }
            None => CheckOutcome {
                verdict: if stats.depth_reached >= self.max_depth && self.max_depth != u64::MAX {
                    Verdict::BudgetExhausted
                } else {
                    Verdict::Holds
                },
                counterexample: None,
                stats,
            },
        }
    }

    /// Counts the reachable state space without checking a property.
    pub fn count_reachable<T: TransitionSystem>(&self, system: &T) -> ExploreStats {
        self.check(system, |_: &T::State| true).stats
    }

    /// Reachability query (`EF p`): finds a reachable state satisfying
    /// `predicate` and returns the shortest witness path to it, or `None`
    /// if no reachable state satisfies it within the budget.
    ///
    /// ```
    /// use tta_modelcheck::{Explorer, TransitionSystem};
    ///
    /// struct Count;
    /// impl TransitionSystem for Count {
    ///     type State = u32;
    ///     fn initial_states(&self) -> Vec<u32> { vec![0] }
    ///     fn successors(&self, s: &u32, out: &mut Vec<u32>) {
    ///         if *s < 9 { out.push(s + 1); }
    ///     }
    /// }
    ///
    /// let witness = Explorer::new().find(&Count, |s: &u32| *s == 5).unwrap();
    /// assert_eq!(witness.states(), [0, 1, 2, 3, 4, 5]);
    /// assert!(Explorer::new().find(&Count, |s: &u32| *s == 100).is_none());
    /// ```
    pub fn find<T, P>(&self, system: &T, predicate: P) -> Option<Trace<T::State>>
    where
        T: TransitionSystem,
        P: Fn(&T::State) -> bool,
    {
        self.check(system, |s: &T::State| !predicate(s)).counterexample
    }
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Grid walker: from (x, y) may increment either coordinate up to a
    /// bound — a diamond-shaped state space with known size.
    struct Grid {
        bound: u32,
    }

    impl TransitionSystem for Grid {
        type State = (u32, u32);

        fn initial_states(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)]
        }

        fn successors(&self, s: &(u32, u32), out: &mut Vec<(u32, u32)>) {
            if s.0 < self.bound {
                out.push((s.0 + 1, s.1));
            }
            if s.1 < self.bound {
                out.push((s.0, s.1 + 1));
            }
        }
    }

    #[test]
    fn explores_the_whole_space() {
        let outcome = Explorer::new().check(&Grid { bound: 9 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 100);
        assert!(outcome.counterexample.is_none());
    }

    #[test]
    fn finds_shortest_counterexample() {
        let outcome =
            Explorer::new().check(&Grid { bound: 9 }, |s: &(u32, u32)| s.0 + s.1 != 4);
        assert_eq!(outcome.verdict, Verdict::Violated);
        let trace = outcome.counterexample.unwrap();
        // Any violating state is at Manhattan distance 4; BFS must reach
        // it in exactly 4 transitions.
        assert_eq!(trace.transition_count(), 4);
        let last = trace.violating_state();
        assert_eq!(last.0 + last.1, 4);
        // The trace is a real path: consecutive states differ by one step.
        for (a, b) in trace.transitions() {
            assert_eq!((b.0 - a.0) + (b.1 - a.1), 1);
        }
    }

    #[test]
    fn violated_initial_state_gives_single_state_trace() {
        let outcome = Explorer::new().check(&Grid { bound: 3 }, |s: &(u32, u32)| *s != (0, 0));
        assert_eq!(outcome.verdict, Verdict::Violated);
        assert_eq!(outcome.counterexample.unwrap().transition_count(), 0);
    }

    #[test]
    fn state_budget_is_respected() {
        let outcome = Explorer::new()
            .max_states(10)
            .check(&Grid { bound: 100 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        assert!(outcome.stats.states_explored <= 10);
    }

    #[test]
    fn depth_budget_is_respected() {
        let outcome = Explorer::new()
            .max_depth(3)
            .check(&Grid { bound: 100 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        // Depth-3 diamond: 1 + 2 + 3 + 4 = 10 states.
        assert_eq!(outcome.stats.states_explored, 10);
    }

    #[test]
    fn deadlocks_are_ordinary_leaves() {
        struct Dead;
        impl TransitionSystem for Dead {
            type State = u8;
            fn initial_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn successors(&self, s: &u8, out: &mut Vec<u8>) {
                if *s < 3 {
                    out.push(s + 1);
                }
            }
        }
        let outcome = Explorer::new().check(&Dead, |_: &u8| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 4);
    }

    #[test]
    fn duplicate_initial_states_are_merged() {
        struct Dup;
        impl TransitionSystem for Dup {
            type State = u8;
            fn initial_states(&self) -> Vec<u8> {
                vec![1, 1, 1]
            }
            fn successors(&self, _: &u8, _: &mut Vec<u8>) {}
        }
        let outcome = Explorer::new().check(&Dup, |_: &u8| true);
        assert_eq!(outcome.stats.states_explored, 1);
    }

    #[test]
    fn count_reachable_reports_stats() {
        let stats = Explorer::new().count_reachable(&Grid { bound: 4 });
        assert_eq!(stats.states_explored, 25);
        assert!(stats.transitions >= 24);
    }
}
