//! Breadth-first explicit-state exploration with invariant checking.
//!
//! Exploration is **layer-synchronous**: the checker fully expands BFS
//! layer `d` (every successor of every layer-`d` state is interned and
//! invariant-checked) before looking at layer `d + 1`, and when a layer
//! contains a violation the *whole layer* is still completed before the
//! run stops. Two properties follow:
//!
//! * the first violating layer is the minimal violation depth, so the
//!   counterexample is shortest — the SMV guarantee the paper relies on;
//! * `states_explored` is a deterministic function of the model alone
//!   (the set of states in layers `0..=d`), identical across the
//!   sequential and parallel backends and across thread counts.
//!
//! Visited states live in a [`StateArena`]: one interned encoded state
//! per distinct state, parents as `u32` indices (see [`crate::codec`]
//! and [`crate::intern`]).

use crate::codec::{IdentityCodec, StateCodec};
use crate::counterexample::Trace;
use crate::delta::{DeltaArena, WordEncoded};
use crate::hashing::fx_hash;
use crate::intern::{StateArena, Visited, NO_PARENT};
use crate::stats::ExploreStats;
use crate::system::{Invariant, TransitionSystem};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Default cap on distinct states, shared by [`Explorer`] and
/// [`crate::parallel::ParallelExplorer`] so both backends exhaust
/// budgets identically.
pub const DEFAULT_MAX_STATES: u64 = 1 << 26;

/// Outcome of a check: `AG p` over all reachable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The invariant holds on every reachable state.
    Holds,
    /// A reachable state violates the invariant (see the counterexample).
    Violated,
    /// Exploration hit a configured budget before finishing; the invariant
    /// held on every state actually visited.
    BudgetExhausted,
}

/// Result of [`Explorer::check`].
#[derive(Debug, Clone)]
pub struct CheckOutcome<S> {
    /// The verdict.
    pub verdict: Verdict,
    /// Shortest path to a violating state, if one was found.
    pub counterexample: Option<Trace<S>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

/// A breadth-first explicit-state model checker.
///
/// BFS guarantees that the first violation found lies at minimal depth, so
/// the produced counterexample is the shortest possible — matching the SMV
/// behavior the paper depends on.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    max_states: u64,
    max_depth: u64,
}

impl Explorer {
    /// An explorer with a generous default budget
    /// ([`DEFAULT_MAX_STATES`], unbounded depth).
    #[must_use]
    pub fn new() -> Self {
        Explorer {
            max_states: DEFAULT_MAX_STATES,
            max_depth: u64::MAX,
        }
    }

    /// Caps the number of distinct states visited.
    #[must_use]
    pub fn max_states(mut self, max_states: u64) -> Self {
        self.max_states = max_states;
        self
    }

    /// Caps the BFS depth (number of transitions from an initial state).
    #[must_use]
    pub fn max_depth(mut self, max_depth: u64) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Checks `AG p` with the identity codec (states interned as-is).
    ///
    /// Models with heap-carrying states should prefer
    /// [`Explorer::check_with_codec`] and a packing codec.
    pub fn check<T, I>(&self, system: &T, invariant: I) -> CheckOutcome<T::State>
    where
        T: TransitionSystem,
        I: Invariant<T::State>,
    {
        self.check_with_codec(system, &IdentityCodec::new(), invariant)
    }

    /// Checks `AG p`, interning visited states through `codec`.
    ///
    /// Explores every reachable state of `system`, testing `invariant`
    /// on each; on violation the whole violating layer is completed and
    /// the shortest trace reconstructed by walking arena parent indices.
    pub fn check_with_codec<T, C, I>(
        &self,
        system: &T,
        codec: &C,
        invariant: I,
    ) -> CheckOutcome<T::State>
    where
        T: TransitionSystem,
        C: StateCodec<State = T::State>,
        I: Invariant<T::State>,
    {
        let mut arena: StateArena<C::Encoded> = StateArena::new();
        drive_sequential(
            self.max_states,
            self.max_depth,
            system,
            codec,
            &invariant,
            &mut arena,
        )
    }

    /// Checks `AG p` like [`Self::check_with_codec`], but stores visited
    /// states as sparse xor-deltas against their BFS parents (see
    /// [`crate::delta::DeltaArena`]): identical verdicts, ids and
    /// traces, a fraction of the resident bytes for word-encodable
    /// state packings.
    pub fn check_with_delta_codec<T, C, I>(
        &self,
        system: &T,
        codec: &C,
        invariant: I,
    ) -> CheckOutcome<T::State>
    where
        T: TransitionSystem,
        C: StateCodec<State = T::State>,
        C::Encoded: WordEncoded,
        I: Invariant<T::State>,
    {
        let mut arena: DeltaArena<C::Encoded> = DeltaArena::new();
        drive_sequential(
            self.max_states,
            self.max_depth,
            system,
            codec,
            &invariant,
            &mut arena,
        )
    }

    /// Counts the reachable state space without checking a property.
    pub fn count_reachable<T: TransitionSystem>(&self, system: &T) -> ExploreStats {
        self.check(system, |_: &T::State| true).stats
    }

    /// Reachability query (`EF p`): finds a reachable state satisfying
    /// `predicate` and returns the shortest witness path to it, or `None`
    /// if no reachable state satisfies it within the budget.
    ///
    /// ```
    /// use tta_modelcheck::{Explorer, TransitionSystem};
    ///
    /// struct Count;
    /// impl TransitionSystem for Count {
    ///     type State = u32;
    ///     fn initial_states(&self) -> Vec<u32> { vec![0] }
    ///     fn successors(&self, s: &u32, out: &mut Vec<u32>) {
    ///         if *s < 9 { out.push(s + 1); }
    ///     }
    /// }
    ///
    /// let witness = Explorer::new().find(&Count, |s: &u32| *s == 5).unwrap();
    /// assert_eq!(witness.states(), [0, 1, 2, 3, 4, 5]);
    /// assert!(Explorer::new().find(&Count, |s: &u32| *s == 100).is_none());
    /// ```
    pub fn find<T, P>(&self, system: &T, predicate: P) -> Option<Trace<T::State>>
    where
        T: TransitionSystem,
        P: Fn(&T::State) -> bool,
    {
        self.check(system, |s: &T::State| !predicate(s))
            .counterexample
    }
}

/// Layer 0 of an exploration: interns every distinct initial state,
/// shared verbatim by the sequential and parallel drivers so their
/// arenas start bit-identical.
pub(crate) fn seed_roots<T, C, I, V>(
    system: &T,
    codec: &C,
    invariant: &I,
    arena: &mut V,
    max_states: u64,
) -> (Vec<u32>, Option<u32>, bool)
where
    T: TransitionSystem,
    C: StateCodec<State = T::State>,
    I: Invariant<T::State>,
    V: Visited<C::Encoded>,
{
    let mut layer = Vec::new();
    let mut violation = None;
    let mut exhausted = false;
    for init in system.initial_states() {
        if arena.len() as u64 >= max_states {
            exhausted = true;
            break;
        }
        let encoded = codec.encode(&init);
        let hash = fx_hash(&encoded);
        if arena.lookup_hashed(hash, &encoded).is_some() {
            continue;
        }
        let id = arena.insert_new_hashed(hash, encoded, NO_PARENT);
        if violation.is_none() && !invariant.holds(&init) {
            violation = Some(id);
        }
        layer.push(id);
    }
    (layer, violation, exhausted)
}

/// The sequential BFS driver, generic over visited-set storage: the
/// engine behind [`Explorer::check_with_codec`] and
/// [`Explorer::check_with_delta_codec`], and the single-thread path of
/// the parallel explorer (which therefore matches it bit for bit).
pub(crate) fn drive_sequential<T, C, I, V>(
    max_states: u64,
    max_depth: u64,
    system: &T,
    codec: &C,
    invariant: &I,
    arena: &mut V,
) -> CheckOutcome<T::State>
where
    T: TransitionSystem,
    C: StateCodec<State = T::State>,
    I: Invariant<T::State>,
    V: Visited<C::Encoded>,
{
    // detlint: allow(DL02) reason=elapsed-time stats only; reported out-of-band, never part of the verification result
    let start = Instant::now();
    let mut stats = ExploreStats::default();
    let (mut layer, mut violation, mut exhausted) =
        seed_roots(system, codec, invariant, arena, max_states);
    stats.frontier_peak = layer.len() as u64;

    let mut depth: u64 = 0;
    let mut succ_buf: Vec<T::State> = Vec::new();
    'bfs: while violation.is_none() && !exhausted && !layer.is_empty() && depth < max_depth {
        let mut next_layer: Vec<u32> = Vec::new();
        for &id in &layer {
            let state = arena.with_encoded(id, |e| codec.decode(e));
            succ_buf.clear();
            system.successors(&state, &mut succ_buf);
            stats.transitions += succ_buf.len() as u64;
            for next in succ_buf.drain(..) {
                let encoded = codec.encode(&next);
                let hash = fx_hash(&encoded);
                if arena.lookup_hashed(hash, &encoded).is_some() {
                    continue;
                }
                if arena.len() as u64 >= max_states {
                    exhausted = true;
                    break 'bfs;
                }
                let next_id = arena.insert_new_hashed(hash, encoded, id);
                // Record the first violation but finish the layer:
                // layer membership (and so `states_explored`) stays
                // a function of the model, not of scan order.
                if violation.is_none() && !invariant.holds(&next) {
                    violation = Some(next_id);
                }
                next_layer.push(next_id);
            }
        }
        if !next_layer.is_empty() {
            depth += 1;
        }
        stats.frontier_peak = stats.frontier_peak.max(next_layer.len() as u64);
        layer = next_layer;
    }

    finish_outcome(
        stats, start, depth, max_depth, &layer, violation, exhausted, arena, codec,
    )
}

/// Fills the trailing stats and assembles the [`CheckOutcome`]; shared
/// by the sequential and parallel drivers so verdict/budget semantics
/// cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_outcome<C, V>(
    mut stats: ExploreStats,
    start: Instant,
    depth: u64,
    max_depth: u64,
    layer: &[u32],
    violation: Option<u32>,
    exhausted: bool,
    arena: &V,
    codec: &C,
) -> CheckOutcome<C::State>
where
    C: StateCodec,
    V: Visited<C::Encoded>,
{
    stats.depth_reached = depth;
    stats.states_explored = arena.len() as u64;
    stats.visited_bytes = arena.approx_bytes();
    stats.duration = start.elapsed();

    match violation {
        Some(id) => CheckOutcome {
            verdict: Verdict::Violated,
            counterexample: Some(reconstruct(arena, codec, id)),
            stats,
        },
        None => CheckOutcome {
            verdict: if exhausted
                || (!layer.is_empty() && max_depth != u64::MAX && depth >= max_depth)
            {
                Verdict::BudgetExhausted
            } else {
                Verdict::Holds
            },
            counterexample: None,
            stats,
        },
    }
}

/// Walks parent indices from `id` back to a root and decodes the path.
pub(crate) fn reconstruct<C: StateCodec, V: Visited<C::Encoded>>(
    arena: &V,
    codec: &C,
    id: u32,
) -> Trace<C::State> {
    let mut path = Vec::new();
    let mut cursor = id;
    loop {
        path.push(arena.with_encoded(cursor, |e| codec.decode(e)));
        let parent = arena.parent(cursor);
        if parent == NO_PARENT {
            break;
        }
        cursor = parent;
    }
    path.reverse();
    Trace::new(path)
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Grid walker: from (x, y) may increment either coordinate up to a
    /// bound — a diamond-shaped state space with known size.
    struct Grid {
        bound: u32,
    }

    impl TransitionSystem for Grid {
        type State = (u32, u32);

        fn initial_states(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)]
        }

        fn successors(&self, s: &(u32, u32), out: &mut Vec<(u32, u32)>) {
            if s.0 < self.bound {
                out.push((s.0 + 1, s.1));
            }
            if s.1 < self.bound {
                out.push((s.0, s.1 + 1));
            }
        }
    }

    #[test]
    fn explores_the_whole_space() {
        let outcome = Explorer::new().check(&Grid { bound: 9 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 100);
        assert!(outcome.counterexample.is_none());
        assert!(outcome.stats.visited_bytes > 0, "memory use is reported");
    }

    #[test]
    fn finds_shortest_counterexample() {
        let outcome = Explorer::new().check(&Grid { bound: 9 }, |s: &(u32, u32)| s.0 + s.1 != 4);
        assert_eq!(outcome.verdict, Verdict::Violated);
        let trace = outcome.counterexample.unwrap();
        // Any violating state is at Manhattan distance 4; BFS must reach
        // it in exactly 4 transitions.
        assert_eq!(trace.transition_count(), 4);
        let last = trace.violating_state();
        assert_eq!(last.0 + last.1, 4);
        // The trace is a real path: consecutive states differ by one step.
        for (a, b) in trace.transitions() {
            assert_eq!((b.0 - a.0) + (b.1 - a.1), 1);
        }
    }

    /// Layer-synchronous semantics: a violated run still counts the
    /// complete violating layer, making `states_explored` deterministic
    /// (layers 0..=4 of the diamond: 1+2+3+4+5).
    #[test]
    fn violating_layer_is_completed() {
        let outcome = Explorer::new().check(&Grid { bound: 9 }, |s: &(u32, u32)| s.0 + s.1 != 4);
        assert_eq!(outcome.stats.states_explored, 15);
        assert_eq!(outcome.stats.depth_reached, 4);
    }

    #[test]
    fn violated_initial_state_gives_single_state_trace() {
        let outcome = Explorer::new().check(&Grid { bound: 3 }, |s: &(u32, u32)| *s != (0, 0));
        assert_eq!(outcome.verdict, Verdict::Violated);
        assert_eq!(outcome.counterexample.unwrap().transition_count(), 0);
    }

    #[test]
    fn state_budget_is_respected() {
        let outcome = Explorer::new()
            .max_states(10)
            .check(&Grid { bound: 100 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        assert!(outcome.stats.states_explored <= 10);
    }

    #[test]
    fn depth_budget_is_respected() {
        let outcome = Explorer::new()
            .max_depth(3)
            .check(&Grid { bound: 100 }, |_: &(u32, u32)| true);
        assert_eq!(outcome.verdict, Verdict::BudgetExhausted);
        // Depth-3 diamond: 1 + 2 + 3 + 4 = 10 states.
        assert_eq!(outcome.stats.states_explored, 10);
    }

    #[test]
    fn deadlocks_are_ordinary_leaves() {
        struct Dead;
        impl TransitionSystem for Dead {
            type State = u8;
            fn initial_states(&self) -> Vec<u8> {
                vec![0]
            }
            fn successors(&self, s: &u8, out: &mut Vec<u8>) {
                if *s < 3 {
                    out.push(s + 1);
                }
            }
        }
        let outcome = Explorer::new().check(&Dead, |_: &u8| true);
        assert_eq!(outcome.verdict, Verdict::Holds);
        assert_eq!(outcome.stats.states_explored, 4);
    }

    #[test]
    fn duplicate_initial_states_are_merged() {
        struct Dup;
        impl TransitionSystem for Dup {
            type State = u8;
            fn initial_states(&self) -> Vec<u8> {
                vec![1, 1, 1]
            }
            fn successors(&self, _: &u8, _: &mut Vec<u8>) {}
        }
        let outcome = Explorer::new().check(&Dup, |_: &u8| true);
        assert_eq!(outcome.stats.states_explored, 1);
    }

    #[test]
    fn count_reachable_reports_stats() {
        let stats = Explorer::new().count_reachable(&Grid { bound: 4 });
        assert_eq!(stats.states_explored, 25);
        assert!(stats.transitions >= 24);
    }

    /// A bit-packing codec must agree with the identity codec on
    /// everything observable.
    #[test]
    fn packing_codec_matches_identity() {
        #[derive(Debug)]
        struct PairCodec;
        impl StateCodec for PairCodec {
            type State = (u32, u32);
            type Encoded = u64;
            fn encode(&self, s: &(u32, u32)) -> u64 {
                (u64::from(s.0) << 32) | u64::from(s.1)
            }
            fn decode(&self, e: &u64) -> (u32, u32) {
                ((e >> 32) as u32, *e as u32)
            }
        }
        let grid = Grid { bound: 9 };
        let invariant = |s: &(u32, u32)| s.0 + s.1 != 7;
        let compact = Explorer::new().check_with_codec(&grid, &PairCodec, invariant);
        let identity = Explorer::new().check(&grid, invariant);
        assert_eq!(compact.verdict, identity.verdict);
        assert_eq!(
            compact.stats.states_explored,
            identity.stats.states_explored
        );
        assert_eq!(
            compact.counterexample.unwrap().transition_count(),
            identity.counterexample.unwrap().transition_count()
        );
    }

    /// A word-packing codec for `(u32, u32)` states (u64 is
    /// `WordEncoded`), used to drive the delta arena in tests.
    #[derive(Debug)]
    struct PackCodec;
    impl StateCodec for PackCodec {
        type State = (u32, u32);
        type Encoded = u64;
        fn encode(&self, s: &(u32, u32)) -> u64 {
            (u64::from(s.0) << 32) | u64::from(s.1)
        }
        fn decode(&self, e: &u64) -> (u32, u32) {
            ((e >> 32) as u32, *e as u32)
        }
    }

    /// Delta-arena storage must be observably identical to the plain
    /// arena: same verdict, same state count, same trace states.
    #[test]
    fn delta_codec_matches_plain_arena_bit_for_bit() {
        let grid = Grid { bound: 9 };
        let invariant = |s: &(u32, u32)| s.0 + s.1 != 7;
        let plain = Explorer::new().check_with_codec(&grid, &PackCodec, invariant);
        let delta = Explorer::new().check_with_delta_codec(&grid, &PackCodec, invariant);
        assert_eq!(delta.verdict, plain.verdict);
        assert_eq!(delta.stats.states_explored, plain.stats.states_explored);
        assert_eq!(delta.stats.depth_reached, plain.stats.depth_reached);
        assert_eq!(
            delta.counterexample.unwrap().states(),
            plain.counterexample.unwrap().states()
        );
    }

    #[test]
    fn delta_codec_respects_budgets() {
        let exhausted = Explorer::new().max_states(10).check_with_delta_codec(
            &Grid { bound: 100 },
            &PackCodec,
            |_: &(u32, u32)| true,
        );
        assert_eq!(exhausted.verdict, Verdict::BudgetExhausted);
        assert!(exhausted.stats.states_explored <= 10);
        let depth = Explorer::new().max_depth(3).check_with_delta_codec(
            &Grid { bound: 100 },
            &PackCodec,
            |_: &(u32, u32)| true,
        );
        assert_eq!(depth.verdict, Verdict::BudgetExhausted);
        assert_eq!(depth.stats.states_explored, 10);
    }
}
