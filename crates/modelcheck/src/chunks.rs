//! Work-stealing chunk scheduler shared by the parallel explorers.
//!
//! Both the frontier-parallel BFS ([`crate::parallel::ParallelExplorer`])
//! and the chunked `FairGraph` builder in `tta-liveness` split a layer
//! of work into **fixed-size chunks** and let a small pool of scoped
//! threads *steal* chunks off a single atomic counter. Two properties
//! make this the right shape for deterministic exploration:
//!
//! * **Chunk boundaries depend only on the item list**, never on the
//!   thread count, and every chunk's output is adopted in chunk-index
//!   order after the workers join — so the merged result is a pure
//!   function of the input, bit-identical at any thread count (and
//!   identical to a plain sequential loop).
//! * **Stealing balances skew for free.** Static per-worker splits (the
//!   previous design) stall the whole layer on the slowest contiguous
//!   range; a shared `fetch_add` cursor keeps every worker busy until
//!   the layer is drained, with one uncontended atomic op per ~chunk of
//!   states rather than per state.
//!
//! The claim/adopt handshake — `fetch_add` partitions chunk indices
//! exactly once across workers; results land in their chunk's slot and
//! are read only after the scope joins — is modeled under loom in
//! `tests/loom_merge.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `worker` over `items` split into `chunk_size`-sized chunks on up
/// to `threads` scoped threads, returning the outputs **in chunk-index
/// order** regardless of which worker processed which chunk.
///
/// `worker` receives the chunk index and the chunk slice. With one
/// thread (or a single chunk) everything runs inline on the calling
/// thread — same partitioning, same output, no spawn cost.
///
/// # Panics
///
/// Panics if `chunk_size` is zero or a worker thread panics.
pub fn map_chunks<T, O, F>(items: &[T], chunk_size: usize, threads: usize, worker: &F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &[T]) -> O + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    if threads <= 1 || n_chunks <= 1 {
        return items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, chunk)| worker(i, chunk))
            .collect();
    }

    // Relaxed claim counter: fetch_add uniqueness is the only property
    // used; each claimed chunk's result is published through the
    // per-worker Vec joined below, not through this atomic.
    let next = AtomicUsize::new(0);
    let workers = threads.min(n_chunks);
    let parts: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut claimed = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        let chunk = &items[i * chunk_size..((i + 1) * chunk_size).min(items.len())];
                        claimed.push((i, worker(i, chunk)));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    });

    // Adoption: every chunk index was claimed by exactly one worker;
    // reassemble the outputs in chunk order.
    let mut slots: Vec<Option<O>> = (0..n_chunks).map(|_| None).collect();
    for part in parts {
        for (i, out) in part {
            debug_assert!(slots[i].is_none(), "chunk {i} claimed twice");
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every chunk is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_chunk_order_at_any_thread_count() {
        let items: Vec<u32> = (0..10_000).collect();
        let sequential = map_chunks(&items, 64, 1, &|i, chunk: &[u32]| {
            (i, chunk.iter().sum::<u32>())
        });
        for threads in [2, 3, 8] {
            let parallel = map_chunks(&items, 64, threads, &|i, chunk: &[u32]| {
                (i, chunk.iter().sum::<u32>())
            });
            assert_eq!(parallel, sequential, "{threads} threads");
        }
    }

    #[test]
    fn chunk_boundaries_are_thread_count_independent() {
        let items: Vec<u32> = (0..300).collect();
        let bounds = |threads| {
            map_chunks(&items, 128, threads, &|_, chunk: &[u32]| {
                (chunk[0], chunk[chunk.len() - 1])
            })
        };
        assert_eq!(bounds(1), vec![(0, 127), (128, 255), (256, 299)]);
        assert_eq!(bounds(4), bounds(1));
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let out = map_chunks(&[] as &[u32], 16, 4, &|_, _: &[u32]| 1u8);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let items = [1u32, 2, 3];
        let out = map_chunks(&items, 1, 64, &|_, chunk: &[u32]| chunk[0] * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
