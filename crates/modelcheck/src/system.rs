//! The transition-system and property interfaces.

use std::hash::Hash;

/// A finite transition system `(S, I, R)` in the sense of the paper's
/// Section 4.2: a set of states, a set of initial states, and a
/// transition relation given as a successor function.
///
/// States must be cheap to clone and hash — the explorer stores millions.
pub trait TransitionSystem {
    /// The state vector type.
    type State: Clone + Eq + Hash;

    /// The set of initial states `I`.
    fn initial_states(&self) -> Vec<Self::State>;

    /// Appends every `R`-successor of `state` to `out` (which arrives
    /// empty). Appending nothing makes `state` a deadlock; the explorer
    /// treats deadlocks as ordinary leaves.
    fn successors(&self, state: &Self::State, out: &mut Vec<Self::State>);

    /// Whether the relation admits the step `state → next` — the
    /// step-admission judgment conformance oracles replay observed traces
    /// against. The default implementation enumerates the successors;
    /// systems with a cheaper membership test may override it.
    fn admits(&self, state: &Self::State, next: &Self::State) -> bool {
        let mut out = Vec::new();
        self.successors(state, &mut out);
        out.contains(next)
    }
}

/// A state invariant (the `p` of `AG p`).
///
/// Implemented for any `Fn(&S) -> bool`, so plain closures work:
///
/// ```
/// use tta_modelcheck::Invariant;
/// let inv = |s: &u32| *s < 10;
/// assert!(Invariant::holds(&inv, &3));
/// assert!(!Invariant::holds(&inv, &12));
/// ```
pub trait Invariant<S> {
    /// Whether the invariant holds in `state`.
    fn holds(&self, state: &S) -> bool;
}

impl<S, F> Invariant<S> for F
where
    F: Fn(&S) -> bool,
{
    fn holds(&self, state: &S) -> bool {
        self(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ring(u32);

    impl TransitionSystem for Ring {
        type State = u32;

        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }

        fn successors(&self, s: &u32, out: &mut Vec<u32>) {
            out.push((s + 1) % self.0);
        }
    }

    #[test]
    fn ring_successor_wraps() {
        let ring = Ring(4);
        let mut out = Vec::new();
        ring.successors(&3, &mut out);
        assert_eq!(out, [0]);
    }

    #[test]
    fn admits_accepts_exactly_the_successors() {
        let ring = Ring(4);
        assert!(ring.admits(&2, &3));
        assert!(ring.admits(&3, &0));
        assert!(!ring.admits(&0, &2));
        assert!(!ring.admits(&0, &0));
    }

    #[test]
    fn closures_are_invariants() {
        fn check<I: Invariant<u32>>(inv: &I, s: u32) -> bool {
            inv.holds(&s)
        }
        let inv = |s: &u32| s.is_multiple_of(2);
        assert!(check(&inv, 4));
        assert!(!check(&inv, 5));
    }
}
