//! Property-based tests for the frame codecs, CRC and bit vector.

use proptest::prelude::*;
use tta_types::{
    decode_frame, BitVec, CState, Crc24, FrameBuilder, FrameClass, MembershipVector, NodeId,
};

fn arb_membership() -> impl Strategy<Value = MembershipVector> {
    any::<u64>().prop_map(MembershipVector::from_bits)
}

fn arb_cstate() -> impl Strategy<Value = CState> {
    (any::<u16>(), 0u16..512, 0u8..8, arb_membership())
        .prop_map(|(t, rs, m, mem)| CState::new(t, rs, m, mem))
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u8..64).prop_map(NodeId::new)
}

proptest! {
    #[test]
    fn bitvec_push_read_round_trip(fields in prop::collection::vec((any::<u64>(), 1u32..=64), 0..20)) {
        let mut bits = BitVec::new();
        let mut expected = Vec::new();
        for (value, width) in &fields {
            let masked = if *width == 64 { *value } else { value & ((1u64 << width) - 1) };
            bits.push_bits(masked, *width);
            expected.push((masked, *width));
        }
        let mut pos = 0;
        for (value, width) in expected {
            prop_assert_eq!(bits.read_bits(pos, width), value);
            pos += width as usize;
        }
        prop_assert_eq!(bits.len(), pos);
    }

    #[test]
    fn bitvec_collect_matches_bit_access(bools in prop::collection::vec(any::<bool>(), 0..300)) {
        let bits: BitVec = bools.iter().copied().collect();
        prop_assert_eq!(bits.len(), bools.len());
        for (i, b) in bools.iter().enumerate() {
            prop_assert_eq!(bits.bit(i), *b);
        }
    }

    #[test]
    fn crc_detects_single_bit_flips(payload in prop::collection::vec(any::<bool>(), 1..200), flip in any::<prop::sample::Index>()) {
        let bits: BitVec = payload.iter().copied().collect();
        let reference = Crc24::new().digest_bits(&bits).finish();
        let mut corrupted = bits.clone();
        corrupted.flip(flip.index(bits.len()));
        prop_assert_ne!(Crc24::new().digest_bits(&corrupted).finish(), reference);
    }

    #[test]
    fn crc_is_deterministic(payload in prop::collection::vec(any::<bool>(), 0..200)) {
        let bits: BitVec = payload.iter().copied().collect();
        let a = Crc24::new().digest_bits(&bits).finish();
        let b = Crc24::new().digest_bits(&bits).finish();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn iframe_round_trips(sender in arb_node(), mcr in 0u8..16, cs in arb_cstate()) {
        let frame = FrameBuilder::new(FrameClass::IFrame, sender)
            .mode_change_request(mcr)
            .cstate(cs)
            .build()
            .unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn xframe_round_trips(sender in arb_node(), cs in arb_cstate(), data in prop::collection::vec(any::<u8>(), 0..240)) {
        let frame = FrameBuilder::new(FrameClass::XFrame, sender)
            .cstate(cs)
            .data_bits(&data)
            .build()
            .unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn cold_start_round_trips(sender in arb_node(), time in any::<u16>(), rs in 0u16..512) {
        let frame = FrameBuilder::new(FrameClass::ColdStart, sender)
            .cold_start(time, rs)
            .build()
            .unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn nframe_crc_binds_receiver_cstate(sender in arb_node(), cs in arb_cstate(), other in arb_cstate(), data in prop::collection::vec(any::<u8>(), 0..64)) {
        let frame = tta_types::n_frame(sender, &cs, &data).unwrap();
        prop_assert!(frame.verify_crc(Some(&cs)));
        if cs != other {
            prop_assert!(!frame.verify_crc(Some(&other)));
        }
    }

    #[test]
    fn corrupting_any_bit_of_explicit_frame_is_detected(cs in arb_cstate(), flip in any::<prop::sample::Index>()) {
        let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(1))
            .cstate(cs)
            .build()
            .unwrap();
        let mut bits = frame.encode();
        bits.flip(flip.index(bits.len()));
        // Either the decode fails outright, or the decoded frame differs.
        match decode_frame(&bits) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, frame),
        }
    }

    #[test]
    fn stale_copy_never_matches(cs in arb_cstate()) {
        prop_assert!(!cs.matches(&cs.stale_copy()));
        prop_assert!(cs.stale_copy().advance_slot().matches(&cs));
    }

    #[test]
    fn membership_set_laws(a in any::<u64>(), b in any::<u64>()) {
        let va = MembershipVector::from_bits(a);
        let vb = MembershipVector::from_bits(b);
        prop_assert_eq!(va.intersection(vb), vb.intersection(va));
        prop_assert!(va.difference(vb).intersection(vb).is_empty());
        prop_assert_eq!(va.difference(vb).len() + va.intersection(vb).len(), va.len());
    }

    #[test]
    fn global_time_difference_antisymmetric(a in any::<u16>(), b in any::<u16>()) {
        use tta_types::GlobalTime;
        let ga = GlobalTime::new(a);
        let gb = GlobalTime::new(b);
        let d = ga.difference(gb);
        // Wrap-around arithmetic: |d| is the shortest arc; antisymmetry can
        // break only at the exact antipode.
        if d.abs() != 32768 {
            prop_assert_eq!(gb.difference(ga), -d);
        }
        prop_assert!(d.abs() <= 32768);
    }
}

proptest! {
    /// Robustness: decoding arbitrary bit streams never panics — it
    /// either yields a frame or a structured error. (The guardian and
    /// receivers face attacker-ish inputs; the codec must be total.)
    #[test]
    fn decode_is_total_on_arbitrary_bits(bools in prop::collection::vec(any::<bool>(), 0..600)) {
        let bits: BitVec = bools.into_iter().collect();
        if let Ok(frame) = decode_frame(&bits) {
            // Anything that decodes must re-encode to *some* valid
            // stream that decodes to the same frame.
            let redecoded = decode_frame(&frame.encode()).expect("re-encode round trip");
            prop_assert_eq!(redecoded, frame);
        }
    }

    /// Truncating a valid frame anywhere must fail cleanly (or, for
    /// N-frames whose payload length is implicit, decode to a different
    /// frame) — never panic.
    #[test]
    fn truncation_is_handled_everywhere(cs in arb_cstate(), cut in any::<prop::sample::Index>()) {
        let frame = FrameBuilder::new(FrameClass::XFrame, NodeId::new(1))
            .cstate(cs)
            .data_bits(&[0xAB; 10])
            .build()
            .unwrap();
        let bits = frame.encode();
        let cut = cut.index(bits.len());
        let truncated: BitVec = (0..cut).map(|i| bits.bit(i)).collect();
        prop_assert!(decode_frame(&truncated).is_err() || cut == bits.len());
    }
}
