//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a TTP/C node (controller + host) within a cluster.
///
/// Node ids are small dense integers starting at 0. The paper's traces name
/// nodes `A`, `B`, `C`, `D`; [`NodeId::letter`] renders that spelling.
///
/// # Example
///
/// ```
/// use tta_types::NodeId;
///
/// let b = NodeId::new(1);
/// assert_eq!(b.index(), 1);
/// assert_eq!(b.letter(), 'B');
/// assert_eq!(b.to_string(), "B");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(u8);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`; membership vectors are 64 bits wide, so a
    /// cluster can never contain more nodes than that.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 64, "node index {index} exceeds membership width 64");
        NodeId(index)
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Returns the node's index as a `usize`, convenient for slice indexing.
    #[must_use]
    pub fn as_usize(self) -> usize {
        usize::from(self.0)
    }

    /// Renders the id in the paper's letter spelling (`A` for node 0).
    ///
    /// Ids past `Z` wrap into lowercase and then `#<index>`; clusters that
    /// large never appear in the reproduced experiments.
    #[must_use]
    pub fn letter(self) -> char {
        match self.0 {
            0..=25 => char::from(b'A' + self.0),
            26..=51 => char::from(b'a' + (self.0 - 26)),
            _ => '#',
        }
    }

    /// Iterates the first `n` node ids, `A..`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` (see [`NodeId::new`]).
    pub fn first(n: usize) -> impl Iterator<Item = NodeId> {
        assert!(n <= 64, "cluster size {n} exceeds membership width 64");
        (0..n as u8).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 52 {
            write!(f, "{}", self.letter())
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

impl From<NodeId> for u8 {
    fn from(id: NodeId) -> u8 {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for i in 0..64 {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn letters_match_paper_spelling() {
        let names: Vec<char> = NodeId::first(4).map(NodeId::letter).collect();
        assert_eq!(names, ['A', 'B', 'C', 'D']);
    }

    #[test]
    fn display_uses_letters() {
        assert_eq!(NodeId::new(0).to_string(), "A");
        assert_eq!(NodeId::new(27).to_string(), "b");
        assert_eq!(NodeId::new(60).to_string(), "#60");
    }

    #[test]
    #[should_panic(expected = "exceeds membership width")]
    fn rejects_out_of_range_index() {
        let _ = NodeId::new(64);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(0) < NodeId::new(1));
        assert!(NodeId::new(5) > NodeId::new(2));
    }

    #[test]
    fn first_yields_dense_prefix() {
        let ids: Vec<u8> = NodeId::first(6).map(NodeId::index).collect();
        assert_eq!(ids, [0, 1, 2, 3, 4, 5]);
    }
}
