//! Bit-level frame encoding and decoding.
//!
//! ## Wire layout (this model)
//!
//! ```text
//! header : 3-bit class tag | 6-bit sender id | 4-bit mode change request
//! N-frame      : header | data ...                          | 24-bit CRC*
//! I-frame      : header | C-state (92)                      | 24-bit CRC
//! X-frame      : header | C-state (92) | 16-bit len | data  | 24-bit CRC
//! cold-start   : header | 16-bit time  | 9-bit round slot   | 24-bit CRC
//! C-state (92) : 16-bit time | 9-bit round slot | 3-bit mode | 64-bit membership
//! * N-frame CRC is seeded with the sender's (untransmitted) C-state.
//! ```
//!
//! The layout follows the TTP/C field inventory the paper cites (global
//! time 16 bits, round slot 9 bits, membership as a vector, 24-bit CRC).
//! Exact header widths differ from the TTTech silicon; the Section 6
//! analysis therefore uses the paper's published frame-size *constants*
//! ([`crate::constants`]) rather than sizes derived from this codec.

use crate::{BitVec, CState, Crc24, Frame, FrameClass, MembershipVector, NodeId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

const TAG_BITS: u32 = 3;
const SENDER_BITS: u32 = 6;
const MCR_BITS: u32 = 4;
const DATA_LEN_BITS: u32 = 16;
const CRC_BITS: u32 = 24;

const TAG_N: u64 = 0b001;
const TAG_I: u64 = 0b010;
const TAG_X: u64 = 0b011;
const TAG_COLD_START: u64 = 0b100;

/// Errors produced while building, encoding or decoding frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodecError {
    /// An I-, X- or cold-start frame was built without a C-state.
    MissingCState(FrameClass),
    /// A field was supplied that the frame class cannot carry.
    UnexpectedField {
        /// The offending class.
        class: FrameClass,
        /// Human-readable field name.
        field: &'static str,
    },
    /// The bit stream ended before the expected end of a field.
    Truncated {
        /// Bits that were needed.
        needed: usize,
        /// Bits that were available.
        available: usize,
    },
    /// The class tag is not one of the four known frame classes.
    UnknownClassTag(u8),
    /// The transmitted CRC does not cover the received body (only
    /// checkable at decode time for explicit-C-state classes).
    CrcMismatch {
        /// CRC recomputed over the body.
        computed: u32,
        /// CRC found on the wire.
        transmitted: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::MissingCState(class) => {
                write!(f, "{class} requires a C-state")
            }
            CodecError::UnexpectedField { class, field } => {
                write!(f, "{class} cannot carry {field}")
            }
            CodecError::Truncated { needed, available } => {
                write!(
                    f,
                    "bit stream truncated: needed {needed} bits, had {available}"
                )
            }
            CodecError::UnknownClassTag(tag) => write!(f, "unknown frame class tag {tag:#b}"),
            CodecError::CrcMismatch {
                computed,
                transmitted,
            } => write!(
                f,
                "crc mismatch: computed {computed:#08x}, transmitted {transmitted:#08x}"
            ),
        }
    }
}

impl Error for CodecError {}

fn tag_of(class: FrameClass) -> u64 {
    match class {
        FrameClass::NFrame => TAG_N,
        FrameClass::IFrame => TAG_I,
        FrameClass::XFrame => TAG_X,
        FrameClass::ColdStart => TAG_COLD_START,
    }
}

fn class_of(tag: u64) -> Result<FrameClass, CodecError> {
    match tag {
        TAG_N => Ok(FrameClass::NFrame),
        TAG_I => Ok(FrameClass::IFrame),
        TAG_X => Ok(FrameClass::XFrame),
        TAG_COLD_START => Ok(FrameClass::ColdStart),
        other => Err(CodecError::UnknownClassTag(other as u8)),
    }
}

fn push_cstate(bits: &mut BitVec, cstate: &CState) {
    bits.push_bits(u64::from(cstate.global_time().ticks()), 16);
    bits.push_bits(u64::from(cstate.round_slot().get()), 9);
    bits.push_bits(u64::from(cstate.mode().get()), 3);
    bits.push_bits(cstate.membership().bits(), 64);
}

/// Computes the CRC over a frame's body (everything before the CRC field).
///
/// For N-frames the CRC is additionally seeded with `implicit_cstate`; for
/// other classes the seed is ignored.
#[must_use]
pub fn body_crc(frame: &Frame, implicit_cstate: Option<&CState>) -> u32 {
    let mut crc = Crc24::new();
    if frame.class() == FrameClass::NFrame {
        if let Some(cs) = implicit_cstate {
            crc = cs.seed_crc(crc);
        }
    }
    let body = encode_body(frame);
    crc.digest_bits(&body).finish()
}

fn encode_body(frame: &Frame) -> BitVec {
    let mut bits = BitVec::with_capacity(160 + frame.data().len());
    bits.push_bits(tag_of(frame.class()), TAG_BITS);
    bits.push_bits(u64::from(frame.sender().index()), SENDER_BITS);
    bits.push_bits(u64::from(frame.mode_change_request()), MCR_BITS);
    match frame.class() {
        FrameClass::NFrame => {
            bits.extend_from(frame.data());
        }
        FrameClass::IFrame => {
            push_cstate(&mut bits, frame.cstate().expect("I-frame has C-state"));
        }
        FrameClass::XFrame => {
            push_cstate(&mut bits, frame.cstate().expect("X-frame has C-state"));
            bits.push_bits(frame.data().len() as u64, DATA_LEN_BITS);
            bits.extend_from(frame.data());
        }
        FrameClass::ColdStart => {
            let cs = frame.cstate().expect("cold-start frame has C-state");
            bits.push_bits(u64::from(cs.global_time().ticks()), 16);
            bits.push_bits(u64::from(cs.round_slot().get()), 9);
        }
    }
    bits
}

/// Serializes a frame to its wire bits (body followed by CRC).
#[must_use]
pub fn encode_frame(frame: &Frame) -> BitVec {
    let mut bits = encode_body(frame);
    bits.push_bits(u64::from(frame.crc()), CRC_BITS);
    bits
}

struct Reader<'a> {
    bits: &'a BitVec,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, width: u32) -> Result<u64, CodecError> {
        if self.pos + width as usize > self.bits.len() {
            return Err(CodecError::Truncated {
                needed: self.pos + width as usize,
                available: self.bits.len(),
            });
        }
        let value = self.bits.read_bits(self.pos, width);
        self.pos += width as usize;
        Ok(value)
    }

    fn take_vec(&mut self, nbits: usize) -> Result<BitVec, CodecError> {
        if self.pos + nbits > self.bits.len() {
            return Err(CodecError::Truncated {
                needed: self.pos + nbits,
                available: self.bits.len(),
            });
        }
        let mut out = BitVec::with_capacity(nbits);
        for i in 0..nbits {
            out.push(self.bits.bit(self.pos + i));
        }
        self.pos += nbits;
        Ok(out)
    }

    fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

/// Parses a frame from wire bits.
///
/// The CRC of explicit-C-state classes (I-, X-, cold-start frames) is
/// verified during decode; N-frame CRCs need the receiver's C-state and are
/// checked later via [`Frame::verify_crc`].
///
/// # Errors
///
/// Returns [`CodecError::Truncated`], [`CodecError::UnknownClassTag`] or
/// [`CodecError::CrcMismatch`] on malformed input.
pub fn decode_frame(bits: &BitVec) -> Result<Frame, CodecError> {
    let mut r = Reader { bits, pos: 0 };
    let class = class_of(r.take(TAG_BITS)?)?;
    let sender_raw = r.take(SENDER_BITS)? as u8;
    let sender = NodeId::new(sender_raw);
    let mcr = r.take(MCR_BITS)? as u8;

    let (cstate, data) = match class {
        FrameClass::NFrame => {
            let payload_bits = r.remaining().saturating_sub(CRC_BITS as usize);
            (None, r.take_vec(payload_bits)?)
        }
        FrameClass::IFrame => (Some(read_cstate(&mut r)?), BitVec::new()),
        FrameClass::XFrame => {
            let cs = read_cstate(&mut r)?;
            let len = r.take(DATA_LEN_BITS)? as usize;
            (Some(cs), r.take_vec(len)?)
        }
        FrameClass::ColdStart => {
            let time = r.take(16)? as u16;
            let round_slot = r.take(9)? as u16;
            (
                Some(CState::new(time, round_slot, 0, MembershipVector::new())),
                BitVec::new(),
            )
        }
    };
    let crc = r.take(CRC_BITS)? as u32;

    let frame = Frame::from_parts(class, sender, mcr, cstate, data, crc);
    if class != FrameClass::NFrame {
        let computed = body_crc(&frame, None);
        if computed != crc {
            return Err(CodecError::CrcMismatch {
                computed,
                transmitted: crc,
            });
        }
    }
    Ok(frame)
}

fn read_cstate(r: &mut Reader<'_>) -> Result<CState, CodecError> {
    let time = r.take(16)? as u16;
    let round_slot = r.take(9)? as u16;
    let mode = r.take(3)? as u8;
    let membership = MembershipVector::from_bits(r.take(64)?);
    Ok(CState::new(time, round_slot, mode, membership))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::n_frame;
    use crate::FrameBuilder;

    fn cstate() -> CState {
        CState::new(1000, 7, 2, MembershipVector::with_members([0, 1, 3]))
    }

    #[test]
    fn iframe_round_trips() {
        let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(3))
            .mode_change_request(5)
            .cstate(cstate())
            .build()
            .unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn xframe_round_trips_with_data() {
        let frame = FrameBuilder::new(FrameClass::XFrame, NodeId::new(1))
            .cstate(cstate())
            .data_bits(&[1, 2, 3, 4, 5])
            .build()
            .unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(decoded.data().len(), 40);
    }

    #[test]
    fn cold_start_round_trips() {
        let frame = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(0))
            .cold_start(17, 1)
            .build()
            .unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
        assert_eq!(decoded.cstate().unwrap().global_time().ticks(), 17);
    }

    #[test]
    fn nframe_round_trips_and_verifies_with_matching_cstate() {
        let cs = cstate();
        let frame = n_frame(NodeId::new(2), &cs, &[0xCA, 0xFE]).unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
        assert!(decoded.verify_crc(Some(&cs)));
        assert!(!decoded.verify_crc(Some(&cs.advance_slot())));
    }

    #[test]
    fn empty_nframe_round_trips() {
        let cs = cstate();
        let frame = n_frame(NodeId::new(0), &cs, &[]).unwrap();
        let decoded = decode_frame(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
        assert!(decoded.data().is_empty());
    }

    #[test]
    fn corrupted_explicit_frame_is_rejected() {
        let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(3))
            .cstate(cstate())
            .build()
            .unwrap();
        let mut bits = frame.encode();
        bits.flip(20);
        assert!(matches!(
            decode_frame(&bits),
            Err(CodecError::CrcMismatch { .. }) | Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let frame = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(0))
            .cold_start(0, 1)
            .build()
            .unwrap();
        let bits = frame.encode();
        let mut short = BitVec::new();
        for i in 0..bits.len() - 10 {
            short.push(bits.bit(i));
        }
        assert!(matches!(
            decode_frame(&short),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bits = BitVec::new();
        bits.push_bits(0b111, 3);
        bits.push_bits(0, 60);
        assert!(matches!(
            decode_frame(&bits),
            Err(CodecError::UnknownClassTag(0b111))
        ));
    }

    #[test]
    fn wire_sizes_are_stable() {
        // Pin the codec's frame sizes so accidental layout changes surface.
        let cold = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(0))
            .cold_start(0, 1)
            .build()
            .unwrap();
        assert_eq!(cold.bit_len(), 13 + 16 + 9 + 24);
        let iframe = FrameBuilder::new(FrameClass::IFrame, NodeId::new(0))
            .cstate(cstate())
            .build()
            .unwrap();
        assert_eq!(iframe.bit_len(), 13 + 92 + 24);
        let empty_n = n_frame(NodeId::new(0), &cstate(), &[]).unwrap();
        assert_eq!(empty_n.bit_len(), 13 + 24);
    }

    #[test]
    fn error_display_is_informative() {
        let err = CodecError::Truncated {
            needed: 10,
            available: 4,
        };
        assert!(err.to_string().contains("truncated"));
        let err = CodecError::UnknownClassTag(7);
        assert!(err.to_string().contains("0b111"));
    }
}
