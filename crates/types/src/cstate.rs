//! Controller state (C-state).
//!
//! The C-state is the protocol-relevant state a TTP/C controller carries:
//! global time, position in the cluster cycle, the active cluster mode and
//! the membership vector. Receivers judge a frame *correct* only if the
//! sender's C-state matches their own — either compared explicitly
//! (I-/X-frames) or implicitly through the CRC (N-frames). A replayed
//! frame carries a *stale* C-state, which is why the paper's out-of-slot
//! coupler fault is harmless to integrated nodes but fatal to integrating
//! ones: the latter have no C-state of their own to compare against.

use crate::{Crc24, GlobalTime, MembershipVector, RoundSlot};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Cluster operating mode, carried in the C-state (3 bits in this model).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClusterMode(u8);

impl ClusterMode {
    /// Width of the mode field on the wire.
    pub const WIRE_BITS: u32 = 3;

    /// Creates a cluster mode.
    ///
    /// # Panics
    ///
    /// Panics if `mode` does not fit the 3-bit field.
    #[must_use]
    pub fn new(mode: u8) -> Self {
        assert!(mode < 8, "cluster mode {mode} exceeds 3-bit field");
        ClusterMode(mode)
    }

    /// Returns the numeric mode.
    #[must_use]
    pub fn get(self) -> u8 {
        self.0
    }
}

/// The controller state compared by receivers to judge frame correctness.
///
/// # Example
///
/// ```
/// use tta_types::{CState, MembershipVector};
///
/// let mine = CState::new(100, 3, 0, MembershipVector::full(4));
/// let replayed = mine.stale_copy();
/// assert!(!mine.matches(&replayed)); // a replay is always detectably stale
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct CState {
    global_time: GlobalTime,
    round_slot: RoundSlot,
    mode: ClusterMode,
    membership: MembershipVector,
}

impl CState {
    /// Number of C-state bits in the explicit X-frame layout the paper
    /// cites (96 bits).
    pub const WIRE_BITS: u32 = 96;

    /// Creates a C-state.
    ///
    /// # Panics
    ///
    /// Panics if `round_slot` exceeds its 9-bit field or `mode` its 3-bit
    /// field.
    #[must_use]
    pub fn new(global_time: u16, round_slot: u16, mode: u8, membership: MembershipVector) -> Self {
        CState {
            global_time: GlobalTime::new(global_time),
            round_slot: RoundSlot::new(round_slot),
            mode: ClusterMode::new(mode),
            membership,
        }
    }

    /// Global time component.
    #[must_use]
    pub fn global_time(&self) -> GlobalTime {
        self.global_time
    }

    /// Round-slot position component.
    #[must_use]
    pub fn round_slot(&self) -> RoundSlot {
        self.round_slot
    }

    /// Cluster mode component.
    #[must_use]
    pub fn mode(&self) -> ClusterMode {
        self.mode
    }

    /// Membership component.
    #[must_use]
    pub fn membership(&self) -> MembershipVector {
        self.membership
    }

    /// Replaces the membership component.
    #[must_use]
    pub fn with_membership(mut self, membership: MembershipVector) -> Self {
        self.membership = membership;
        self
    }

    /// Advances time and position by one TDMA slot.
    #[must_use]
    pub fn advance_slot(mut self) -> Self {
        self.global_time = self.global_time.advance();
        self.round_slot = self.round_slot.advance();
        self
    }

    /// Whether two C-states agree — the receiver-side correctness check.
    #[must_use]
    pub fn matches(&self, other: &CState) -> bool {
        self == other
    }

    /// Produces the C-state a one-slot-old replay of a frame would carry:
    /// identical except that time and position lag by one slot.
    ///
    /// Used in tests and examples to show why integrated receivers reject
    /// replays while integrating ones cannot.
    #[must_use]
    pub fn stale_copy(&self) -> Self {
        CState {
            global_time: GlobalTime::new(self.global_time.ticks().wrapping_sub(1)),
            round_slot: RoundSlot::new(
                (self.round_slot.get() + (1 << RoundSlot::WIRE_BITS) - 1)
                    % (1 << RoundSlot::WIRE_BITS),
            ),
            mode: self.mode,
            membership: self.membership,
        }
    }

    /// Mixes this C-state into a CRC accumulator — the implicit C-state
    /// scheme of N-frames.
    #[must_use]
    pub fn seed_crc(&self, crc: Crc24) -> Crc24 {
        crc.digest(u64::from(self.global_time.ticks()), GlobalTime::WIRE_BITS)
            .digest(u64::from(self.round_slot.get()), RoundSlot::WIRE_BITS)
            .digest(u64::from(self.mode.get()), ClusterMode::WIRE_BITS)
            .digest(self.membership.bits(), 64)
    }
}

impl fmt::Display for CState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "C-state({}, {}, mode {}, members {})",
            self.global_time,
            self.round_slot,
            self.mode.get(),
            self.membership
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_is_structural_equality() {
        let m = MembershipVector::full(4);
        let a = CState::new(10, 2, 1, m);
        let b = CState::new(10, 2, 1, m);
        assert!(a.matches(&b));
        assert!(!a.matches(&CState::new(11, 2, 1, m)));
        assert!(!a.matches(&CState::new(10, 3, 1, m)));
        assert!(!a.matches(&CState::new(10, 2, 0, m)));
        assert!(!a.matches(&a.with_membership(MembershipVector::full(3))));
    }

    #[test]
    fn advance_slot_moves_time_and_position() {
        let c = CState::new(10, 2, 0, MembershipVector::new()).advance_slot();
        assert_eq!(c.global_time().ticks(), 11);
        assert_eq!(c.round_slot().get(), 3);
    }

    #[test]
    fn stale_copy_is_detectable_and_inverse_of_advance() {
        let c = CState::new(10, 2, 0, MembershipVector::full(4));
        let stale = c.stale_copy();
        assert!(!c.matches(&stale));
        assert!(stale.advance_slot().matches(&c));
    }

    #[test]
    fn stale_copy_wraps_at_field_boundaries() {
        let c = CState::new(0, 0, 0, MembershipVector::new());
        let stale = c.stale_copy();
        assert_eq!(stale.global_time().ticks(), u16::MAX);
        assert_eq!(stale.round_slot().get(), 511);
        assert!(stale.advance_slot().matches(&c));
    }

    #[test]
    fn crc_seed_differs_for_different_cstates() {
        let a = CState::new(10, 2, 0, MembershipVector::full(4));
        let b = a.advance_slot();
        assert_ne!(
            a.seed_crc(Crc24::new()).finish(),
            b.seed_crc(Crc24::new()).finish()
        );
    }

    #[test]
    #[should_panic(expected = "3-bit")]
    fn cluster_mode_is_range_checked() {
        let _ = ClusterMode::new(8);
    }

    #[test]
    fn display_mentions_all_components() {
        let c = CState::new(7, 1, 2, MembershipVector::with_members([0]));
        let s = c.to_string();
        assert!(s.contains("t=7") && s.contains("round-slot 1") && s.contains("mode 2"));
    }
}
