//! Group membership vectors.
//!
//! TTP/C's membership service gives every node a consistent view of which
//! peers are operating correctly. Membership is carried in explicit
//! C-states (16 bits on the wire in the I-frame layout the paper cites) and
//! is exactly the data that slightly-off-specification faults desynchronize
//! between receivers, triggering clique avoidance.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of nodes considered operational, one bit per node.
///
/// # Example
///
/// ```
/// use tta_types::{MembershipVector, NodeId};
///
/// let mut members = MembershipVector::with_members([0, 2]);
/// assert!(members.contains(NodeId::new(0)));
/// assert!(!members.contains(NodeId::new(1)));
/// members.insert(NodeId::new(1));
/// assert_eq!(members.len(), 3);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MembershipVector(u64);

impl MembershipVector {
    /// The empty membership.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vector containing the given node indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is 64 or larger (see [`NodeId::new`]).
    #[must_use]
    pub fn with_members<I: IntoIterator<Item = u8>>(indices: I) -> Self {
        let mut v = Self::new();
        for i in indices {
            v.insert(NodeId::new(i));
        }
        v
    }

    /// Builds the full membership of an `n`-node cluster.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn full(n: usize) -> Self {
        assert!(n <= 64, "cluster size {n} exceeds membership width 64");
        if n == 64 {
            MembershipVector(u64::MAX)
        } else {
            MembershipVector((1u64 << n) - 1)
        }
    }

    /// Whether `node` is a member.
    #[must_use]
    pub fn contains(self, node: NodeId) -> bool {
        self.0 >> node.index() & 1 == 1
    }

    /// Adds `node` to the membership.
    pub fn insert(&mut self, node: NodeId) {
        self.0 |= 1 << node.index();
    }

    /// Removes `node` from the membership.
    pub fn remove(&mut self, node: NodeId) {
        self.0 &= !(1 << node.index());
    }

    /// Number of members.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no node is a member.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw 64-bit representation (bit *i* = node *i*).
    #[must_use]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a vector from its raw bits.
    #[must_use]
    pub fn from_bits(bits: u64) -> Self {
        MembershipVector(bits)
    }

    /// Iterates over the member node ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = NodeId> {
        (0u8..64)
            .filter(move |i| self.0 >> i & 1 == 1)
            .map(NodeId::new)
    }

    /// Members present in `self` but not in `other`.
    #[must_use]
    pub fn difference(self, other: MembershipVector) -> MembershipVector {
        MembershipVector(self.0 & !other.0)
    }

    /// Members present in both vectors.
    #[must_use]
    pub fn intersection(self, other: MembershipVector) -> MembershipVector {
        MembershipVector(self.0 & other.0)
    }
}

impl fmt::Display for MembershipVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{node}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<NodeId> for MembershipVector {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut v = Self::new();
        for node in iter {
            v.insert(node);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_round_trip() {
        let mut v = MembershipVector::new();
        let n = NodeId::new(5);
        assert!(!v.contains(n));
        v.insert(n);
        assert!(v.contains(n));
        v.remove(n);
        assert!(!v.contains(n));
        assert!(v.is_empty());
    }

    #[test]
    fn full_cluster_has_all_members() {
        let v = MembershipVector::full(4);
        assert_eq!(v.len(), 4);
        for node in NodeId::first(4) {
            assert!(v.contains(node));
        }
        assert!(!v.contains(NodeId::new(4)));
    }

    #[test]
    fn full_64_does_not_overflow() {
        assert_eq!(MembershipVector::full(64).len(), 64);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let v = MembershipVector::with_members([3, 0, 7]);
        let ids: Vec<u8> = v.iter().map(NodeId::index).collect();
        assert_eq!(ids, [0, 3, 7]);
    }

    #[test]
    fn set_operations() {
        let a = MembershipVector::with_members([0, 1, 2]);
        let b = MembershipVector::with_members([1, 2, 3]);
        assert_eq!(a.difference(b), MembershipVector::with_members([0]));
        assert_eq!(a.intersection(b), MembershipVector::with_members([1, 2]));
    }

    #[test]
    fn display_lists_members() {
        let v = MembershipVector::with_members([0, 2]);
        assert_eq!(v.to_string(), "{A,C}");
    }

    #[test]
    fn bits_round_trip() {
        let v = MembershipVector::with_members([0, 63]);
        assert_eq!(MembershipVector::from_bits(v.bits()), v);
    }

    #[test]
    fn collects_from_node_iterator() {
        let v: MembershipVector = NodeId::first(3).collect();
        assert_eq!(v, MembershipVector::full(3));
    }
}
