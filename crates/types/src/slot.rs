//! TDMA slot arithmetic and the protocol time base.
//!
//! TTP/C divides time into rounds of statically scheduled slots. The
//! paper's formal model advances one TDMA slot per transition, so slot
//! arithmetic (successor with wrap-around, distance, ownership) is the
//! time base of everything above this crate.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One-based index of a slot within a TDMA round.
///
/// The paper follows the TTP/C convention of numbering slots `1..=slots`;
/// the successor of the last slot wraps to `1` (the paper's `next_slot`).
///
/// # Example
///
/// ```
/// use tta_types::SlotIndex;
///
/// let last = SlotIndex::new(4);
/// assert_eq!(last.next(4), SlotIndex::new(1));
/// assert_eq!(SlotIndex::new(2).next(4), SlotIndex::new(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotIndex(u16);

impl SlotIndex {
    /// Creates a slot index.
    ///
    /// # Panics
    ///
    /// Panics if `index == 0`; TTP/C slot numbering is one-based and the
    /// model reserves 0 for "no id observed on the bus".
    #[must_use]
    pub fn new(index: u16) -> Self {
        assert!(index != 0, "slot indices are one-based");
        SlotIndex(index)
    }

    /// Returns the one-based numeric index.
    #[must_use]
    pub fn get(self) -> u16 {
        self.0
    }

    /// Returns the zero-based position, convenient for slice indexing.
    #[must_use]
    pub fn as_offset(self) -> usize {
        usize::from(self.0 - 1)
    }

    /// The paper's `next_slot`: `slot + 1`, wrapping to 1 after
    /// `slots_per_round`.
    ///
    /// # Panics
    ///
    /// Panics if `self` lies outside `1..=slots_per_round`.
    #[must_use]
    pub fn next(self, slots_per_round: u16) -> Self {
        assert!(
            self.0 <= slots_per_round,
            "slot {} outside round of {} slots",
            self.0,
            slots_per_round
        );
        if self.0 == slots_per_round {
            SlotIndex(1)
        } else {
            SlotIndex(self.0 + 1)
        }
    }

    /// Slot that a newly integrating node adopts after observing `self` on
    /// the bus: the paper's `if id_on_bus = slots then 1 else id_on_bus+1`.
    #[must_use]
    pub fn integration_successor(self, slots_per_round: u16) -> Self {
        self.next(slots_per_round)
    }

    /// The slot statically owned by `node` under the identity schedule used
    /// throughout the paper (node *i* sends in slot *i+1*).
    #[must_use]
    pub fn owned_by(node: NodeId) -> Self {
        SlotIndex(u16::from(node.index()) + 1)
    }

    /// Number of slots from `self` to `other` moving forward with
    /// wrap-around.
    ///
    /// # Example
    ///
    /// ```
    /// use tta_types::SlotIndex;
    /// assert_eq!(SlotIndex::new(3).forward_distance(SlotIndex::new(1), 4), 2);
    /// assert_eq!(SlotIndex::new(1).forward_distance(SlotIndex::new(1), 4), 0);
    /// ```
    #[must_use]
    pub fn forward_distance(self, other: SlotIndex, slots_per_round: u16) -> u16 {
        let a = self.0 - 1;
        let b = other.0 - 1;
        (b + slots_per_round - a) % slots_per_round
    }
}

impl fmt::Display for SlotIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

/// Round-slot position: the monotone slot counter spanning rounds that
/// cold-start frames carry (9 bits on the wire, per the TTP/C
/// Bus-Compatibility Specification).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct RoundSlot(u16);

impl RoundSlot {
    /// Width of the round-slot field in cold-start frames.
    pub const WIRE_BITS: u32 = 9;

    /// Creates a round-slot position.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in the 9-bit wire field.
    #[must_use]
    pub fn new(value: u16) -> Self {
        assert!(
            value < (1 << Self::WIRE_BITS),
            "round-slot {value} exceeds 9-bit wire field"
        );
        RoundSlot(value)
    }

    /// Returns the numeric position.
    #[must_use]
    pub fn get(self) -> u16 {
        self.0
    }

    /// Advances by one slot, wrapping within the 9-bit field.
    #[must_use]
    pub fn advance(self) -> Self {
        RoundSlot((self.0 + 1) % (1 << Self::WIRE_BITS))
    }
}

impl fmt::Display for RoundSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round-slot {}", self.0)
    }
}

/// Global time as carried in explicit C-states and cold-start frames
/// (16 bits on the wire).
///
/// The formal model counts global time in whole TDMA slots; the simulator
/// keeps the same convention so that model and simulation states are
/// directly comparable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GlobalTime(u16);

impl GlobalTime {
    /// Width of the global-time field on the wire.
    pub const WIRE_BITS: u32 = 16;

    /// Creates a global time value (macroticks = slots in this model).
    #[must_use]
    pub fn new(ticks: u16) -> Self {
        GlobalTime(ticks)
    }

    /// Returns the tick count.
    #[must_use]
    pub fn ticks(self) -> u16 {
        self.0
    }

    /// Advances by one slot, wrapping on field overflow.
    #[must_use]
    pub fn advance(self) -> Self {
        GlobalTime(self.0.wrapping_add(1))
    }

    /// Signed difference `self - other` in ticks, interpreted on the
    /// shortest wrap-around arc. This is the quantity a clock
    /// synchronization service averages.
    #[must_use]
    pub fn difference(self, other: GlobalTime) -> i32 {
        let raw = i32::from(self.0) - i32::from(other.0);
        if raw > i32::from(u16::MAX / 2) {
            raw - i32::from(u16::MAX) - 1
        } else if raw < -i32::from(u16::MAX / 2) {
            raw + i32::from(u16::MAX) + 1
        } else {
            raw
        }
    }
}

impl fmt::Display for GlobalTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_successor_wraps() {
        assert_eq!(SlotIndex::new(1).next(4), SlotIndex::new(2));
        assert_eq!(SlotIndex::new(4).next(4), SlotIndex::new(1));
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn slot_zero_is_rejected() {
        let _ = SlotIndex::new(0);
    }

    #[test]
    #[should_panic(expected = "outside round")]
    fn next_checks_round_bound() {
        let _ = SlotIndex::new(5).next(4);
    }

    #[test]
    fn ownership_is_identity_schedule() {
        assert_eq!(SlotIndex::owned_by(NodeId::new(0)), SlotIndex::new(1));
        assert_eq!(SlotIndex::owned_by(NodeId::new(3)), SlotIndex::new(4));
    }

    #[test]
    fn forward_distance_wraps() {
        let n = 6;
        assert_eq!(SlotIndex::new(5).forward_distance(SlotIndex::new(2), n), 3);
        assert_eq!(SlotIndex::new(2).forward_distance(SlotIndex::new(5), n), 3);
        assert_eq!(SlotIndex::new(4).forward_distance(SlotIndex::new(4), n), 0);
    }

    #[test]
    fn round_slot_wraps_in_nine_bits() {
        let top = RoundSlot::new(511);
        assert_eq!(top.advance(), RoundSlot::new(0));
    }

    #[test]
    #[should_panic(expected = "9-bit")]
    fn round_slot_rejects_wide_values() {
        let _ = RoundSlot::new(512);
    }

    #[test]
    fn global_time_difference_uses_shortest_arc() {
        let a = GlobalTime::new(5);
        let b = GlobalTime::new(u16::MAX - 2);
        assert_eq!(a.difference(b), 8);
        assert_eq!(b.difference(a), -8);
        assert_eq!(a.difference(a), 0);
    }

    #[test]
    fn global_time_advance_wraps() {
        assert_eq!(GlobalTime::new(u16::MAX).advance(), GlobalTime::new(0));
    }
}
