//! Cluster modes and deferred mode changes.
//!
//! A TTP/C cluster can operate in one of several *cluster modes*, each
//! with its own MEDL (e.g. startup, normal operation, limp-home). Frames
//! carry a 4-bit mode change request (MCR) field; a requested change is
//! *deferred* — it takes effect at the start of the next cluster cycle so
//! every node switches schedules simultaneously. The C-state carries the
//! current mode, so nodes in different modes judge each other's frames
//! incorrect: mode agreement is part of the consistency the paper's
//! central guardian must not corrupt.

use crate::{ClusterMode, Medl, MedlError};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The decoded meaning of a frame's 4-bit MCR field: 0 requests nothing,
/// value `k + 1` requests a switch to cluster mode `k`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ModeChangeRequest(u8);

impl ModeChangeRequest {
    /// No change requested (MCR = 0).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Requests a switch to `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the encoded value would not fit the 4-bit field
    /// (`mode > 14`).
    #[must_use]
    pub fn switch_to(mode: ClusterMode) -> Self {
        assert!(
            mode.get() <= 14,
            "mode {} does not fit the MCR field",
            mode.get()
        );
        ModeChangeRequest(mode.get() + 1)
    }

    /// Decodes a raw 4-bit field value.
    ///
    /// # Panics
    ///
    /// Panics if `raw > 15`.
    #[must_use]
    pub fn from_wire(raw: u8) -> Self {
        assert!(raw <= 15, "MCR field is 4 bits");
        ModeChangeRequest(raw)
    }

    /// Encodes to the 4-bit wire value.
    #[must_use]
    pub fn to_wire(self) -> u8 {
        self.0
    }

    /// The requested target mode, if any.
    #[must_use]
    pub fn target(self) -> Option<ClusterMode> {
        (self.0 > 0).then(|| ClusterMode::new((self.0 - 1).min(7)))
    }
}

impl fmt::Display for ModeChangeRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.target() {
            None => write!(f, "no mode change"),
            Some(mode) => write!(f, "request mode {}", mode.get()),
        }
    }
}

/// Errors from mode management.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModeError {
    /// The requested mode has no schedule.
    UnknownMode {
        /// Requested mode number.
        mode: u8,
        /// Number of configured modes.
        configured: usize,
    },
    /// A different change is already pending; TTP/C rejects conflicting
    /// requests within one cluster cycle.
    ConflictingRequest {
        /// Mode already pending.
        pending: u8,
        /// Newly requested mode.
        requested: u8,
    },
}

impl fmt::Display for ModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModeError::UnknownMode { mode, configured } => {
                write!(
                    f,
                    "mode {mode} is not configured ({configured} modes exist)"
                )
            }
            ModeError::ConflictingRequest { pending, requested } => {
                write!(
                    f,
                    "mode {requested} requested while change to {pending} is pending"
                )
            }
        }
    }
}

impl Error for ModeError {}

/// The per-node mode automaton: tracks the active mode and applies
/// deferred mode changes at cluster-cycle boundaries.
///
/// # Example
///
/// ```
/// use tta_types::modes::{ClusterSchedule, ModeChangeRequest};
/// use tta_types::{ClusterMode, Medl};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let schedule = ClusterSchedule::new(vec![Medl::identity(4)?, Medl::identity(3)?])?;
/// let mut manager = schedule.manager();
/// manager.request(ModeChangeRequest::switch_to(ClusterMode::new(1)))?;
/// assert_eq!(manager.active_mode().get(), 0, "change is deferred");
/// manager.cycle_boundary();
/// assert_eq!(manager.active_mode().get(), 1, "applied at the boundary");
/// assert_eq!(manager.active_medl().slots_per_round(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeManager {
    schedule: ClusterSchedule,
    active: u8,
    pending: Option<u8>,
}

impl ModeManager {
    /// Active cluster mode.
    #[must_use]
    pub fn active_mode(&self) -> ClusterMode {
        ClusterMode::new(self.active)
    }

    /// The MEDL of the active mode.
    #[must_use]
    pub fn active_medl(&self) -> &Medl {
        &self.schedule.medls[usize::from(self.active)]
    }

    /// The deferred target mode, if a change is pending.
    #[must_use]
    pub fn pending_mode(&self) -> Option<ClusterMode> {
        self.pending.map(ClusterMode::new)
    }

    /// Registers a mode change request (from a received frame's MCR
    /// field or the local host). The change defers to the next cycle
    /// boundary. Requesting the current or already-pending mode is a
    /// no-op; a *different* pending mode is a conflict.
    ///
    /// # Errors
    ///
    /// [`ModeError::UnknownMode`] for unconfigured modes,
    /// [`ModeError::ConflictingRequest`] for conflicting pending changes.
    pub fn request(&mut self, mcr: ModeChangeRequest) -> Result<(), ModeError> {
        let Some(target) = mcr.target() else {
            return Ok(());
        };
        let mode = target.get();
        if usize::from(mode) >= self.schedule.medls.len() {
            return Err(ModeError::UnknownMode {
                mode,
                configured: self.schedule.medls.len(),
            });
        }
        if mode == self.active && self.pending.is_none() {
            return Ok(());
        }
        match self.pending {
            None => {
                self.pending = Some(mode);
                Ok(())
            }
            Some(pending) if pending == mode => Ok(()),
            Some(pending) => Err(ModeError::ConflictingRequest {
                pending,
                requested: mode,
            }),
        }
    }

    /// Applies any pending change; call at each cluster-cycle boundary.
    /// Returns the new active mode.
    pub fn cycle_boundary(&mut self) -> ClusterMode {
        if let Some(next) = self.pending.take() {
            self.active = next;
        }
        self.active_mode()
    }
}

/// The set of per-mode schedules a cluster is configured with.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSchedule {
    medls: Vec<Medl>,
}

impl ClusterSchedule {
    /// Creates a schedule set; mode *k* uses `medls[k]`.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::EmptySchedule`] if no mode is configured.
    pub fn new(medls: Vec<Medl>) -> Result<Self, MedlError> {
        if medls.is_empty() {
            return Err(MedlError::EmptySchedule);
        }
        Ok(ClusterSchedule { medls })
    }

    /// Number of configured modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.medls.len()
    }

    /// A manager starting in mode 0.
    #[must_use]
    pub fn manager(&self) -> ModeManager {
        ModeManager {
            schedule: self.clone(),
            active: 0,
            pending: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> ClusterSchedule {
        ClusterSchedule::new(vec![
            Medl::identity(4).unwrap(),
            Medl::identity(3).unwrap(),
            Medl::identity(2).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn mcr_encodes_and_decodes() {
        assert_eq!(ModeChangeRequest::none().to_wire(), 0);
        assert_eq!(ModeChangeRequest::none().target(), None);
        let req = ModeChangeRequest::switch_to(ClusterMode::new(3));
        assert_eq!(req.to_wire(), 4);
        assert_eq!(ModeChangeRequest::from_wire(4), req);
        assert_eq!(req.target(), Some(ClusterMode::new(3)));
    }

    #[test]
    fn changes_defer_to_the_cycle_boundary() {
        let mut m = schedule().manager();
        assert_eq!(m.active_medl().slots_per_round(), 4);
        m.request(ModeChangeRequest::switch_to(ClusterMode::new(2)))
            .unwrap();
        assert_eq!(m.active_mode().get(), 0);
        assert_eq!(m.pending_mode(), Some(ClusterMode::new(2)));
        assert_eq!(m.cycle_boundary().get(), 2);
        assert_eq!(m.active_medl().slots_per_round(), 2);
        assert_eq!(m.pending_mode(), None);
    }

    #[test]
    fn unknown_modes_are_rejected() {
        let mut m = schedule().manager();
        let err = m
            .request(ModeChangeRequest::switch_to(ClusterMode::new(5)))
            .unwrap_err();
        assert!(matches!(
            err,
            ModeError::UnknownMode {
                mode: 5,
                configured: 3
            }
        ));
    }

    #[test]
    fn conflicting_requests_are_rejected() {
        let mut m = schedule().manager();
        m.request(ModeChangeRequest::switch_to(ClusterMode::new(1)))
            .unwrap();
        // Same request again: idempotent.
        m.request(ModeChangeRequest::switch_to(ClusterMode::new(1)))
            .unwrap();
        let err = m
            .request(ModeChangeRequest::switch_to(ClusterMode::new(2)))
            .unwrap_err();
        assert!(matches!(
            err,
            ModeError::ConflictingRequest {
                pending: 1,
                requested: 2
            }
        ));
    }

    #[test]
    fn requesting_the_current_mode_is_a_noop() {
        let mut m = schedule().manager();
        m.request(ModeChangeRequest::switch_to(ClusterMode::new(0)))
            .unwrap();
        assert_eq!(m.pending_mode(), None);
        m.request(ModeChangeRequest::none()).unwrap();
        assert_eq!(m.pending_mode(), None);
    }

    #[test]
    fn boundary_without_pending_change_keeps_mode() {
        let mut m = schedule().manager();
        assert_eq!(m.cycle_boundary().get(), 0);
    }

    #[test]
    fn empty_schedule_is_rejected() {
        assert_eq!(
            ClusterSchedule::new(vec![]).unwrap_err(),
            MedlError::EmptySchedule
        );
    }

    #[test]
    fn displays_are_informative() {
        assert_eq!(ModeChangeRequest::none().to_string(), "no mode change");
        assert!(ModeChangeRequest::switch_to(ClusterMode::new(2))
            .to_string()
            .contains("mode 2"));
        let err = ModeError::UnknownMode {
            mode: 9,
            configured: 2,
        };
        assert!(err.to_string().contains("9"));
    }
}
