//! Crate-level error types.

use crate::{NodeId, SlotIndex};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors constructing or consulting a MEDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MedlError {
    /// The schedule has no slots at all.
    EmptySchedule,
    /// Two slots were assigned to the same sender, which the single-sender
    /// TDMA discipline forbids in this model (multiplexed slots are out of
    /// scope).
    DuplicateSender(NodeId),
    /// A slot index was queried that lies outside the round.
    SlotOutOfRange {
        /// The offending slot.
        slot: SlotIndex,
        /// Slots per round in this MEDL.
        slots_per_round: u16,
    },
    /// A frame length below the minimum protocol frame was configured.
    FrameTooShort {
        /// Configured length in bits.
        bits: u32,
        /// Minimum allowed length in bits.
        min_bits: u32,
    },
}

impl fmt::Display for MedlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MedlError::EmptySchedule => write!(f, "schedule contains no slots"),
            MedlError::DuplicateSender(node) => {
                write!(f, "node {node} is assigned more than one slot")
            }
            MedlError::SlotOutOfRange {
                slot,
                slots_per_round,
            } => {
                write!(f, "{slot} outside round of {slots_per_round} slots")
            }
            MedlError::FrameTooShort { bits, min_bits } => {
                write!(
                    f,
                    "frame length {bits} bits is below the minimum of {min_bits} bits"
                )
            }
        }
    }
}

impl Error for MedlError {}

/// General validation errors for value types in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeError {
    /// A field value exceeded its wire width.
    FieldOverflow {
        /// Field name.
        field: &'static str,
        /// Offending value.
        value: u64,
        /// Field width in bits.
        width: u32,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::FieldOverflow {
                field,
                value,
                width,
            } => {
                write!(
                    f,
                    "value {value} does not fit the {width}-bit field `{field}`"
                )
            }
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medl_errors_display() {
        assert!(MedlError::EmptySchedule.to_string().contains("no slots"));
        assert!(MedlError::DuplicateSender(NodeId::new(1))
            .to_string()
            .contains('B'));
        let s = MedlError::SlotOutOfRange {
            slot: SlotIndex::new(9),
            slots_per_round: 4,
        }
        .to_string();
        assert!(s.contains("slot 9") && s.contains('4'));
        assert!(MedlError::FrameTooShort {
            bits: 10,
            min_bits: 28
        }
        .to_string()
        .contains("28"));
    }

    #[test]
    fn type_error_displays_field() {
        let e = TypeError::FieldOverflow {
            field: "round_slot",
            value: 600,
            width: 9,
        };
        assert!(e.to_string().contains("round_slot"));
    }
}
