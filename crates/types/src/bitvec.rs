//! A growable bit buffer used by the wire codecs.
//!
//! The guardian buffer analysis of the paper is stated in *bits*, and its
//! central result is a constraint on how many bits a star coupler may hold.
//! To make that constraint executable (the simulator's couplers really do
//! fill and drain a bit buffer) the codec layer works on an explicit bit
//! vector rather than on bytes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact, growable vector of bits with MSB-first field packing.
///
/// Fields are appended most-significant-bit first, matching the serial
/// transmission order assumed by the TTP/C frame layouts.
///
/// # Example
///
/// ```
/// use tta_types::BitVec;
///
/// let mut bits = BitVec::new();
/// bits.push_bits(0b101, 3);
/// bits.push_bits(0xF, 4);
/// assert_eq!(bits.len(), 7);
/// assert_eq!(bits.read_bits(0, 3), 0b101);
/// assert_eq!(bits.read_bits(3, 4), 0xF);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1 << (63 - offset);
        }
        self.len += 1;
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "field width {width} exceeds 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value:#x} does not fit in {width} bits"
            );
        }
        for i in (0..width).rev() {
            self.push(value >> i & 1 == 1);
        }
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn bit(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] >> (63 - index % 64) & 1 == 1
    }

    /// Reads `width` bits starting at `start`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the vector or `width > 64`.
    #[must_use]
    pub fn read_bits(&self, start: usize, width: u32) -> u64 {
        assert!(width <= 64, "field width {width} exceeds 64");
        assert!(
            start + width as usize <= self.len,
            "bit range {start}..{} out of range {}",
            start + width as usize,
            self.len
        );
        let mut value = 0u64;
        for i in 0..width as usize {
            value = value << 1 | u64::from(self.bit(start + i));
        }
        value
    }

    /// Flips the bit at `index` in place. Used by fault injectors to model
    /// channel corruption.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        self.words[index / 64] ^= 1 << (63 - index % 64);
    }

    /// Iterates over all bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.bit(i))
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &BitVec) {
        for bit in other.iter() {
            self.push(bit);
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        for (i, bit) in self.iter().enumerate() {
            if i > 0 && i % 8 == 0 {
                write!(f, "_")?;
            }
            write!(f, "{}", u8::from(bit))?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut bits = BitVec::new();
        for bit in iter {
            bits.push(bit);
        }
        bits
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut bits = BitVec::new();
        bits.push_bits(0xABCD, 16);
        bits.push_bits(0x3, 2);
        bits.push_bits(0x1FFFFF, 21);
        assert_eq!(bits.len(), 39);
        assert_eq!(bits.read_bits(0, 16), 0xABCD);
        assert_eq!(bits.read_bits(16, 2), 0x3);
        assert_eq!(bits.read_bits(18, 21), 0x1FFFFF);
    }

    #[test]
    fn single_bits_pack_msb_first() {
        let mut bits = BitVec::new();
        bits.push(true);
        bits.push(false);
        bits.push(true);
        assert_eq!(bits.read_bits(0, 3), 0b101);
    }

    #[test]
    fn crosses_word_boundaries() {
        let mut bits = BitVec::new();
        for _ in 0..10 {
            bits.push_bits(0xDEAD_BEEF, 32);
        }
        assert_eq!(bits.len(), 320);
        for i in 0..10 {
            assert_eq!(bits.read_bits(i * 32, 32), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn flip_inverts_one_bit() {
        let mut bits = BitVec::new();
        bits.push_bits(0, 8);
        bits.flip(3);
        assert_eq!(bits.read_bits(0, 8), 0b0001_0000);
        bits.flip(3);
        assert_eq!(bits.read_bits(0, 8), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_bits_validates_value_width() {
        let mut bits = BitVec::new();
        bits.push_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_bits_checks_bounds() {
        let bits = BitVec::new();
        let _ = bits.read_bits(0, 1);
    }

    #[test]
    fn from_iterator_collects() {
        let bits: BitVec = [true, false, true, true].into_iter().collect();
        assert_eq!(bits.len(), 4);
        assert_eq!(bits.read_bits(0, 4), 0b1011);
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = BitVec::new();
        a.push_bits(0b11, 2);
        let mut b = BitVec::new();
        b.push_bits(0b01, 2);
        a.extend_from(&b);
        assert_eq!(a.read_bits(0, 4), 0b1101);
    }

    #[test]
    fn debug_is_nonempty_for_empty_vec() {
        let bits = BitVec::new();
        assert!(!format!("{bits:?}").is_empty());
    }

    #[test]
    fn full_64_bit_field() {
        let mut bits = BitVec::new();
        bits.push_bits(u64::MAX, 64);
        assert_eq!(bits.read_bits(0, 64), u64::MAX);
    }
}
