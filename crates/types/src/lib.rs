//! # tta-types
//!
//! Bit-accurate data types for the Time-Triggered Protocol (TTP/C) as used
//! by the DSN 2004 paper *Fault Tolerance Tradeoffs in Moving from
//! Decentralized to Centralized Embedded Systems*.
//!
//! This crate is the lowest substrate of the reproduction. It provides:
//!
//! * identifiers and time bases ([`NodeId`], [`SlotIndex`], [`GlobalTime`],
//!   [`RoundSlot`]),
//! * the abstract channel alphabet the paper's formal model uses
//!   ([`FrameKind`]: silence, cold-start, explicit C-state, regular, bad),
//! * bit-accurate wire frames ([`Frame`], [`codec`]) for the four TTP/C
//!   frame classes (N-, I-, X- and cold-start frames) with a real 24-bit
//!   CRC ([`Crc24`]),
//! * the controller state ([`CState`]) and membership vector
//!   ([`MembershipVector`]) that semantic analysis in a central guardian
//!   inspects,
//! * the message descriptor list ([`Medl`]) that statically assigns TDMA
//!   slots, and
//! * the frame-size constants of the TTP/C Bus-Compatibility Specification
//!   that Section 6 of the paper plugs into its buffer-size equations
//!   ([`constants`]).
//!
//! # Example
//!
//! ```
//! use tta_types::{CState, Crc24, FrameBuilder, FrameClass, MembershipVector, NodeId};
//!
//! # fn main() -> Result<(), tta_types::CodecError> {
//! let cstate = CState::new(17, 3, 0, MembershipVector::with_members([0, 1, 2]));
//! let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(2))
//!     .cstate(cstate)
//!     .build()?;
//! let bits = frame.encode();
//! let decoded = tta_types::decode_frame(&bits)?;
//! assert_eq!(decoded.cstate(), Some(&cstate));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bitvec;
pub mod codec;
pub mod constants;
mod crc;
mod cstate;
mod error;
mod frame;
mod medl;
mod membership;
pub mod modes;
mod node;
mod slot;

pub use bitvec::BitVec;
pub use codec::{decode_frame, CodecError};
pub use crc::Crc24;
pub use cstate::{CState, ClusterMode};
pub use error::{MedlError, TypeError};
pub use frame::{n_frame, Frame, FrameBuilder, FrameClass, FrameKind};
pub use medl::{Medl, MedlBuilder, SlotDescriptor};
pub use membership::MembershipVector;
pub use node::NodeId;
pub use slot::{GlobalTime, RoundSlot, SlotIndex};
