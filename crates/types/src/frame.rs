//! Frames: the abstract channel alphabet of the formal model and the
//! bit-accurate wire frames of the simulator.
//!
//! The paper's Section 4 model observes the channel through a five-letter
//! alphabet ([`FrameKind`]): silence, a cold-start frame, a frame with
//! explicit C-state, a bad frame, or a regular frame without explicit
//! C-state. The simulator additionally exchanges real bit-encoded frames
//! ([`Frame`]) in the four TTP/C frame classes ([`FrameClass`]).

use crate::codec;
use crate::{BitVec, CState, CodecError, MembershipVector, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The channel alphabet of the paper's formal model (Section 4.3).
///
/// One value of this enum is "on" each channel in every TDMA slot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum FrameKind {
    /// Silence: no activity observed during the slot (`none`). A silent
    /// slot is *null* — neither invalid nor incorrect.
    #[default]
    None,
    /// A cold-start frame signalling the start of a TDMA round
    /// (`cold_start`).
    ColdStart,
    /// A frame carrying an explicit C-state, used for immediate
    /// integration (`c_state`).
    CState,
    /// A syntactically bad frame or noise (`bad_frame`).
    Bad,
    /// A regular frame without explicit C-state (`other`).
    Other,
}

impl FrameKind {
    /// Whether the slot carried any activity at all.
    #[must_use]
    pub fn is_traffic(self) -> bool {
        self != FrameKind::None
    }

    /// Whether a node in the `listen` state resets its timeout on this
    /// observation (the paper resets on cold-start and regular frames).
    #[must_use]
    pub fn resets_listen_timeout(self) -> bool {
        matches!(self, FrameKind::ColdStart | FrameKind::Other)
    }

    /// Whether a listening node may integrate on this frame.
    #[must_use]
    pub fn supports_integration(self) -> bool {
        matches!(self, FrameKind::ColdStart | FrameKind::CState)
    }

    /// All alphabet letters, useful for exhaustive enumeration in the
    /// model checker and in tests.
    #[must_use]
    pub fn all() -> [FrameKind; 5] {
        [
            FrameKind::None,
            FrameKind::ColdStart,
            FrameKind::CState,
            FrameKind::Bad,
            FrameKind::Other,
        ]
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FrameKind::None => "none",
            FrameKind::ColdStart => "cold_start",
            FrameKind::CState => "c_state",
            FrameKind::Bad => "bad_frame",
            FrameKind::Other => "other",
        };
        f.write_str(name)
    }
}

/// The four TTP/C frame classes of the Bus-Compatibility Specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FrameClass {
    /// N-frame: application data with *implicit* C-state (the C-state is
    /// mixed into the CRC but not transmitted).
    NFrame,
    /// I-frame: explicit C-state, no application data; used for
    /// (re)integration.
    IFrame,
    /// X-frame: explicit C-state *and* application data.
    XFrame,
    /// Cold-start frame: announces global time and round-slot position
    /// during startup.
    ColdStart,
}

impl FrameClass {
    /// The abstract alphabet letter a receiver maps this class to.
    #[must_use]
    pub fn kind(self) -> FrameKind {
        match self {
            FrameClass::NFrame => FrameKind::Other,
            FrameClass::IFrame | FrameClass::XFrame => FrameKind::CState,
            FrameClass::ColdStart => FrameKind::ColdStart,
        }
    }
}

impl fmt::Display for FrameClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FrameClass::NFrame => "N-frame",
            FrameClass::IFrame => "I-frame",
            FrameClass::XFrame => "X-frame",
            FrameClass::ColdStart => "cold-start frame",
        };
        f.write_str(name)
    }
}

/// A bit-accurate TTP/C frame.
///
/// Note on fidelity: real TTP/C does not transmit a sender id in N-frames —
/// the sender is implied by the slot. This model *does* carry a 6-bit
/// sender field in every header so that masquerading (a frame whose claimed
/// identity disagrees with its slot) is an explicit, checkable wire
/// property, which is what the central guardian's semantic analysis
/// inspects. The frame-size constants used by the Section 6 analysis live
/// in [`crate::constants`] and are taken verbatim from the paper, not from
/// this codec.
///
/// # Example
///
/// ```
/// use tta_types::{FrameBuilder, FrameClass, FrameKind, NodeId};
///
/// # fn main() -> Result<(), tta_types::CodecError> {
/// let frame = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(0))
///     .cold_start(0, 1)
///     .build()?;
/// assert_eq!(frame.kind(), FrameKind::ColdStart);
/// assert!(frame.verify_crc(None));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    class: FrameClass,
    sender: NodeId,
    mode_change_request: u8,
    cstate: Option<CState>,
    data: BitVec,
    crc: u32,
}

impl Frame {
    pub(crate) fn from_parts(
        class: FrameClass,
        sender: NodeId,
        mode_change_request: u8,
        cstate: Option<CState>,
        data: BitVec,
        crc: u32,
    ) -> Self {
        Frame {
            class,
            sender,
            mode_change_request,
            cstate,
            data,
            crc,
        }
    }

    /// Frame class on the wire.
    #[must_use]
    pub fn class(&self) -> FrameClass {
        self.class
    }

    /// Claimed sender identity.
    #[must_use]
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// Mode change request field (4 bits).
    #[must_use]
    pub fn mode_change_request(&self) -> u8 {
        self.mode_change_request
    }

    /// Explicit C-state, if the class carries one. Cold-start frames carry
    /// a partial C-state (time and round slot only, other fields zero).
    #[must_use]
    pub fn cstate(&self) -> Option<&CState> {
        self.cstate.as_ref()
    }

    /// Application data bits (N- and X-frames).
    #[must_use]
    pub fn data(&self) -> &BitVec {
        &self.data
    }

    /// CRC as transmitted.
    #[must_use]
    pub fn crc(&self) -> u32 {
        self.crc
    }

    /// Abstract alphabet letter for the formal model.
    #[must_use]
    pub fn kind(&self) -> FrameKind {
        self.class.kind()
    }

    /// Serializes the frame to its wire bits.
    #[must_use]
    pub fn encode(&self) -> BitVec {
        codec::encode_frame(self)
    }

    /// Total frame length on the wire in bits (excluding line encoding
    /// overhead, which the Section 6 analysis accounts for separately).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.encode().len()
    }

    /// Recomputes the CRC over the frame body and compares it with the
    /// transmitted one.
    ///
    /// For N-frames the C-state is implicit: pass the *receiver's* C-state
    /// as the seed. A receiver whose C-state differs from the sender's sees
    /// a mismatch — this is how implicit C-state frames are judged
    /// incorrect. Explicit-C-state classes ignore the seed.
    #[must_use]
    pub fn verify_crc(&self, receiver_cstate: Option<&CState>) -> bool {
        codec::body_crc(self, receiver_cstate) == self.crc
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} from {} ({} bits)",
            self.class,
            self.sender,
            self.bit_len()
        )
    }
}

/// Builder for [`Frame`], computing the CRC at build time.
///
/// # Example
///
/// ```
/// use tta_types::{CState, FrameBuilder, FrameClass, MembershipVector, NodeId};
///
/// # fn main() -> Result<(), tta_types::CodecError> {
/// let cs = CState::new(9, 2, 0, MembershipVector::full(4));
/// let frame = FrameBuilder::new(FrameClass::XFrame, NodeId::new(1))
///     .cstate(cs)
///     .data_bits(&[0xDE, 0xAD])
///     .build()?;
/// assert_eq!(frame.cstate(), Some(&cs));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    class: FrameClass,
    sender: NodeId,
    mode_change_request: u8,
    cstate: Option<CState>,
    implicit_cstate: Option<CState>,
    data: BitVec,
}

impl FrameBuilder {
    /// Starts a frame of the given class from the given sender.
    #[must_use]
    pub fn new(class: FrameClass, sender: NodeId) -> Self {
        FrameBuilder {
            class,
            sender,
            mode_change_request: 0,
            cstate: None,
            implicit_cstate: None,
            data: BitVec::new(),
        }
    }

    /// Sets the mode change request field (low 4 bits used).
    #[must_use]
    pub fn mode_change_request(mut self, mcr: u8) -> Self {
        self.mode_change_request = mcr & 0xF;
        self
    }

    /// Sets the explicit C-state (I- and X-frames).
    #[must_use]
    pub fn cstate(mut self, cstate: CState) -> Self {
        self.cstate = Some(cstate);
        self
    }

    /// Sets the cold-start announcement: global time and round-slot
    /// position. Only meaningful for [`FrameClass::ColdStart`].
    #[must_use]
    pub fn cold_start(mut self, global_time: u16, round_slot: u16) -> Self {
        self.cstate = Some(CState::new(
            global_time,
            round_slot,
            0,
            MembershipVector::new(),
        ));
        self
    }

    /// Seeds the CRC with the sender's C-state without transmitting it
    /// (N-frames' implicit C-state).
    #[must_use]
    pub fn implicit_cstate(mut self, cstate: CState) -> Self {
        self.implicit_cstate = Some(cstate);
        self
    }

    /// Appends whole bytes of application data.
    #[must_use]
    pub fn data_bits(mut self, bytes: &[u8]) -> Self {
        for byte in bytes {
            self.data.push_bits(u64::from(*byte), 8);
        }
        self
    }

    /// Appends raw application data bits.
    #[must_use]
    pub fn raw_data(mut self, bits: BitVec) -> Self {
        self.data = bits;
        self
    }

    /// Builds the frame, computing its CRC.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::MissingCState`] if an I-, X- or cold-start
    /// frame has no C-state, [`CodecError::UnexpectedField`] if an N-frame
    /// was given an explicit C-state or a non-data class was given data.
    pub fn build(self) -> Result<Frame, CodecError> {
        match self.class {
            FrameClass::IFrame | FrameClass::XFrame | FrameClass::ColdStart => {
                if self.cstate.is_none() {
                    return Err(CodecError::MissingCState(self.class));
                }
            }
            FrameClass::NFrame => {
                if self.cstate.is_some() {
                    return Err(CodecError::UnexpectedField {
                        class: self.class,
                        field: "explicit C-state",
                    });
                }
            }
        }
        if matches!(self.class, FrameClass::IFrame | FrameClass::ColdStart) && !self.data.is_empty()
        {
            return Err(CodecError::UnexpectedField {
                class: self.class,
                field: "application data",
            });
        }
        // Cold-start frames carry only time and position; normalize so that
        // encode/decode round trips are exact.
        let cstate = match (self.class, self.cstate) {
            (FrameClass::ColdStart, Some(cs)) => Some(CState::new(
                cs.global_time().ticks(),
                cs.round_slot().get(),
                0,
                MembershipVector::new(),
            )),
            (_, cs) => cs,
        };
        let mut frame = Frame {
            class: self.class,
            sender: self.sender,
            mode_change_request: self.mode_change_request,
            cstate,
            data: self.data,
            crc: 0,
        };
        let seed = match self.class {
            FrameClass::NFrame => self.implicit_cstate,
            _ => None,
        };
        frame.crc = codec::body_crc(&frame, seed.as_ref());
        Ok(frame)
    }
}

/// Convenience constructor used throughout tests and examples: an N-frame
/// with `bytes` of payload whose CRC is seeded with the sender's C-state.
///
/// # Errors
///
/// Propagates [`FrameBuilder::build`] errors (none are reachable for this
/// combination of fields).
pub fn n_frame(sender: NodeId, cstate: &CState, bytes: &[u8]) -> Result<Frame, CodecError> {
    FrameBuilder::new(FrameClass::NFrame, sender)
        .implicit_cstate(*cstate)
        .data_bits(bytes)
        .build()
}

impl Frame {
    /// Recomputes a consistent CRC for test doubles. Hidden from docs:
    /// only fault injectors should need to forge CRCs.
    #[doc(hidden)]
    #[must_use]
    pub fn with_forged_crc(mut self, crc: u32) -> Self {
        self.crc = crc & 0x00FF_FFFF;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cstate() -> CState {
        CState::new(42, 3, 1, MembershipVector::full(4))
    }

    #[test]
    fn kind_maps_classes_to_alphabet() {
        assert_eq!(FrameClass::NFrame.kind(), FrameKind::Other);
        assert_eq!(FrameClass::IFrame.kind(), FrameKind::CState);
        assert_eq!(FrameClass::XFrame.kind(), FrameKind::CState);
        assert_eq!(FrameClass::ColdStart.kind(), FrameKind::ColdStart);
    }

    #[test]
    fn alphabet_properties_match_paper() {
        assert!(!FrameKind::None.is_traffic());
        assert!(FrameKind::Bad.is_traffic());
        assert!(FrameKind::ColdStart.resets_listen_timeout());
        assert!(FrameKind::Other.resets_listen_timeout());
        assert!(!FrameKind::CState.resets_listen_timeout());
        assert!(!FrameKind::Bad.resets_listen_timeout());
        assert!(FrameKind::ColdStart.supports_integration());
        assert!(FrameKind::CState.supports_integration());
        assert!(!FrameKind::Other.supports_integration());
    }

    #[test]
    fn all_lists_five_letters() {
        let letters = FrameKind::all();
        assert_eq!(letters.len(), 5);
        let unique: std::collections::HashSet<_> = letters.iter().collect();
        assert_eq!(unique.len(), 5);
    }

    #[test]
    fn iframe_requires_cstate() {
        let err = FrameBuilder::new(FrameClass::IFrame, NodeId::new(0)).build();
        assert!(matches!(
            err,
            Err(CodecError::MissingCState(FrameClass::IFrame))
        ));
    }

    #[test]
    fn nframe_rejects_explicit_cstate() {
        let err = FrameBuilder::new(FrameClass::NFrame, NodeId::new(0))
            .cstate(cstate())
            .build();
        assert!(matches!(err, Err(CodecError::UnexpectedField { .. })));
    }

    #[test]
    fn iframe_rejects_data() {
        let err = FrameBuilder::new(FrameClass::IFrame, NodeId::new(0))
            .cstate(cstate())
            .data_bits(&[1])
            .build();
        assert!(matches!(err, Err(CodecError::UnexpectedField { .. })));
    }

    #[test]
    fn cold_start_normalizes_cstate() {
        let frame = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(2))
            .cstate(cstate())
            .build()
            .unwrap();
        let cs = frame.cstate().unwrap();
        assert_eq!(cs.global_time().ticks(), 42);
        assert_eq!(cs.round_slot().get(), 3);
        assert_eq!(cs.mode().get(), 0);
        assert!(cs.membership().is_empty());
    }

    #[test]
    fn explicit_frames_verify_without_seed() {
        let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(1))
            .cstate(cstate())
            .build()
            .unwrap();
        assert!(frame.verify_crc(None));
        assert!(frame.verify_crc(Some(&cstate()))); // seed ignored
    }

    #[test]
    fn nframe_crc_is_cstate_dependent() {
        let cs = cstate();
        let frame = n_frame(NodeId::new(0), &cs, &[0xAA, 0xBB]).unwrap();
        assert!(frame.verify_crc(Some(&cs)));
        assert!(!frame.verify_crc(Some(&cs.advance_slot())));
        assert!(!frame.verify_crc(None));
    }

    #[test]
    fn forged_crc_fails_verification() {
        let frame = FrameBuilder::new(FrameClass::IFrame, NodeId::new(1))
            .cstate(cstate())
            .build()
            .unwrap();
        let good_crc = frame.crc();
        let forged = frame.with_forged_crc(good_crc ^ 1);
        assert!(!forged.verify_crc(None));
    }

    #[test]
    fn display_includes_class_and_sender() {
        let frame = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(0))
            .cold_start(0, 1)
            .build()
            .unwrap();
        let s = frame.to_string();
        assert!(s.contains("cold-start") && s.contains('A'));
    }

    #[test]
    fn mcr_is_masked_to_four_bits() {
        let frame = FrameBuilder::new(FrameClass::ColdStart, NodeId::new(0))
            .mode_change_request(0xFF)
            .cold_start(0, 1)
            .build()
            .unwrap();
        assert_eq!(frame.mode_change_request(), 0xF);
    }
}
