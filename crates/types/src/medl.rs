//! Message Descriptor List (MEDL): the static TDMA schedule.
//!
//! TTP/C assigns every slot to a sender *prior to system startup* in the
//! MEDL; a node decides when to transmit purely from its own slot counter
//! and the MEDL. The MEDL also records each slot's frame length, which is
//! what couples the Section 6 buffer analysis to the schedule: the
//! guardian's buffer bound depends on the longest and shortest frames the
//! MEDL admits.

use crate::constants::N_FRAME_MIN_BITS;
use crate::{FrameClass, MedlError, NodeId, SlotIndex};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Description of a single TDMA slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlotDescriptor {
    sender: NodeId,
    frame_class: FrameClass,
    frame_bits: u32,
}

impl SlotDescriptor {
    /// Creates a slot descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::FrameTooShort`] if `frame_bits` is below the
    /// 28-bit protocol minimum.
    pub fn new(
        sender: NodeId,
        frame_class: FrameClass,
        frame_bits: u32,
    ) -> Result<Self, MedlError> {
        if frame_bits < N_FRAME_MIN_BITS {
            return Err(MedlError::FrameTooShort {
                bits: frame_bits,
                min_bits: N_FRAME_MIN_BITS,
            });
        }
        Ok(SlotDescriptor {
            sender,
            frame_class,
            frame_bits,
        })
    }

    /// Node assigned to send in this slot.
    #[must_use]
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// Frame class scheduled for this slot.
    #[must_use]
    pub fn frame_class(&self) -> FrameClass {
        self.frame_class
    }

    /// Scheduled frame length in bits.
    #[must_use]
    pub fn frame_bits(&self) -> u32 {
        self.frame_bits
    }
}

/// The static TDMA schedule shared by all nodes and guardians.
///
/// # Example
///
/// ```
/// use tta_types::{Medl, NodeId, SlotIndex};
///
/// # fn main() -> Result<(), tta_types::MedlError> {
/// let medl = Medl::identity(4)?;
/// assert_eq!(medl.slots_per_round(), 4);
/// assert_eq!(medl.sender_of(SlotIndex::new(3))?, NodeId::new(2));
/// assert_eq!(medl.slot_of(NodeId::new(0)), Some(SlotIndex::new(1)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Medl {
    slots: Vec<SlotDescriptor>,
}

impl Medl {
    /// Builds the identity schedule the paper uses: node *i* owns slot
    /// *i + 1*, every slot carries an explicit-C-state I-frame of the
    /// protocol minimum size.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::EmptySchedule`] if `nodes == 0`.
    pub fn identity(nodes: usize) -> Result<Self, MedlError> {
        let mut builder = MedlBuilder::new();
        for node in NodeId::first(nodes) {
            builder = builder.slot(
                node,
                FrameClass::IFrame,
                crate::constants::I_FRAME_PROTOCOL_BITS,
            )?;
        }
        builder.build()
    }

    /// Number of slots in one TDMA round.
    #[must_use]
    pub fn slots_per_round(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Descriptor of a slot.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::SlotOutOfRange`] for slots past the round.
    pub fn descriptor(&self, slot: SlotIndex) -> Result<&SlotDescriptor, MedlError> {
        self.slots
            .get(slot.as_offset())
            .ok_or(MedlError::SlotOutOfRange {
                slot,
                slots_per_round: self.slots_per_round(),
            })
    }

    /// Sender assigned to `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::SlotOutOfRange`] for slots past the round.
    pub fn sender_of(&self, slot: SlotIndex) -> Result<NodeId, MedlError> {
        Ok(self.descriptor(slot)?.sender())
    }

    /// The slot owned by `node`, if any.
    #[must_use]
    pub fn slot_of(&self, node: NodeId) -> Option<SlotIndex> {
        self.slots
            .iter()
            .position(|d| d.sender() == node)
            .map(|i| SlotIndex::new(i as u16 + 1))
    }

    /// Longest scheduled frame in bits (the analysis' f_max as configured).
    #[must_use]
    pub fn max_frame_bits(&self) -> u32 {
        self.slots
            .iter()
            .map(SlotDescriptor::frame_bits)
            .max()
            .unwrap_or(0)
    }

    /// Shortest scheduled frame in bits (the analysis' f_min as
    /// configured).
    #[must_use]
    pub fn min_frame_bits(&self) -> u32 {
        self.slots
            .iter()
            .map(SlotDescriptor::frame_bits)
            .min()
            .unwrap_or(0)
    }

    /// Iterates over `(slot, descriptor)` pairs in schedule order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotIndex, &SlotDescriptor)> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, d)| (SlotIndex::new(i as u16 + 1), d))
    }
}

impl fmt::Display for Medl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "MEDL ({} slots/round):", self.slots_per_round())?;
        for (slot, d) in self.iter() {
            writeln!(
                f,
                "  {slot}: {} sends {} ({} bits)",
                d.sender(),
                d.frame_class(),
                d.frame_bits()
            )?;
        }
        Ok(())
    }
}

/// Builder for [`Medl`].
#[derive(Debug, Clone, Default)]
pub struct MedlBuilder {
    slots: Vec<SlotDescriptor>,
}

impl MedlBuilder {
    /// Starts an empty schedule.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a slot for `sender`.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::DuplicateSender`] if `sender` already owns a
    /// slot, or [`MedlError::FrameTooShort`] for sub-minimum frames.
    pub fn slot(
        mut self,
        sender: NodeId,
        frame_class: FrameClass,
        frame_bits: u32,
    ) -> Result<Self, MedlError> {
        if self.slots.iter().any(|d| d.sender() == sender) {
            return Err(MedlError::DuplicateSender(sender));
        }
        self.slots
            .push(SlotDescriptor::new(sender, frame_class, frame_bits)?);
        Ok(self)
    }

    /// Finalizes the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`MedlError::EmptySchedule`] if no slot was added.
    pub fn build(self) -> Result<Medl, MedlError> {
        if self.slots.is_empty() {
            return Err(MedlError::EmptySchedule);
        }
        Ok(Medl { slots: self.slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{I_FRAME_PROTOCOL_BITS, X_FRAME_MAX_BITS};

    #[test]
    fn identity_schedule_matches_paper_convention() {
        let medl = Medl::identity(4).unwrap();
        for node in NodeId::first(4) {
            assert_eq!(medl.slot_of(node), Some(SlotIndex::owned_by(node)));
            assert_eq!(medl.sender_of(SlotIndex::owned_by(node)).unwrap(), node);
        }
    }

    #[test]
    fn empty_schedule_is_rejected() {
        assert_eq!(
            MedlBuilder::new().build().unwrap_err(),
            MedlError::EmptySchedule
        );
        assert_eq!(Medl::identity(0).unwrap_err(), MedlError::EmptySchedule);
    }

    #[test]
    fn duplicate_sender_is_rejected() {
        let err = MedlBuilder::new()
            .slot(NodeId::new(0), FrameClass::IFrame, 76)
            .unwrap()
            .slot(NodeId::new(0), FrameClass::NFrame, 28)
            .unwrap_err();
        assert_eq!(err, MedlError::DuplicateSender(NodeId::new(0)));
    }

    #[test]
    fn sub_minimum_frames_are_rejected() {
        let err = SlotDescriptor::new(NodeId::new(0), FrameClass::NFrame, 27).unwrap_err();
        assert!(matches!(
            err,
            MedlError::FrameTooShort {
                bits: 27,
                min_bits: 28
            }
        ));
    }

    #[test]
    fn out_of_range_slot_is_reported() {
        let medl = Medl::identity(2).unwrap();
        let err = medl.sender_of(SlotIndex::new(3)).unwrap_err();
        assert!(matches!(err, MedlError::SlotOutOfRange { .. }));
    }

    #[test]
    fn frame_extremes_track_configuration() {
        let medl = MedlBuilder::new()
            .slot(NodeId::new(0), FrameClass::NFrame, 28)
            .unwrap()
            .slot(NodeId::new(1), FrameClass::XFrame, X_FRAME_MAX_BITS)
            .unwrap()
            .slot(NodeId::new(2), FrameClass::IFrame, I_FRAME_PROTOCOL_BITS)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(medl.min_frame_bits(), 28);
        assert_eq!(medl.max_frame_bits(), X_FRAME_MAX_BITS);
    }

    #[test]
    fn display_lists_every_slot() {
        let medl = Medl::identity(3).unwrap();
        let s = medl.to_string();
        assert!(s.contains("slot 1") && s.contains("slot 3"));
    }

    #[test]
    fn iter_covers_round_in_order() {
        let medl = Medl::identity(4).unwrap();
        let slots: Vec<u16> = medl.iter().map(|(s, _)| s.get()).collect();
        assert_eq!(slots, [1, 2, 3, 4]);
    }
}
