//! 24-bit cyclic redundancy check.
//!
//! TTP/C protects every frame with a 24-bit CRC, and the C-state may be
//! covered *implicitly* by mixing it into the CRC computation without
//! transmitting it (N-frames) — receivers with a different C-state then
//! see a CRC mismatch. That implicit scheme is why a central guardian that
//! wants to check C-states must either carry its own C-state or buffer
//! enough of the frame for semantic analysis, which is exactly the
//! authority the paper scrutinizes.

use crate::BitVec;
use serde::{Deserialize, Serialize};

/// Width of the CRC in bits.
pub const CRC_BITS: u32 = 24;

const POLY: u32 = 0x5D_6DCB; // 24-bit polynomial (AUTOSAR CRC-24 family).
const MASK: u32 = 0x00FF_FFFF;

/// A 24-bit CRC accumulator.
///
/// The accumulator is fed bit-by-bit so it can digest the unpadded bit
/// streams the codecs produce, and it can be seeded with a C-state to model
/// TTP/C's implicit C-state coverage.
///
/// # Example
///
/// ```
/// use tta_types::{BitVec, Crc24};
///
/// let mut payload = BitVec::new();
/// payload.push_bits(0b1010, 4);
///
/// let crc = Crc24::new().digest_bits(&payload).finish();
/// let altered = {
///     let mut p = payload.clone();
///     p.flip(1);
///     Crc24::new().digest_bits(&p).finish()
/// };
/// assert_ne!(crc, altered);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Crc24 {
    state: u32,
}

impl Crc24 {
    /// Creates a fresh accumulator with the TTP/C initial value (all ones).
    #[must_use]
    pub fn new() -> Self {
        Crc24 { state: MASK }
    }

    /// Feeds a single bit.
    #[must_use]
    pub fn digest_bit(mut self, bit: bool) -> Self {
        let top = (self.state >> (CRC_BITS - 1)) & 1 == 1;
        self.state = (self.state << 1) & MASK;
        if top != bit {
            self.state ^= POLY & MASK;
        }
        self
    }

    /// Feeds the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    #[must_use]
    pub fn digest(mut self, value: u64, width: u32) -> Self {
        assert!(width <= 64, "field width {width} exceeds 64");
        for i in (0..width).rev() {
            self = self.digest_bit(value >> i & 1 == 1);
        }
        self
    }

    /// Feeds every bit of a [`BitVec`].
    #[must_use]
    pub fn digest_bits(mut self, bits: &BitVec) -> Self {
        for bit in bits.iter() {
            self = self.digest_bit(bit);
        }
        self
    }

    /// Returns the 24-bit checksum.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state & MASK
    }
}

impl Default for Crc24 {
    fn default() -> Self {
        Crc24::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crc_of(bits: &BitVec) -> u32 {
        Crc24::new().digest_bits(bits).finish()
    }

    #[test]
    fn checksum_fits_in_24_bits() {
        let mut bits = BitVec::new();
        bits.push_bits(u64::MAX, 64);
        assert!(crc_of(&bits) <= MASK);
    }

    #[test]
    fn empty_input_has_initial_state() {
        assert_eq!(Crc24::new().finish(), MASK);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut bits = BitVec::new();
        bits.push_bits(0x1234_5678_9ABC, 48);
        let reference = crc_of(&bits);
        for i in 0..bits.len() {
            let mut flipped = bits.clone();
            flipped.flip(i);
            assert_ne!(crc_of(&flipped), reference, "flip at bit {i} undetected");
        }
    }

    #[test]
    fn digest_is_incremental() {
        let a = Crc24::new().digest(0xAB, 8).digest(0xCD, 8).finish();
        let mut bits = BitVec::new();
        bits.push_bits(0xABCD, 16);
        assert_eq!(a, crc_of(&bits));
    }

    #[test]
    fn seeding_models_implicit_cstate() {
        // Two receivers with different C-states disagree on the checksum of
        // the same payload — the mechanism behind implicit C-state frames.
        let mut payload = BitVec::new();
        payload.push_bits(0b1100_1010, 8);
        let with_cstate_a = Crc24::new()
            .digest(0x0101, 16)
            .digest_bits(&payload)
            .finish();
        let with_cstate_b = Crc24::new()
            .digest(0x0102, 16)
            .digest_bits(&payload)
            .finish();
        assert_ne!(with_cstate_a, with_cstate_b);
    }

    #[test]
    fn detects_all_double_bit_errors_in_short_frames() {
        // Exhaustive check on a 28-bit N-frame-sized payload.
        let mut bits = BitVec::new();
        bits.push_bits(0xAB_CDEF, 28);
        let reference = crc_of(&bits);
        for i in 0..bits.len() {
            for j in (i + 1)..bits.len() {
                let mut flipped = bits.clone();
                flipped.flip(i);
                flipped.flip(j);
                assert_ne!(
                    crc_of(&flipped),
                    reference,
                    "double flip {i},{j} undetected"
                );
            }
        }
    }
}
