//! Frame-size and line-encoding constants from the TTP/C specifications as
//! cited in Section 6 of the paper.
//!
//! The buffer-size analysis plugs these published constants — not sizes
//! derived from this crate's own codec — into equations (1)–(10), so they
//! are kept verbatim here with their provenance.

/// Bits of line-encoding overhead `le` the paper assumes (start-of-frame
/// detection before payload bits can be forwarded).
pub const LINE_ENCODING_BITS: u32 = 4;

/// Shortest TTP/C frame: an N-frame with no application data and implicit
/// CRC — 4 bits mode change request + frame type, 24 bits CRC.
/// (TTP/C Bus-Compatibility Specification, cited as f_min = 28 in eq. (6).)
pub const N_FRAME_MIN_BITS: u32 = 28;

/// Minimum cold-start frame as stated by the paper: "40 bits (1 bit for
/// the frame type, 16 bits for the global time, 9 bits for the round-slot
/// position, and 24 bits for the CRC)".
///
/// Note: the paper's own field list sums to 50 bits; we preserve the
/// *stated* constant because the analysis uses it, and expose the field
/// sum separately as [`COLD_START_FIELD_SUM_BITS`].
pub const COLD_START_MIN_BITS: u32 = 40;

/// Sum of the cold-start field widths the paper lists (1 + 16 + 9 + 24).
/// Documented discrepancy with [`COLD_START_MIN_BITS`]; see DESIGN.md.
pub const COLD_START_FIELD_SUM_BITS: u32 = 1 + 16 + 9 + 24;

/// Minimum frame with explicit C-state: an I-frame with 48 bits (4 bits
/// mode change request + frame type, 16 bits global time, 16 bits MEDL
/// position, 16 bits membership... as stated the paper's fields sum to 76;
/// the paper's stated minimum explicit-C-state frame is 48 bits).
///
/// The paper gives two I-frame numbers: 48 bits as "the minimum frame with
/// explicit C-state" and 76 bits as "the largest frame required for
/// protocol operation". Both are preserved.
pub const I_FRAME_MIN_BITS: u32 = 48;

/// I-frame size used as the smallest possible f_max in eq. (8): 76 bits
/// (4 MCR+type, 16 global time, 16 MEDL position, 16 membership, 24 CRC).
pub const I_FRAME_PROTOCOL_BITS: u32 = 76;

/// Longest allowable TTP/C frame: an X-frame with 2076 bits (4 bits mode
/// change request + frame type, 96 bits C-state, 1920 data bits, 48 bits
/// for two CRCs, 8 bits CRC padding). Used in eq. (9).
pub const X_FRAME_MAX_BITS: u32 = 2076;

/// Maximum application data bits in an X-frame (1920 = 240 bytes).
pub const X_FRAME_DATA_BITS: u32 = 1920;

/// Width of the explicit C-state in an X-frame (96 bits).
pub const C_STATE_BITS: u32 = 96;

/// Width of the TTP/C frame CRC.
pub const CRC_BITS: u32 = 24;

/// Typical commodity crystal oscillator tolerance the paper assumes
/// (±100 ppm), used to derive ρ = 0.0002 in eq. (5).
pub const CRYSTAL_TOLERANCE_PPM: f64 = 100.0;

/// Number of member nodes required to tolerate Byzantine faults with fully
/// independent bus guardians (Section 2.1).
pub const BYZANTINE_MIN_NODES: usize = 4;

/// Number of independent channels the TTA requires.
pub const REQUIRED_CHANNELS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_pinned() {
        // Guard against accidental edits: these exact values appear in the
        // paper's equations (5)–(9).
        assert_eq!(N_FRAME_MIN_BITS, 28);
        assert_eq!(LINE_ENCODING_BITS, 4);
        assert_eq!(I_FRAME_PROTOCOL_BITS, 76);
        assert_eq!(X_FRAME_MAX_BITS, 2076);
        assert_eq!(COLD_START_MIN_BITS, 40);
        assert_eq!(I_FRAME_MIN_BITS, 48);
    }

    #[test]
    fn documented_discrepancy_is_real() {
        // The paper's stated 40-bit cold-start minimum disagrees with its
        // own field list; both values are preserved deliberately.
        assert_eq!(COLD_START_FIELD_SUM_BITS, 50);
        assert_ne!(COLD_START_MIN_BITS, COLD_START_FIELD_SUM_BITS);
    }

    #[test]
    fn x_frame_composition_matches_paper() {
        assert_eq!(
            4 + C_STATE_BITS + X_FRAME_DATA_BITS + 2 * CRC_BITS + 8,
            X_FRAME_MAX_BITS
        );
    }

    #[test]
    fn byzantine_and_channel_requirements() {
        assert_eq!(BYZANTINE_MIN_NODES, 4);
        assert_eq!(REQUIRED_CHANNELS, 2);
    }
}
