//! Loom model of the emitter's `workers_live` liveness handshake.
//!
//! `runner.rs`'s emitter drains a channel of `(chunk, verdicts)` sends
//! with `recv_timeout`; the channel's sender half lives in the shared
//! `RunCtx`, so disconnection can never signal pool death. What keeps
//! the emitter from stranding is the `workers_live` counter: the
//! spawner increments it (AcqRel) *before* each worker starts, every
//! worker decrements it (AcqRel) as its very last act after its final
//! send, and the emitter only gives up after observing `live == 0`
//! (Acquire) *and* finding the channel empty on a final drain. The
//! model re-states that protocol and checks over every interleaving:
//!
//! * **no lost sends** — a send sequenced before the worker's
//!   decrement is always observed: either by a normal receive or by
//!   the post-zero drain (the Release/Acquire pair on `workers_live`
//!   is what forbids the emitter from seeing zero yet missing the
//!   send);
//! * **termination** — once every worker has exited, the emitter's
//!   next wake always breaks the loop: `live == 0` is a stable-down
//!   latch, so the drain is never strands.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p tta-campaignd
//! --test loom_supervisor`. Under the vendored offline stub this runs
//! once on plain threads; with the real loom it explores all
//! interleavings.
#![cfg(loom)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::VecDeque;

/// An mpsc stand-in with the two verbs the emitter uses, `try_recv`
/// and (modeled non-blockingly) `recv_timeout`: loom cannot explore
/// OS-level channel blocking, and the emitter treats a timeout exactly
/// like an empty `try_recv` anyway.
#[derive(Default)]
struct Channel {
    queue: Mutex<VecDeque<u32>>,
}

impl Channel {
    fn send(&self, chunk: u32) {
        self.queue.lock().unwrap().push_back(chunk);
    }

    fn try_recv(&self) -> Option<u32> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// One worker: send its chunks, then — last act, matching
/// `worker_loop`'s final `fetch_sub` — retire from `workers_live`.
fn worker(channel: &Channel, live: &AtomicUsize, chunks: &[u32]) {
    for &chunk in chunks {
        channel.send(chunk);
    }
    live.fetch_sub(1, Ordering::AcqRel);
}

/// The emitter loop, reduced to its termination logic: poll the
/// channel; on "timeout" (empty), check `workers_live`; at zero, do
/// the final drain and stop if nothing more is pending. Returns every
/// chunk received. The spin is bounded only by loom's scheduler — the
/// assertion is that it always terminates with nothing lost.
fn emitter(channel: &Channel, live: &AtomicUsize, expected: usize) -> Vec<u32> {
    let mut got = Vec::new();
    while got.len() < expected {
        if let Some(chunk) = channel.try_recv() {
            got.push(chunk);
            continue;
        }
        // recv_timeout elapsed with nothing queued.
        if live.load(Ordering::Acquire) == 0 {
            // Every worker has exited; whatever they sent is already
            // in the channel. Drain it, then stop for good.
            while let Some(chunk) = channel.try_recv() {
                got.push(chunk);
            }
            break;
        }
        thread::yield_now();
    }
    got
}

/// Two workers, two chunks each: every send must arrive, whichever
/// way the decrements interleave with the emitter's polls.
#[test]
fn workers_live_never_strands_or_drops_sends() {
    loom::model(|| {
        let channel = Arc::new(Channel::default());
        // Spawner protocol: increment BEFORE spawn, so the emitter can
        // never observe zero while a worker with unsent chunks exists.
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for base in [0u32, 2] {
            live.fetch_add(1, Ordering::AcqRel);
            let channel = Arc::clone(&channel);
            let live = Arc::clone(&live);
            handles.push(thread::spawn(move || {
                worker(&channel, &live, &[base, base + 1]);
            }));
        }

        let got = emitter(&channel, &live, 4);

        for handle in handles {
            handle.join().unwrap();
        }
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2, 3],
            "every send observed exactly once, none lost to the shutdown race"
        );
    });
}

/// The pathological pool: workers that die without sending anything
/// (the crash/replacement path). The emitter must still terminate —
/// `live` reaching zero with an empty channel is a stop, not a hang.
#[test]
fn emitter_terminates_when_workers_die_silently() {
    loom::model(|| {
        let channel = Arc::new(Channel::default());
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            live.fetch_add(1, Ordering::AcqRel);
            let live = Arc::clone(&live);
            handles.push(thread::spawn(move || {
                // Dies before producing anything.
                live.fetch_sub(1, Ordering::AcqRel);
            }));
        }
        // Expecting 4 chunks that will never come: the emitter must
        // break out via the live==0 drain path, not spin forever.
        let got = emitter(&channel, &live, 4);
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(got.is_empty(), "nothing was sent, nothing may appear");
    });
}

/// A late worker replacement: the supervisor increments `workers_live`
/// *before* the replacement starts (mirroring `spawn_replacement`), so
/// an emitter mid-drain can never conclude the pool is empty while the
/// replacement's sends are still coming.
#[test]
fn replacement_increment_happens_before_spawn() {
    loom::model(|| {
        let channel = Arc::new(Channel::default());
        let live = Arc::new(AtomicUsize::new(0));

        // Original worker sends one chunk, then retires.
        live.fetch_add(1, Ordering::AcqRel);
        let original = {
            let channel = Arc::clone(&channel);
            let live = Arc::clone(&live);
            thread::spawn(move || {
                channel.send(0);
                // Supervisor-style replacement: bump live for the
                // successor BEFORE retiring this worker, so the count
                // never dips to zero while work remains.
                live.fetch_add(1, Ordering::AcqRel);
                let successor = {
                    let channel = Arc::clone(&channel);
                    let live = Arc::clone(&live);
                    thread::spawn(move || worker(&channel, &live, &[1]))
                };
                live.fetch_sub(1, Ordering::AcqRel);
                successor
            })
        };

        let got = emitter(&channel, &live, 2);
        original.join().unwrap().join().unwrap();
        let mut sorted = got;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1], "the replacement's send must arrive");
    });
}
