//! The chaos harness, end to end through the real daemon binary: a
//! daemon armed with `--chaos` injects worker panics, a stalled trial
//! and a dropped client connection into a sweep, and the *assembled*
//! client stream must still be byte-identical to a clean daemon's —
//! at every worker count. Failures that persist past the retry budget
//! (a poisoned trial) must degrade to a deterministic `Quarantined`
//! verdict, never take the daemon down, and never lose journaled
//! progress.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use tta_campaignd::client::{Client, ReconnectPolicy};
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{Scenario, Topology};

/// Same E10-shaped cell as the kill/resume test: 24 trials = 3 chunks.
fn job() -> JobSpec {
    JobSpec {
        topology: Topology::Star,
        authority: CouplerAuthority::Passive,
        policy: RestartPolicy::Watchdog { silence_slots: 8 },
        trials: 24,
        slots: 300,
        fault_duration: Some(60),
        ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
    }
}

struct Daemon {
    child: Child,
    client: Client,
}

impl Daemon {
    fn start(state_dir: &Path, extra: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_tta_campaignd"))
            .arg("--state-dir")
            .arg(state_dir)
            .args(extra)
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn tta_campaignd");
        let client = Client::new(&state_dir.join("daemon.sock"));
        client
            .wait_ready(Duration::from_secs(10))
            .expect("daemon came up");
        Daemon { child, client }
    }

    fn stop(mut self) {
        let _ = self.client.shutdown();
        let _ = self.child.wait();
    }
}

fn resilient_lines(client: &Client, workers: Option<usize>) -> Vec<String> {
    let mut lines = Vec::new();
    client
        .submit_resilient(&job(), workers, &ReconnectPolicy::default(), &mut |line| {
            lines.push(line.to_string());
        })
        .expect("submit survives the chaos");
    lines
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Panics retried away, a stalled trial reclaimed by a healthy worker,
/// and one dropped connection resumed by the client: none of it may
/// perturb a single output byte.
#[test]
fn masked_chaos_streams_the_clean_bytes_at_every_worker_count() {
    let ref_dir = scratch("clean");
    let daemon = Daemon::start(&ref_dir, &[]);
    let reference = resilient_lines(&daemon.client, Some(1));
    daemon.stop();
    std::fs::remove_dir_all(&ref_dir).expect("cleanup");
    // accepted + 24 trials + summary, none quarantined.
    assert_eq!(reference.len(), 26);
    assert!(!reference.iter().any(|l| l.contains("quarantined")));

    let chaos = [
        "--chaos",
        "panic=0.25,timeout=12,drop=10,seed=7",
        "--trial-deadline-ms",
        "400",
        "--retry-backoff-ms",
        "5",
    ];
    for (tag, workers) in [("w1", Some(1)), ("w4", Some(4)), ("auto", None)] {
        let dir = scratch(tag);
        let daemon = Daemon::start(&dir, &chaos);
        let streamed = resilient_lines(&daemon.client, workers);
        daemon.stop();
        std::fs::remove_dir_all(&dir).expect("cleanup");
        assert_eq!(
            streamed, reference,
            "chaos perturbed the stream at workers {workers:?}"
        );
    }
}

/// A trial that panics on *every* attempt exhausts its retry budget and
/// becomes a deterministic `Quarantined` line — same bytes at any
/// worker count — while the daemon survives to serve the next request,
/// and a resubmit replays the quarantined verdict from the journal
/// without rerunning the trial.
#[test]
fn a_poisoned_trial_quarantines_deterministically_and_spares_the_daemon() {
    let chaos = ["--chaos", "poison=5,seed=3", "--retry-backoff-ms", "1"];
    let mut streams = Vec::new();
    for (tag, workers) in [("poison-w1", Some(1)), ("poison-w4", Some(4))] {
        let dir = scratch(tag);
        let daemon = Daemon::start(&dir, &chaos);
        let streamed = resilient_lines(&daemon.client, workers);

        // The daemon is alive and well after hosting three panics.
        assert!(daemon.client.ping(), "daemon died with the trial");

        // Resubmitting resumes every chunk — including the poisoned
        // trial's — from the journal, byte-identically.
        let replayed = resilient_lines(&daemon.client, workers);
        assert_eq!(replayed, streamed, "journal replay diverged");

        daemon.stop();
        std::fs::remove_dir_all(&dir).expect("cleanup");
        streams.push(streamed);
    }
    assert_eq!(streams[0], streams[1], "quarantine depends on workers");

    let stream = &streams[0];
    assert_eq!(stream.len(), 26, "accepted + 24 trial lines + summary");
    let quarantined: Vec<&String> = stream
        .iter()
        .filter(|l| l.contains("quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 2, "one trial line + the summary");
    assert!(
        quarantined[0].contains("\"index\":5")
            && quarantined[0].contains("\"quarantined\":\"panic\""),
        "unexpected quarantine line: {}",
        quarantined[0]
    );
    assert!(
        quarantined[1].contains("\"type\":\"summary\"")
            && quarantined[1].contains("\"quarantined\":1"),
        "summary must count the quarantined trial: {}",
        quarantined[1]
    );
}
