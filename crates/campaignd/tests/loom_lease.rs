//! Loom model of the lease claim/commit/expire generation handshake.
//!
//! `runner.rs`'s `LeaseTable` hands each chunk out under a generation
//! number; a supervisor that judges a worker stuck *expires* the lease
//! (returning the chunk to the queue for someone else) and the original
//! worker's late `commit` must then be refused — otherwise a chunk
//! would be journaled and emitted twice, corrupting the resumable
//! stream. The table is private to `runner.rs`, so the model restates
//! its shared-state essence verbatim (same fields, same generation
//! checks) behind a loom `Mutex`, then checks over every interleaving
//! of {worker A, supervisor, worker B}:
//!
//! * **no double-publish** — across all claims, commits and reclaims,
//!   each chunk is committed (published to the stream) at most once;
//! * **no loss** — despite the forced expiry, every chunk ends
//!   committed exactly once once the queue drains;
//! * **stale leases stay dead** — a commit or expire with a superseded
//!   generation returns false and mutates nothing.
//!
//! Build with `RUSTFLAGS="--cfg loom" cargo test -p tta-campaignd
//! --test loom_lease`. Under the vendored offline stub this runs once
//! on plain threads; with the real loom it explores all interleavings.
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::{HashMap, VecDeque};

/// `runner.rs::LeaseTable`, restated field-for-field.
#[derive(Default)]
struct LeaseTable {
    pending: VecDeque<u32>,
    active: HashMap<u32, u64>,
    done: usize,
    total: usize,
    next_generation: u64,
}

impl LeaseTable {
    fn new(chunks: Vec<u32>) -> LeaseTable {
        LeaseTable {
            total: chunks.len(),
            pending: chunks.into(),
            ..LeaseTable::default()
        }
    }

    fn claim(&mut self) -> Option<(u32, u64)> {
        let chunk = self.pending.pop_front()?;
        let generation = self.next_generation;
        self.next_generation += 1;
        self.active.insert(chunk, generation);
        Some((chunk, generation))
    }

    fn commit(&mut self, chunk: u32, generation: u64) -> bool {
        match self.active.get(&chunk) {
            Some(lease) if *lease == generation => {
                self.active.remove(&chunk);
                self.done += 1;
                true
            }
            _ => false,
        }
    }

    fn expire(&mut self, chunk: u32, generation: u64) -> bool {
        match self.active.get(&chunk) {
            Some(lease) if *lease == generation => {
                self.active.remove(&chunk);
                self.pending.push_front(chunk);
                true
            }
            _ => false,
        }
    }

    fn finished(&self) -> bool {
        self.done == self.total
    }
}

/// The reclaim race, distilled: worker A claims chunk 0 and stalls; the
/// supervisor expires A's lease; worker B claims the returned chunk and
/// commits; A wakes and tries to commit its superseded generation.
/// Every interleaving must end with chunk 0 committed exactly once.
#[test]
fn reclaimed_lease_never_double_publishes() {
    loom::model(|| {
        let table = Arc::new(Mutex::new(LeaseTable::new(vec![0])));
        // A claims before the threads race: the model's subject is the
        // expire/commit/claim interleaving, not the initial claim.
        let (chunk_a, gen_a) = table.lock().unwrap().claim().expect("chunk available");

        let supervisor = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                // Supervisor judges A stuck and reclaims its chunk.
                table.lock().unwrap().expire(chunk_a, gen_a)
            })
        };
        let worker_b = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                // B claims whatever the reclaim returned (if it ran
                // yet) and commits it — the rescue path.
                let claimed = table.lock().unwrap().claim();
                claimed.map(|(chunk, generation)| {
                    assert!(
                        table.lock().unwrap().commit(chunk, generation),
                        "a freshly claimed generation must commit"
                    );
                    chunk
                })
            })
        };
        // A wakes up late and tries to publish under its old lease.
        let late_commit = table.lock().unwrap().commit(chunk_a, gen_a);

        let expired = supervisor.join().unwrap();
        let rescued = worker_b.join().unwrap();

        // Whoever lost the race must have been refused: at most one of
        // {A's late commit, B's rescue commit} published chunk 0 (both
        // may lose — e.g. B claims Nothing *before* the expiry lands,
        // and the expiry then kills A's lease too).
        let commits = usize::from(late_commit) + usize::from(rescued.is_some());
        assert!(commits <= 1, "chunk 0 published twice");
        if expired {
            assert!(
                !late_commit,
                "an expired generation must never publish (double-emit)"
            );
        }

        // Drain: whatever is still pending is claimable and commits
        // exactly once; afterwards every chunk is committed exactly
        // once in total (the `done` counter would exceed `total` had
        // any chunk published twice) and no lease survives.
        let mut table = table.lock().unwrap();
        while let Some((chunk, generation)) = table.claim() {
            assert!(table.commit(chunk, generation));
        }
        assert!(table.finished(), "every chunk must end committed");
        assert!(table.active.is_empty(), "no lease may outlive the run");
        assert_eq!(table.done, table.total);
    });
}

/// Two workers racing over two chunks: the partition property (each
/// chunk committed exactly once, none lost) holds under every
/// claim/commit interleaving.
#[test]
fn contended_claims_partition_exactly_once() {
    loom::model(|| {
        let table = Arc::new(Mutex::new(LeaseTable::new(vec![0, 1])));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let table = Arc::clone(&table);
                thread::spawn(move || {
                    let mut committed = 0usize;
                    loop {
                        let claimed = table.lock().unwrap().claim();
                        let Some((chunk, generation)) = claimed else {
                            break;
                        };
                        if table.lock().unwrap().commit(chunk, generation) {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        let total: usize = workers.into_iter().map(|h| h.join().unwrap()).sum();
        let table = table.lock().unwrap();
        assert_eq!(total, 2, "both chunks committed, each exactly once");
        assert!(table.finished());
        assert!(table.active.is_empty());
    });
}

/// A stale generation can neither commit nor expire: once superseded,
/// every verb under the old generation is a refused no-op.
#[test]
fn superseded_generations_are_inert() {
    loom::model(|| {
        let table = Arc::new(Mutex::new(LeaseTable::new(vec![7])));
        let (chunk, old_gen) = table.lock().unwrap().claim().unwrap();
        assert!(table.lock().unwrap().expire(chunk, old_gen));
        let (chunk2, new_gen) = table.lock().unwrap().claim().unwrap();
        assert_eq!(chunk, chunk2, "expiry returns the chunk to the queue");
        assert_ne!(old_gen, new_gen, "reclaim advances the generation");

        let stale = {
            let table = Arc::clone(&table);
            thread::spawn(move || {
                let refused_commit = !table.lock().unwrap().commit(chunk, old_gen);
                let refused_expire = !table.lock().unwrap().expire(chunk, old_gen);
                refused_commit && refused_expire
            })
        };
        assert!(
            table.lock().unwrap().commit(chunk2, new_gen),
            "the live generation commits"
        );
        assert!(stale.join().unwrap(), "stale verbs must all be refused");
        let table = table.lock().unwrap();
        assert_eq!(table.done, 1, "exactly one commit despite stale retries");
        assert!(table.finished());
    });
}
