//! Graceful drain on SIGTERM, end to end: a daemon signalled mid-sweep
//! finishes its leased chunks, checkpoints the journal, refuses new
//! work with a *retryable* error, and exits cleanly — and a fresh
//! daemon on the same state directory resumes the interrupted job to
//! the exact uninterrupted byte stream.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;
use tta_campaignd::client::{Client, ReconnectPolicy};
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{Scenario, Topology};

/// Heavier than the kill/resume cell (48 trials x 900 slots = 6
/// chunks) so the SIGTERM reliably lands while chunks are in flight.
fn job() -> JobSpec {
    JobSpec {
        topology: Topology::Star,
        authority: CouplerAuthority::Passive,
        policy: RestartPolicy::Watchdog { silence_slots: 8 },
        trials: 48,
        slots: 900,
        fault_duration: Some(60),
        ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
    }
}

fn start_daemon(state_dir: &Path, extra: &[&str]) -> (Child, Client) {
    let child = Command::new(env!("CARGO_BIN_EXE_tta_campaignd"))
        .arg("--state-dir")
        .arg(state_dir)
        .args(extra)
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tta_campaignd");
    let client = Client::new(&state_dir.join("daemon.sock"));
    client
        .wait_ready(Duration::from_secs(10))
        .expect("daemon came up");
    (child, client)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-drain-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigterm_drains_gracefully_and_the_job_resumes_byte_identically() {
    // Reference bytes from an undisturbed run.
    let ref_dir = scratch("ref");
    let (child, client) = start_daemon(&ref_dir, &[]);
    let mut reference = Vec::new();
    client
        .submit_resilient(&job(), Some(1), &ReconnectPolicy::default(), &mut |line| {
            reference.push(line.to_string());
        })
        .expect("clean submit");
    let _ = client.shutdown();
    let _ = { child }.wait();
    std::fs::remove_dir_all(&ref_dir).expect("cleanup");
    assert_eq!(reference.len(), 50); // accepted + 48 trials + summary

    let dir = scratch("term");
    let (mut child, _) = start_daemon(&dir, &[]);

    // Plain (non-resilient) submit in a thread: it should observe the
    // drain as a truncated stream once the daemon winds down.
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let submit_dir = dir.clone();
    let submitter = std::thread::spawn(move || {
        let client = Client::new(&submit_dir.join("daemon.sock"));
        let mut seen = 0u32;
        client.submit(&job(), Some(1), &mut |_| {
            seen += 1;
            if seen == 2 {
                let _ = started_tx.send(());
            }
        })
    });

    // SIGTERM once the stream is demonstrably under way.
    started_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("stream started");
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("run kill");
    assert!(term.success());

    // The daemon exits on its own — no SIGKILL — with a zero status.
    let status = child.wait().expect("daemon reaped");
    assert!(status.success(), "drain must exit cleanly, got {status}");
    let interrupted = submitter.join().expect("submitter thread");

    // A fresh daemon on the same state directory picks the journal up
    // and replays the reference bytes exactly; anything the drained
    // daemon checkpointed is not recomputed.
    let (child, client) = start_daemon(&dir, &[]);
    let mut resumed = Vec::new();
    let result = client
        .submit_resilient(&job(), Some(1), &ReconnectPolicy::default(), &mut |line| {
            resumed.push(line.to_string());
        })
        .expect("resumed submit");
    let _ = client.shutdown();
    let _ = { child }.wait();
    std::fs::remove_dir_all(&dir).expect("cleanup");

    assert_eq!(resumed, reference, "resume after drain diverged");
    // Usually the drain cuts the stream and the submit errors; on a
    // fast box the job may have finished first, in which case it must
    // have finished *completely* — a drain never truncates silently.
    if let Ok(result) = interrupted {
        assert_eq!(result.trials.len(), 48, "drain truncated a success");
    }
    assert!(
        result.stats.resumed_chunks >= 1,
        "the drained daemon checkpointed nothing"
    );
}
