//! Content-addressed cache correctness, through an in-process daemon:
//! overlapping sweeps share trials (hits, same results), and editing a
//! referenced scenario file changes the scenario hash and forces a
//! recompute — a stale cache can never masquerade as fresh data.

use std::path::{Path, PathBuf};
use tta_campaignd::client::Client;
use tta_campaignd::server::{Server, ServerConfig, ServerHandle};
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{Scenario, Topology};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spawn(dir: &Path) -> (ServerHandle, Client) {
    let mut config = ServerConfig::at(&dir.join("state"));
    config.base_dir = dir.to_path_buf();
    let handle = Server::spawn(config).expect("daemon spawns");
    let client = Client::new(handle.socket());
    (handle, client)
}

#[test]
fn overlapping_sweeps_share_cached_trials() {
    let dir = scratch("overlap");
    let (handle, client) = spawn(&dir);

    let wide = JobSpec {
        topology: Topology::Star,
        authority: CouplerAuthority::Passive,
        policy: RestartPolicy::Immediate,
        trials: 24,
        slots: 300,
        fault_duration: Some(60),
        ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
    };
    let first = client
        .submit(&wide, Some(2), &mut |_| {})
        .expect("first sweep");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.computed, 24);

    // A narrower sweep over the same scenario/policy/seed: per-trial
    // seeds depend only on the trial index, so every one of its trials
    // was already computed — a distinct job (fresh journal, new id)
    // served entirely from cache, with identical results.
    let narrow = JobSpec {
        trials: 16,
        ..wide.clone()
    };
    let second = client
        .submit(&narrow, Some(2), &mut |_| {})
        .expect("overlapping sweep");
    assert_ne!(
        first.job, second.job,
        "different trial counts are different jobs"
    );
    assert_eq!(second.stats.computed, 0);
    assert_eq!(second.stats.cache_hits, 16);
    assert_eq!(second.trials.as_slice(), &first.trials[..16]);

    // A different policy shares nothing, even over the same scenario.
    let other_policy = JobSpec {
        policy: RestartPolicy::Never,
        ..narrow
    };
    let third = client
        .submit(&other_policy, Some(2), &mut |_| {})
        .expect("different-policy sweep");
    assert_eq!(third.stats.cache_hits, 0);
    assert_eq!(third.stats.computed, 16);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

const SCENARIO: &str = r#"[scenario]
name = "cache-probe"
description = "passive star rides out a silent channel"

[cluster]
nodes = 4
topology = "star"
authority = "passive"

[sim]
slots = 200

[[fault.coupler]]
channel = 0
mode = "silence"
from_slot = 10
to_slot = 80

[expect]
verdict = "holds"
liveness = "holds"
recovery = "holds"
sim_disturbed = false
"#;

#[test]
fn editing_a_scenario_file_forces_recompute() {
    let dir = scratch("edit");
    std::fs::write(dir.join("probe.toml"), SCENARIO).expect("write scenario");
    let (handle, client) = spawn(&dir);

    let job = JobSpec {
        policy: RestartPolicy::Immediate,
        trials: 8,
        ..JobSpec::new(ScenarioSource::File(PathBuf::from("probe.toml")))
    };
    let first = client.submit(&job, Some(2), &mut |_| {}).expect("file job");
    assert_eq!(first.stats.cache_hits, 0);
    assert_eq!(first.stats.computed, 8);

    // A narrower overlapping sweep of the unchanged file hits cache.
    let narrow = JobSpec {
        trials: 4,
        ..job.clone()
    };
    let cached = client
        .submit(&narrow, Some(2), &mut |_| {})
        .expect("overlapping file job");
    assert_eq!(cached.stats.cache_hits, 4);
    assert_eq!(cached.trials.as_slice(), &first.trials[..4]);

    // Editing the file changes the content fingerprint, hence the
    // scenario hash, hence every cache key: full recompute, new job id.
    let edited = SCENARIO.replace("to_slot = 80", "to_slot = 40");
    assert_ne!(edited, SCENARIO);
    std::fs::write(dir.join("probe.toml"), edited).expect("edit scenario");
    let recomputed = client
        .submit(&job, Some(2), &mut |_| {})
        .expect("edited file job");
    assert_ne!(first.job, recomputed.job, "content edit renames the job");
    assert_eq!(recomputed.stats.cache_hits, 0);
    assert_eq!(recomputed.stats.computed, 8);
    assert_eq!(recomputed.stats.resumed_trials, 0);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
