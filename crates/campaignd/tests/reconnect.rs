//! Client-side resilience, end to end: a daemon that dies mid-stream
//! (the `--crash-after-chunks` power-cut hook) takes the connection
//! with it; `submit_resilient` backs off, reconnects to the restarted
//! daemon, resumes the job from its journal, and hands the caller the
//! exact byte stream an uninterrupted daemon would have produced —
//! with every already-observed line de-duplicated.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use tta_campaignd::client::{Client, ReconnectPolicy};
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{Scenario, Topology};

fn job() -> JobSpec {
    JobSpec {
        topology: Topology::Star,
        authority: CouplerAuthority::Passive,
        policy: RestartPolicy::Watchdog { silence_slots: 8 },
        trials: 24,
        slots: 300,
        fault_duration: Some(60),
        ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
    }
}

fn start_daemon(state_dir: &Path, extra: &[&str]) -> (Child, Client) {
    let child = Command::new(env!("CARGO_BIN_EXE_tta_campaignd"))
        .arg("--state-dir")
        .arg(state_dir)
        .args(extra)
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn tta_campaignd");
    let client = Client::new(&state_dir.join("daemon.sock"));
    client
        .wait_ready(Duration::from_secs(10))
        .expect("daemon came up");
    (child, client)
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("campaignd-reconnect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_client_rides_out_a_daemon_restart_and_assembles_the_clean_bytes() {
    // Reference bytes from an undisturbed daemon.
    let ref_dir = scratch("ref");
    let (child, client) = start_daemon(&ref_dir, &[]);
    let mut reference = Vec::new();
    client
        .submit_resilient(&job(), Some(2), &ReconnectPolicy::default(), &mut |line| {
            reference.push(line.to_string());
        })
        .expect("clean submit");
    let _ = client.shutdown();
    let _ = { child }.wait();
    std::fs::remove_dir_all(&ref_dir).expect("cleanup");
    assert_eq!(reference.len(), 26);

    // A doomed daemon aborts after journaling two chunks, mid-stream.
    let dir = scratch("crash");
    let (doomed, _) = start_daemon(&dir, &["--crash-after-chunks", "2"]);

    // The resilient submit runs concurrently with the crash + restart;
    // give it enough patience to cover the restart below.
    let submit_dir = dir.clone();
    let submitter = std::thread::spawn(move || {
        let client = Client::new(&submit_dir.join("daemon.sock"));
        let policy = ReconnectPolicy {
            max_attempts: 10,
            base: Duration::from_millis(100),
            ..ReconnectPolicy::default()
        };
        let mut lines = Vec::new();
        let result = client.submit_resilient(&job(), Some(2), &policy, &mut |line| {
            lines.push(line.to_string());
        });
        (lines, result)
    });

    // Wait out the abort, then bring a fresh daemon up on the same
    // state directory and socket while the client is still retrying.
    let _ = { doomed }.wait();
    let (child, client) = start_daemon(&dir, &[]);

    let (lines, result) = submitter.join().expect("submitter thread");
    let result = result.expect("resilient submit succeeded after the restart");
    let _ = client.shutdown();
    let _ = { child }.wait();
    std::fs::remove_dir_all(&dir).expect("cleanup");

    assert_eq!(
        lines, reference,
        "the assembled stream must be byte-identical to the clean run"
    );
    assert!(
        result.stats.resumed_chunks >= 2,
        "the restarted daemon should resume the journaled chunks, got {}",
        result.stats.resumed_chunks
    );
    assert_eq!(result.trials.len(), 24);
    assert!(result.quarantined.is_empty());
}
