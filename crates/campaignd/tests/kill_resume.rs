//! Kill-and-resume determinism, end to end through the real daemon
//! binary: a daemon told to crash (`std::process::abort`, the power-cut
//! stand-in) after two journaled chunks dies mid-sweep; a fresh daemon
//! on the same state directory resumes the job and streams **exactly**
//! the bytes an uninterrupted daemon streams — at every worker count.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;
use tta_campaignd::client::Client;
use tta_campaignd::runner::RunStats;
use tta_campaignd::spec::{JobSpec, ScenarioSource};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{Scenario, Topology};

/// An E10-shaped cell: 24 trials = 3 journal chunks of 8.
fn job() -> JobSpec {
    JobSpec {
        topology: Topology::Star,
        authority: CouplerAuthority::Passive,
        policy: RestartPolicy::Watchdog { silence_slots: 8 },
        trials: 24,
        slots: 300,
        fault_duration: Some(60),
        ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
    }
}

struct Daemon {
    child: Child,
    client: Client,
}

impl Daemon {
    fn start(state_dir: &Path, extra: &[&str]) -> Daemon {
        let child = Command::new(env!("CARGO_BIN_EXE_tta_campaignd"))
            .arg("--state-dir")
            .arg(state_dir)
            .args(extra)
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn tta_campaignd");
        let client = Client::new(&state_dir.join("daemon.sock"));
        client
            .wait_ready(Duration::from_secs(10))
            .expect("daemon came up");
        Daemon { child, client }
    }

    fn stop(mut self) {
        let _ = self.client.shutdown();
        let _ = self.child.wait();
    }

    /// Waits for the daemon to die on its own (the crash hook).
    fn reap(mut self) {
        let _ = self.child.wait();
    }
}

fn submit_lines(client: &Client, workers: Option<usize>) -> (Vec<String>, RunStats) {
    let mut lines = Vec::new();
    let result = client
        .submit(&job(), workers, &mut |line| lines.push(line.to_string()))
        .expect("submit succeeds");
    (lines, result.stats)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaignd-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn a_killed_sweep_resumes_to_the_exact_uninterrupted_bytes() {
    // Reference: one uninterrupted run.
    let ref_dir = scratch("ref");
    let daemon = Daemon::start(&ref_dir, &[]);
    let (reference, ref_stats) = submit_lines(&daemon.client, Some(1));
    daemon.stop();
    std::fs::remove_dir_all(&ref_dir).expect("cleanup");
    assert_eq!(ref_stats.resumed_chunks, 0);
    assert_eq!(ref_stats.computed, 24);
    // accepted + 24 trials + summary.
    assert_eq!(reference.len(), 26);

    for (tag, workers) in [("w1", Some(1)), ("w4", Some(4)), ("auto", None)] {
        let dir = scratch(tag);

        // A daemon armed to abort after the second journal append dies
        // mid-sweep; the client sees a truncated stream.
        let doomed = Daemon::start(&dir, &["--crash-after-chunks", "2"]);
        let error = doomed
            .client
            .submit(&job(), workers, &mut |_| {})
            .expect_err("the daemon aborted mid-sweep");
        let rendered = error.to_string();
        assert!(
            rendered.contains("resubmit") || rendered.contains("socket"),
            "unexpected failure shape: {rendered}"
        );
        doomed.reap();

        // A fresh daemon on the same state directory resumes from the
        // journal and streams the reference bytes exactly.
        let daemon = Daemon::start(&dir, &[]);
        let (resumed, stats) = submit_lines(&daemon.client, workers);
        daemon.stop();
        std::fs::remove_dir_all(&dir).expect("cleanup");

        assert_eq!(
            resumed, reference,
            "resumed stream diverged at workers {workers:?}"
        );
        assert!(
            stats.resumed_chunks >= 2,
            "expected at least the two crashed-past chunks journaled, got {}",
            stats.resumed_chunks
        );
        assert_eq!(
            stats.resumed_trials + stats.computed + stats.cache_hits,
            24,
            "every trial is accounted for"
        );
    }
}
