//! Content hashing for job identity and the per-trial result cache.
//!
//! FNV-1a over canonical byte strings: not cryptographic, but stable
//! across platforms and processes (unlike `std`'s randomized hasher),
//! which is what journal file names and cache keys need. Collisions
//! would only ever conflate two *byte-identical renderings*' worth of
//! campaign work at 64-bit odds — acceptable for a result cache whose
//! entries are also self-describing.

/// FNV-1a over a byte string.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Fixed-width lowercase hex of a 64-bit hash (journal file names, job
/// ids on the wire).
#[must_use]
pub fn to_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses [`to_hex`] output back.
#[must_use]
pub fn from_hex(text: &str) -> Option<u64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // FNV-1a reference values.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_round_trips() {
        for h in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(from_hex(&to_hex(h)), Some(h));
        }
        assert_eq!(from_hex("xyz"), None);
        assert_eq!(from_hex("00"), None);
    }
}
