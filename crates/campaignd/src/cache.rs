//! The content-addressed per-trial result cache.
//!
//! Keyed on `fnv(scenario_hash ‖ policy ‖ trial_seed)` (see
//! [`crate::spec::ResolvedJob::trial_key`]): everything that determines
//! a trial's outcome and nothing that doesn't. Overlapping sweeps — a
//! re-run, a longer seed range over the same scenario, a policy grid
//! revisiting a policy — hit cache for every trial they share; editing
//! a referenced scenario file changes the scenario hash and naturally
//! misses.
//!
//! Storage is 256 append-only NDJSON shard files under
//! `<state_dir>/cache/`, sharded by the key's top byte. Lines use the
//! same self-checksummed format as the journal, so a torn tail from a
//! crash costs at most the entries of one interrupted batch, never the
//! shard. The whole cache is loaded into memory at daemon start;
//! lookups are lock-light reads, inserts append a batch per completed
//! chunk.
//!
//! Cache hits feed the *deterministic* result stream, so a cached entry
//! must be byte-equivalent to recomputation. That holds by
//! construction: the entry stores the full trial record (whose floats
//! render shortest-roundtrip, hence losslessly), and the runner only
//! rewrites the trial index, which is not part of the key's identity.

use crate::hash::{from_hex, to_hex};
use crate::journal::{seal, unseal};
use crate::json::Json;
use crate::spec::{trial_from_json, trial_to_fields};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};
use tta_sim::TrialResult;

const SHARDS: usize = 256;

/// An open result cache rooted at `<dir>`.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    map: RwLock<HashMap<u64, TrialResult>>,
    /// Serializes shard-file appends (lookups don't take it).
    io: Mutex<()>,
}

fn shard_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{:02x}.ndjson", (key >> 56) as u8))
}

impl Cache {
    /// Opens (or creates) the cache directory and loads every shard.
    ///
    /// A shard line that fails to parse or checksum is *skipped* —
    /// every later valid entry in the shard still loads, so a torn
    /// append (or a flipped byte) costs exactly the damaged entries,
    /// never the rest of the shard. A shard found damaged is compacted
    /// back to its valid lines via temp-file + rename, so the rewrite
    /// is atomic: a crash mid-compaction leaves either the old shard or
    /// the new one, both self-checking.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        let mut map = HashMap::new();
        for shard in 0..SHARDS {
            let path = dir.join(format!("{shard:02x}.ndjson"));
            if !path.exists() {
                continue;
            }
            let file = OpenOptions::new().read(true).open(&path)?;
            let mut reader = BufReader::new(file);
            let mut line = String::new();
            let mut valid_lines = String::new();
            let mut damaged = false;
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    break;
                }
                if !line.ends_with('\n') {
                    damaged = true; // torn newline-less tail
                    break;
                }
                let entry = unseal(line.trim_end()).and_then(|e| parse_entry(&e));
                match entry {
                    Some((key, trial)) => {
                        map.insert(key, trial);
                        valid_lines.push_str(&line);
                    }
                    None => damaged = true, // skip, keep scanning
                }
            }
            if damaged {
                compact_shard(&path, &valid_lines)?;
            }
        }
        Ok(Cache {
            dir: dir.to_path_buf(),
            map: RwLock::new(map),
            io: Mutex::new(()),
        })
    }

    /// Entries currently loaded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("cache map lock").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a trial by cache key, re-badged with the looking-up
    /// job's trial `index`.
    #[must_use]
    pub fn lookup(&self, key: u64, index: u32) -> Option<TrialResult> {
        let map = self.map.read().expect("cache map lock");
        map.get(&key).map(|t| TrialResult { index, ..*t })
    }

    /// Inserts a batch of freshly computed trials, appending each new
    /// entry to its shard file before publishing it in memory. Keys
    /// already present are skipped (first write wins — by construction
    /// any two writers would write equivalent results).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn insert_batch(&self, entries: &[(u64, TrialResult)]) -> std::io::Result<()> {
        let fresh: Vec<&(u64, TrialResult)> = {
            let map = self.map.read().expect("cache map lock");
            entries
                .iter()
                .filter(|(k, _)| !map.contains_key(k))
                .collect()
        };
        if fresh.is_empty() {
            return Ok(());
        }
        let _io = self.io.lock().expect("cache io lock");
        // Group appends per shard file.
        let mut by_shard: HashMap<PathBuf, String> = HashMap::new();
        for (key, trial) in &fresh {
            let line = seal(render_entry(*key, trial));
            let buf = by_shard.entry(shard_path(&self.dir, *key)).or_default();
            buf.push_str(&line);
            buf.push('\n');
        }
        // detlint: allow(DL01) reason=order varies only across distinct shard files; each shard's content is built from the ordered entries slice
        for (path, buf) in by_shard {
            let mut file = OpenOptions::new().create(true).append(true).open(path)?;
            file.write_all(buf.as_bytes())?;
            file.sync_data()?;
        }
        let mut map = self.map.write().expect("cache map lock");
        for (key, trial) in fresh {
            map.entry(*key).or_insert(*trial);
        }
        Ok(())
    }
}

/// Atomically rewrites a damaged shard with its surviving valid lines:
/// write a sibling temp file, sync it, rename over the original.
fn compact_shard(path: &Path, valid_lines: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("ndjson.tmp");
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(valid_lines.as_bytes())?;
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

fn render_entry(key: u64, trial: &TrialResult) -> Json {
    let mut fields = vec![("key".to_string(), Json::str(to_hex(key)))];
    fields.extend(trial_to_fields(trial));
    Json::Obj(fields)
}

fn parse_entry(body: &Json) -> Option<(u64, TrialResult)> {
    let key = from_hex(body.get("key")?.as_str()?)?;
    let trial = trial_from_json(body).ok()?;
    Some((key, trial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_sim::{Outcome, RecoveryOutcome};

    fn trial(index: u32) -> TrialResult {
        TrialResult {
            index,
            seed: u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            outcome: Outcome::HealthyNodeFrozen,
            recovery: RecoveryOutcome::DegradedStable,
            unavailability: 1.0 / f64::from(index + 3),
            time_to_reintegration: Some(u64::from(index) + 11),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaignd-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_persists_across_reopen_and_rebadges_indices() {
        let dir = temp_dir("reopen");
        let cache = Cache::open(&dir).unwrap();
        assert!(cache.is_empty());
        // Keys chosen to land in different shards (top byte differs).
        let entries = vec![
            (0x0100_0000_0000_0007, trial(0)),
            (0xfe00_0000_0000_0003, trial(1)),
        ];
        cache.insert_batch(&entries).unwrap();
        drop(cache);

        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        let hit = cache.lookup(0xfe00_0000_0000_0003, 42).unwrap();
        assert_eq!(hit.index, 42);
        assert_eq!(hit.seed, trial(1).seed);
        assert_eq!(hit.unavailability, trial(1).unavailability);
        assert!(cache.lookup(0xdead, 0).is_none());
    }

    #[test]
    fn duplicate_keys_are_written_once() {
        let dir = temp_dir("dedup");
        let cache = Cache::open(&dir).unwrap();
        cache.insert_batch(&[(5, trial(0))]).unwrap();
        cache.insert_batch(&[(5, trial(0)), (6, trial(1))]).unwrap();
        drop(cache);

        let shard = shard_path(&dir, 5);
        let text = std::fs::read_to_string(shard).unwrap();
        assert_eq!(text.lines().count(), 2, "key 5 must not be re-appended");
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn torn_shard_tail_is_dropped() {
        let dir = temp_dir("torn");
        let cache = Cache::open(&dir).unwrap();
        cache.insert_batch(&[(1, trial(0)), (2, trial(1))]).unwrap();
        drop(cache);

        let shard = shard_path(&dir, 1);
        let mut bytes = std::fs::read(&shard).unwrap();
        bytes.extend_from_slice(b"{\"key\":\"00");
        std::fs::write(&shard, &bytes).unwrap();

        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        // Reopen compacted the torn tail away; a fresh insert then
        // reload sees all three entries.
        cache.insert_batch(&[(3, trial(2))]).unwrap();
        drop(cache);
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn mid_shard_corruption_keeps_later_entries_and_compacts() {
        let dir = temp_dir("midshard");
        let cache = Cache::open(&dir).unwrap();
        // Three entries in the same shard (same top byte).
        cache
            .insert_batch(&[(0x10, trial(0)), (0x11, trial(1)), (0x12, trial(2))])
            .unwrap();
        drop(cache);

        // Corrupt the *middle* line: flip payload bytes so the checksum
        // fails, leaving the line well-formed JSON.
        let shard = shard_path(&dir, 0x10);
        let text = std::fs::read_to_string(&shard).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let tampered = lines[1].replace("\"seed\"", "\"sead\"");
        assert_ne!(tampered, lines[1]);
        std::fs::write(
            &shard,
            format!("{}\n{}\n{}\n", lines[0], tampered, lines[2]),
        )
        .unwrap();

        // The entries before AND after the damaged line survive.
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(0x10, 0).is_some());
        assert!(cache.lookup(0x11, 0).is_none(), "damaged entry is gone");
        assert!(cache.lookup(0x12, 0).is_some());
        drop(cache);

        // The shard was compacted back to exactly its valid lines, and
        // keeps working for appends + reloads.
        let text = std::fs::read_to_string(&shard).unwrap();
        assert_eq!(text.lines().count(), 2);
        let cache = Cache::open(&dir).unwrap();
        cache.insert_batch(&[(0x13, trial(3))]).unwrap();
        drop(cache);
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 3);
    }
}
