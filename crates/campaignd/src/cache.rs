//! The content-addressed per-trial result cache.
//!
//! Keyed on `fnv(scenario_hash ‖ policy ‖ trial_seed)` (see
//! [`crate::spec::ResolvedJob::trial_key`]): everything that determines
//! a trial's outcome and nothing that doesn't. Overlapping sweeps — a
//! re-run, a longer seed range over the same scenario, a policy grid
//! revisiting a policy — hit cache for every trial they share; editing
//! a referenced scenario file changes the scenario hash and naturally
//! misses.
//!
//! Storage is 256 append-only NDJSON shard files under
//! `<state_dir>/cache/`, sharded by the key's top byte. Lines use the
//! same self-checksummed format as the journal, so a torn tail from a
//! crash costs at most the entries of one interrupted batch, never the
//! shard. The whole cache is loaded into memory at daemon start;
//! lookups are lock-light reads, inserts append a batch per completed
//! chunk.
//!
//! Cache hits feed the *deterministic* result stream, so a cached entry
//! must be byte-equivalent to recomputation. That holds by
//! construction: the entry stores the full trial record (whose floats
//! render shortest-roundtrip, hence losslessly), and the runner only
//! rewrites the trial index, which is not part of the key's identity.

use crate::hash::{from_hex, to_hex};
use crate::journal::{seal, unseal};
use crate::json::Json;
use crate::spec::{trial_from_json, trial_to_fields};
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};
use tta_sim::TrialResult;

const SHARDS: usize = 256;

/// An open result cache rooted at `<dir>`.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    map: RwLock<HashMap<u64, TrialResult>>,
    /// Serializes shard-file appends (lookups don't take it).
    io: Mutex<()>,
}

fn shard_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{:02x}.ndjson", (key >> 56) as u8))
}

impl Cache {
    /// Opens (or creates) the cache directory and loads every shard.
    ///
    /// A shard line that fails to parse or checksum ends that shard's
    /// load and truncates the file back to its valid prefix — corrupt
    /// cache entries cost recomputation, never a failed open.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        let mut map = HashMap::new();
        for shard in 0..SHARDS {
            let path = dir.join(format!("{shard:02x}.ndjson"));
            if !path.exists() {
                continue;
            }
            let file = OpenOptions::new().read(true).open(&path)?;
            let mut reader = BufReader::new(file);
            let mut line = String::new();
            let mut valid_len: u64 = 0;
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 || !line.ends_with('\n') {
                    break;
                }
                let Some(entry) = unseal(line.trim_end()) else {
                    break;
                };
                let Some((key, trial)) = parse_entry(&entry) else {
                    break;
                };
                map.insert(key, trial);
                valid_len += n as u64;
            }
            if valid_len < std::fs::metadata(&path)?.len() {
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(valid_len)?;
            }
        }
        Ok(Cache {
            dir: dir.to_path_buf(),
            map: RwLock::new(map),
            io: Mutex::new(()),
        })
    }

    /// Entries currently loaded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("cache map lock").len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up a trial by cache key, re-badged with the looking-up
    /// job's trial `index`.
    #[must_use]
    pub fn lookup(&self, key: u64, index: u32) -> Option<TrialResult> {
        let map = self.map.read().expect("cache map lock");
        map.get(&key).map(|t| TrialResult { index, ..*t })
    }

    /// Inserts a batch of freshly computed trials, appending each new
    /// entry to its shard file before publishing it in memory. Keys
    /// already present are skipped (first write wins — by construction
    /// any two writers would write equivalent results).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn insert_batch(&self, entries: &[(u64, TrialResult)]) -> std::io::Result<()> {
        let fresh: Vec<&(u64, TrialResult)> = {
            let map = self.map.read().expect("cache map lock");
            entries
                .iter()
                .filter(|(k, _)| !map.contains_key(k))
                .collect()
        };
        if fresh.is_empty() {
            return Ok(());
        }
        let _io = self.io.lock().expect("cache io lock");
        // Group appends per shard file.
        let mut by_shard: HashMap<PathBuf, String> = HashMap::new();
        for (key, trial) in &fresh {
            let line = seal(render_entry(*key, trial));
            let buf = by_shard.entry(shard_path(&self.dir, *key)).or_default();
            buf.push_str(&line);
            buf.push('\n');
        }
        for (path, buf) in by_shard {
            let mut file = OpenOptions::new().create(true).append(true).open(path)?;
            file.write_all(buf.as_bytes())?;
            file.sync_data()?;
        }
        let mut map = self.map.write().expect("cache map lock");
        for (key, trial) in fresh {
            map.entry(*key).or_insert(*trial);
        }
        Ok(())
    }
}

fn render_entry(key: u64, trial: &TrialResult) -> Json {
    let mut fields = vec![("key".to_string(), Json::str(to_hex(key)))];
    fields.extend(trial_to_fields(trial));
    Json::Obj(fields)
}

fn parse_entry(body: &Json) -> Option<(u64, TrialResult)> {
    let key = from_hex(body.get("key")?.as_str()?)?;
    let trial = trial_from_json(body).ok()?;
    Some((key, trial))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tta_sim::{Outcome, RecoveryOutcome};

    fn trial(index: u32) -> TrialResult {
        TrialResult {
            index,
            seed: u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            outcome: Outcome::HealthyNodeFrozen,
            recovery: RecoveryOutcome::DegradedStable,
            unavailability: 1.0 / f64::from(index + 3),
            time_to_reintegration: Some(u64::from(index) + 11),
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaignd-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cache_persists_across_reopen_and_rebadges_indices() {
        let dir = temp_dir("reopen");
        let cache = Cache::open(&dir).unwrap();
        assert!(cache.is_empty());
        // Keys chosen to land in different shards (top byte differs).
        let entries = vec![
            (0x0100_0000_0000_0007, trial(0)),
            (0xfe00_0000_0000_0003, trial(1)),
        ];
        cache.insert_batch(&entries).unwrap();
        drop(cache);

        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        let hit = cache.lookup(0xfe00_0000_0000_0003, 42).unwrap();
        assert_eq!(hit.index, 42);
        assert_eq!(hit.seed, trial(1).seed);
        assert_eq!(hit.unavailability, trial(1).unavailability);
        assert!(cache.lookup(0xdead, 0).is_none());
    }

    #[test]
    fn duplicate_keys_are_written_once() {
        let dir = temp_dir("dedup");
        let cache = Cache::open(&dir).unwrap();
        cache.insert_batch(&[(5, trial(0))]).unwrap();
        cache.insert_batch(&[(5, trial(0)), (6, trial(1))]).unwrap();
        drop(cache);

        let shard = shard_path(&dir, 5);
        let text = std::fs::read_to_string(shard).unwrap();
        assert_eq!(text.lines().count(), 2, "key 5 must not be re-appended");
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn torn_shard_tail_is_dropped() {
        let dir = temp_dir("torn");
        let cache = Cache::open(&dir).unwrap();
        cache.insert_batch(&[(1, trial(0)), (2, trial(1))]).unwrap();
        drop(cache);

        let shard = shard_path(&dir, 1);
        let mut bytes = std::fs::read(&shard).unwrap();
        bytes.extend_from_slice(b"{\"key\":\"00");
        std::fs::write(&shard, &bytes).unwrap();

        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        // Reopen truncated the torn tail; a fresh insert then reload
        // sees all three entries.
        cache.insert_batch(&[(3, trial(2))]).unwrap();
        drop(cache);
        let cache = Cache::open(&dir).unwrap();
        assert_eq!(cache.len(), 3);
    }
}
