//! The daemon: a Unix-socket accept loop dispatching one request per
//! connection.
//!
//! Threading model: one OS thread per connection (jobs are minutes of
//! CPU-bound simulation behind a local socket — connection scaling is
//! not the bottleneck, worker scaling is). A `submit` handler runs the
//! sharded [`crate::runner`] inside its own thread scope; `eval` and
//! the control ops answer inline. All connections share one daemon-wide
//! result [`Cache`] and one journal directory, with a per-job lock so
//! two concurrent submissions of the *same* job cannot interleave
//! appends in one journal file.
//!
//! Shutdown is cooperative: the `shutdown` op (or
//! [`ServerHandle::shutdown`]) raises a stop flag; in-flight jobs are
//! cancelled at their next chunk boundary, which — by the resumability
//! invariant — loses no journaled work. The `drain` op is the graceful
//! variant (what the binary maps SIGTERM to): new submissions are
//! refused with a *retryable* error, running jobs finish their leased
//! chunks and checkpoint, and the accept loop exits once the last job
//! has stopped. The accept loop polls with a short timeout rather than
//! blocking forever, so drain completion is observed without needing a
//! wake-up connection.

use crate::cache::Cache;
use crate::chaos::ChaosPlan;
use crate::hash::to_hex;
use crate::journal::Journal;
use crate::protocol::{
    accepted_line, error_line, evaluation_line, ok_line, parse_request, retryable_error_line,
    stats_line, status_line, summary_line, trial_line, EvalRequest, JobStatus, Request,
};
use crate::runner::{
    run, CrashPlan, JobProgress, RunConfig, RunHandles, Supervision, TrialVerdict,
};
use crate::spec::ResolvedJob;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tta_sim::{PlanRunMetrics, SimBuilder};

/// How often the accept loop polls for connections and drain/stop
/// progress.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket path to listen on.
    pub socket: PathBuf,
    /// State directory (journals under `jobs/`, cache under `cache/`).
    pub state_dir: PathBuf,
    /// Default worker count for jobs that don't override it.
    pub workers: usize,
    /// Base directory against which relative scenario paths resolve.
    pub base_dir: PathBuf,
    /// Debug crash hook (`--crash-after-chunks`).
    pub crash: CrashPlan,
    /// Trial supervision parameters (`--trial-deadline-ms`, retry
    /// budget).
    pub supervision: Supervision,
    /// Failure injection (`--chaos`); default injects nothing.
    pub chaos: ChaosPlan,
}

impl ServerConfig {
    /// A config rooted at `state_dir`, listening on
    /// `<state_dir>/daemon.sock`, with one worker per available core.
    #[must_use]
    pub fn at(state_dir: &Path) -> ServerConfig {
        ServerConfig {
            socket: state_dir.join("daemon.sock"),
            state_dir: state_dir.to_path_buf(),
            // detlint: allow(DL03) reason=default worker count only sizes the pool; trial output is bit-identical at any worker count
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            base_dir: std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
            crash: CrashPlan::default(),
            supervision: Supervision::default(),
            chaos: ChaosPlan::default(),
        }
    }
}

#[derive(Debug)]
struct ServerState {
    config: ServerConfig,
    cache: Cache,
    /// Stop/drain flags. Relaxed ordering throughout: each is a latch
    /// that only ever goes false→true, polled at loop boundaries — a
    /// handler observing it one iteration late is indistinguishable
    /// from the signal arriving one iteration later.
    stop: AtomicBool,
    /// See [`ServerState::stop`] for the Relaxed-latch rationale.
    drain: AtomicBool,
    /// Monotone counters bumped by handler threads, read only for
    /// status/stats lines — Relaxed: no other data is published under
    /// them, and a slightly stale count is fine for reporting.
    appends: AtomicU64,
    /// See [`ServerState::appends`] — Relaxed monotone counter.
    jobs_done: AtomicU64,
    /// Live progress of running jobs, keyed by job hash. Doubles as the
    /// duplicate-submission guard.
    running: Mutex<HashMap<u64, Arc<JobProgress>>>,
    /// Trial lines streamed by this process (all jobs), for the chaos
    /// `drop=N` trigger. Relaxed monotone counter: the chaos trigger
    /// only needs "roughly the Nth line", not a total order.
    trial_lines: AtomicU64,
    /// Whether the chaos connection drop has already fired (once per
    /// process). Relaxed + `compare_exchange`-free: double-firing is
    /// harmless (the second drop hits an already-dropped stream).
    drop_fired: AtomicBool,
}

/// A running daemon (in-process or the `tta_campaignd` binary's core).
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    listener: UnixListener,
}

/// Handle to a daemon spawned in-process with [`Server::spawn`]:
/// the `--daemon`-without-a-socket convenience used by the bench bins
/// and tests.
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket the daemon listens on.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Stops the daemon and waits for it to wind down.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.state.stop.store(true, Ordering::Relaxed);
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl Server {
    /// Binds the socket and opens the state directory (creating both as
    /// needed). A stale socket file from a dead daemon is detected by a
    /// probe connection and replaced; a *live* daemon on the socket is
    /// an error.
    ///
    /// # Errors
    ///
    /// Propagates bind/cache I/O errors; refuses a socket another
    /// daemon is actively serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.state_dir)?;
        if let Some(parent) = config.socket.parent() {
            std::fs::create_dir_all(parent)?;
        }
        if config.socket.exists() {
            match UnixStream::connect(&config.socket) {
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("a daemon already listens on {}", config.socket.display()),
                    ));
                }
                Err(_) => std::fs::remove_file(&config.socket)?,
            }
        }
        let cache = Cache::open(&config.state_dir.join("cache"))?;
        let listener = UnixListener::bind(&config.socket)?;
        Ok(Server {
            state: Arc::new(ServerState {
                config,
                cache,
                stop: AtomicBool::new(false),
                drain: AtomicBool::new(false),
                appends: AtomicU64::new(0),
                jobs_done: AtomicU64::new(0),
                running: Mutex::new(HashMap::new()),
                trial_lines: AtomicU64::new(0),
                drop_fired: AtomicBool::new(false),
            }),
            listener,
        })
    }

    /// Raises this daemon's drain flag (as the SIGTERM handler in the
    /// binary does): running jobs stop at their next chunk boundary
    /// with their journals checkpointed, new jobs are refused, and
    /// [`Server::serve`] returns once the last job has stopped.
    pub fn begin_drain(&self) {
        begin_drain(&self.state);
    }

    /// Runs the accept loop on the calling thread until a `shutdown`
    /// request stops it — or a `drain` request (or SIGTERM in the
    /// binary) has been observed *and* every running job has wound
    /// down. Joins every connection handler before returning.
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than interruption.
    pub fn serve(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.state.stop.load(Ordering::Relaxed) {
                break;
            }
            if self.state.drain.load(Ordering::Relaxed) {
                let jobs_running = !self.state.running.lock().expect("running set").is_empty();
                let handlers_live = handlers.iter().any(|h| !h.is_finished());
                if !jobs_running && !handlers_live {
                    break;
                }
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The accepted stream inherits the listener's
                    // nonblocking mode on some platforms; handlers want
                    // plain blocking I/O.
                    let _ = stream.set_nonblocking(false);
                    let state = Arc::clone(&self.state);
                    handlers.push(std::thread::spawn(move || handle(&state, stream)));
                    handlers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(&self.state.config.socket);
        Ok(())
    }

    /// Binds and serves on a background thread, returning a handle.
    /// This is how `--daemon` without an explicit socket works: the
    /// bench bins spin up a private in-process daemon, route the
    /// experiment through it, and tear it down.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::bind`] errors.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let socket = server.state.config.socket.clone();
        let state = Arc::clone(&server.state);
        let thread = std::thread::spawn(move || {
            let _ = server.serve();
        });
        Ok(ServerHandle {
            socket,
            state,
            thread: Some(thread),
        })
    }
}

fn begin_drain(state: &ServerState) {
    state.drain.store(true, Ordering::Relaxed);
}

fn handle(state: &ServerState, stream: UnixStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let request = match parse_request(line.trim_end()) {
        Ok(request) => request,
        Err(e) => {
            let _ = writeln!(writer, "{}", error_line(&e.0));
            return;
        }
    };
    match request {
        Request::Ping => {
            let _ = writeln!(writer, "{}", ok_line());
        }
        Request::Status => {
            let (running, jobs) = {
                let running = state.running.lock().expect("running set");
                // Snapshot in job-hash order: the map's own iteration
                // order varies per process, and a status line that
                // lists jobs differently on every call is noise to
                // diff-based tooling.
                let mut hashes: Vec<u64> = running.keys().copied().collect();
                hashes.sort_unstable();
                let jobs: Vec<JobStatus> = hashes
                    .iter()
                    .map(|hash| JobStatus::snapshot(&to_hex(*hash), &running[hash]))
                    .collect();
                (running.len(), jobs)
            };
            let _ = writeln!(
                writer,
                "{}",
                status_line(
                    state.cache.len(),
                    running,
                    state.jobs_done.load(Ordering::Relaxed),
                    state.drain.load(Ordering::Relaxed),
                    &jobs,
                )
            );
        }
        Request::Drain => {
            begin_drain(state);
            let _ = writeln!(writer, "{}", ok_line());
        }
        Request::Shutdown => {
            state.stop.store(true, Ordering::Relaxed);
            let _ = writeln!(writer, "{}", ok_line());
        }
        Request::Eval(request) => {
            let _ = writeln!(writer, "{}", evaluate(&request));
        }
        Request::Submit { spec, workers } => {
            submit(state, &mut writer, spec, workers);
        }
    }
}

fn evaluate(request: &EvalRequest) -> String {
    let report = SimBuilder::new(request.nodes)
        .topology(request.topology)
        .authority(request.authority)
        .slots(request.slots)
        .restart_policy(request.policy)
        .plan(request.plan.clone())
        .build()
        .run();
    evaluation_line(&PlanRunMetrics::from_report(&report, request.nodes))
}

fn submit(
    state: &ServerState,
    writer: &mut UnixStream,
    spec: crate::spec::JobSpec,
    workers: Option<usize>,
) {
    if state.drain.load(Ordering::Relaxed) {
        let _ = writeln!(
            writer,
            "{}",
            retryable_error_line("daemon is draining; resubmit to a fresh daemon")
        );
        return;
    }
    let job = match ResolvedJob::resolve(spec, &state.config.base_dir) {
        Ok(job) => job,
        Err(e) => {
            let _ = writeln!(writer, "{}", error_line(&e.0));
            return;
        }
    };
    let progress = Arc::new(JobProgress::default());
    {
        let mut running = state.running.lock().expect("running set");
        if running.contains_key(&job.job_hash) {
            // Transient by nature — the other submission will finish
            // (or die), after which a resubmit resumes from its
            // journal.
            let _ = writeln!(
                writer,
                "{}",
                retryable_error_line(&format!(
                    "job {} is already running; resubmit to resume",
                    job.job_id()
                ))
            );
            return;
        }
        running.insert(job.job_hash, Arc::clone(&progress));
    }
    let result = stream_job(state, writer, &job, workers, &progress);
    state
        .running
        .lock()
        .expect("running set")
        .remove(&job.job_hash);
    match result {
        Ok(()) => {
            state.jobs_done.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            let _ = writeln!(writer, "{}", error_line(&e.to_string()));
        }
    }
}

fn stream_job(
    state: &ServerState,
    writer: &mut UnixStream,
    job: &ResolvedJob,
    workers: Option<usize>,
    progress: &Arc<JobProgress>,
) -> std::io::Result<()> {
    let journal_path = state
        .config
        .state_dir
        .join("jobs")
        .join(format!("{}.journal", job.job_id()));
    let mut journal = Journal::open(&journal_path, job.job_hash)?;
    let trials = job.exec.effective_trials();
    writeln!(writer, "{}", accepted_line(&job.job_id(), trials))?;

    let config = RunConfig {
        workers: workers.unwrap_or(state.config.workers),
        supervision: state.config.supervision,
        chaos: state.config.chaos,
        crash: state.config.crash,
    };
    // A client hangup (or daemon shutdown/drain) cancels at the next
    // chunk boundary; journaled chunks survive for the resume.
    // Relaxed: a pure latch — workers may see it an iteration late,
    // which only delays the (already asynchronous) cancellation.
    let cancel = AtomicBool::new(false);
    let mut emit_failed = false;
    let outcome = {
        let mut emit = |verdict: &TrialVerdict| {
            if emit_failed {
                return;
            }
            if state.stop.load(Ordering::Relaxed) || state.drain.load(Ordering::Relaxed) {
                cancel.store(true, Ordering::Relaxed);
            }
            if writeln!(writer, "{}", trial_line(verdict)).is_err() {
                emit_failed = true;
                cancel.store(true, Ordering::Relaxed);
                return;
            }
            let streamed = state.trial_lines.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(limit) = state.config.chaos.drop_after {
                if streamed >= limit && !state.drop_fired.swap(true, Ordering::Relaxed) {
                    // Chaos: sever the connection mid-stream, once per
                    // process. The next emit fails and cancels the run
                    // at its chunk boundary — exactly a flaky client.
                    let _ = writer.shutdown(std::net::Shutdown::Both);
                }
            }
        };
        run(
            job,
            &mut journal,
            &state.cache,
            &config,
            RunHandles {
                appends_so_far: &state.appends,
                cancel: &cancel,
                progress: Some(progress),
            },
            &mut emit,
        )?
    };
    if outcome.complete && !emit_failed {
        let quarantined = outcome
            .verdicts
            .iter()
            .filter(|v| matches!(v, TrialVerdict::Quarantined(_)))
            .count() as u64;
        writeln!(
            writer,
            "{}",
            summary_line(&job.job_id(), &outcome.aggregate, quarantined)
        )?;
        writeln!(writer, "{}", stats_line(&outcome.stats))?;
    }
    Ok(())
}
