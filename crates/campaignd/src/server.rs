//! The daemon: a Unix-socket accept loop dispatching one request per
//! connection.
//!
//! Threading model: one OS thread per connection (jobs are minutes of
//! CPU-bound simulation behind a local socket — connection scaling is
//! not the bottleneck, worker scaling is). A `submit` handler runs the
//! sharded [`crate::runner`] inside its own thread scope; `eval` and
//! the control ops answer inline. All connections share one daemon-wide
//! result [`Cache`] and one journal directory, with a per-job lock so
//! two concurrent submissions of the *same* job cannot interleave
//! appends in one journal file.
//!
//! Shutdown is cooperative: the `shutdown` op (or
//! [`ServerHandle::shutdown`]) raises a stop flag and self-connects to
//! wake the blocking `accept`; in-flight jobs are cancelled at their
//! next chunk boundary, which — by the resumability invariant — loses
//! no journaled work.

use crate::cache::Cache;
use crate::journal::Journal;
use crate::protocol::{
    accepted_line, error_line, evaluation_line, ok_line, parse_request, stats_line, status_line,
    summary_line, trial_line, EvalRequest, Request,
};
use crate::runner::{run, CrashPlan};
use crate::spec::ResolvedJob;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tta_sim::{PlanRunMetrics, SimBuilder};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket path to listen on.
    pub socket: PathBuf,
    /// State directory (journals under `jobs/`, cache under `cache/`).
    pub state_dir: PathBuf,
    /// Default worker count for jobs that don't override it.
    pub workers: usize,
    /// Base directory against which relative scenario paths resolve.
    pub base_dir: PathBuf,
    /// Debug crash hook (`--crash-after-chunks`).
    pub crash: CrashPlan,
}

impl ServerConfig {
    /// A config rooted at `state_dir`, listening on
    /// `<state_dir>/daemon.sock`, with one worker per available core.
    #[must_use]
    pub fn at(state_dir: &Path) -> ServerConfig {
        ServerConfig {
            socket: state_dir.join("daemon.sock"),
            state_dir: state_dir.to_path_buf(),
            workers: std::thread::available_parallelism().map_or(1, usize::from),
            base_dir: std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
            crash: CrashPlan::default(),
        }
    }
}

#[derive(Debug)]
struct ServerState {
    config: ServerConfig,
    cache: Cache,
    stop: AtomicBool,
    appends: AtomicU64,
    jobs_done: AtomicU64,
    running: Mutex<HashSet<u64>>,
}

/// A running daemon (in-process or the `tta_campaignd` binary's core).
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    listener: UnixListener,
}

/// Handle to a daemon spawned in-process with [`Server::spawn`]:
/// the `--daemon`-without-a-socket convenience used by the bench bins
/// and tests.
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    state: Arc<ServerState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket the daemon listens on.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Stops the daemon and waits for it to wind down.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept.
        let _ = UnixStream::connect(&self.socket);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.state.stop.store(true, Ordering::Relaxed);
            let _ = UnixStream::connect(&self.socket);
            if let Some(thread) = self.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl Server {
    /// Binds the socket and opens the state directory (creating both as
    /// needed). A stale socket file from a dead daemon is detected by a
    /// probe connection and replaced; a *live* daemon on the socket is
    /// an error.
    ///
    /// # Errors
    ///
    /// Propagates bind/cache I/O errors; refuses a socket another
    /// daemon is actively serving.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&config.state_dir)?;
        if let Some(parent) = config.socket.parent() {
            std::fs::create_dir_all(parent)?;
        }
        if config.socket.exists() {
            match UnixStream::connect(&config.socket) {
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("a daemon already listens on {}", config.socket.display()),
                    ));
                }
                Err(_) => std::fs::remove_file(&config.socket)?,
            }
        }
        let cache = Cache::open(&config.state_dir.join("cache"))?;
        let listener = UnixListener::bind(&config.socket)?;
        Ok(Server {
            state: Arc::new(ServerState {
                config,
                cache,
                stop: AtomicBool::new(false),
                appends: AtomicU64::new(0),
                jobs_done: AtomicU64::new(0),
                running: Mutex::new(HashSet::new()),
            }),
            listener,
        })
    }

    /// Runs the accept loop on the calling thread until a `shutdown`
    /// request (or [`ServerHandle::shutdown`]) stops it, then joins
    /// every connection handler.
    ///
    /// # Errors
    ///
    /// Propagates accept errors other than interruption.
    pub fn serve(self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        for connection in self.listener.incoming() {
            if self.state.stop.load(Ordering::Relaxed) {
                break;
            }
            let stream = match connection {
                Ok(stream) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || handle(&state, stream)));
            handlers.retain(|h| !h.is_finished());
        }
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(&self.state.config.socket);
        Ok(())
    }

    /// Binds and serves on a background thread, returning a handle.
    /// This is how `--daemon` without an explicit socket works: the
    /// bench bins spin up a private in-process daemon, route the
    /// experiment through it, and tear it down.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::bind`] errors.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let socket = server.state.config.socket.clone();
        let state = Arc::clone(&server.state);
        let thread = std::thread::spawn(move || {
            let _ = server.serve();
        });
        Ok(ServerHandle {
            socket,
            state,
            thread: Some(thread),
        })
    }
}

fn handle(state: &ServerState, stream: UnixStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() || line.trim().is_empty() {
        return;
    }
    let request = match parse_request(line.trim_end()) {
        Ok(request) => request,
        Err(e) => {
            let _ = writeln!(writer, "{}", error_line(&e.0));
            return;
        }
    };
    match request {
        Request::Ping => {
            let _ = writeln!(writer, "{}", ok_line());
        }
        Request::Status => {
            let running = state.running.lock().expect("running set").len();
            let _ = writeln!(
                writer,
                "{}",
                status_line(
                    state.cache.len(),
                    running,
                    state.jobs_done.load(Ordering::Relaxed),
                )
            );
        }
        Request::Shutdown => {
            state.stop.store(true, Ordering::Relaxed);
            let _ = writeln!(writer, "{}", ok_line());
            // Wake the accept loop (this connection is already past it).
            let _ = UnixStream::connect(&state.config.socket);
        }
        Request::Eval(request) => {
            let _ = writeln!(writer, "{}", evaluate(&request));
        }
        Request::Submit { spec, workers } => {
            submit(state, &mut writer, spec, workers);
        }
    }
}

fn evaluate(request: &EvalRequest) -> String {
    let report = SimBuilder::new(request.nodes)
        .topology(request.topology)
        .authority(request.authority)
        .slots(request.slots)
        .restart_policy(request.policy)
        .plan(request.plan.clone())
        .build()
        .run();
    evaluation_line(&PlanRunMetrics::from_report(&report, request.nodes))
}

fn submit(
    state: &ServerState,
    writer: &mut UnixStream,
    spec: crate::spec::JobSpec,
    workers: Option<usize>,
) {
    let job = match ResolvedJob::resolve(spec, &state.config.base_dir) {
        Ok(job) => job,
        Err(e) => {
            let _ = writeln!(writer, "{}", error_line(&e.0));
            return;
        }
    };
    if !state
        .running
        .lock()
        .expect("running set")
        .insert(job.job_hash)
    {
        let _ = writeln!(
            writer,
            "{}",
            error_line(&format!("job {} is already running", job.job_id()))
        );
        return;
    }
    let result = stream_job(state, writer, &job, workers);
    state
        .running
        .lock()
        .expect("running set")
        .remove(&job.job_hash);
    match result {
        Ok(()) => {
            state.jobs_done.fetch_add(1, Ordering::Relaxed);
        }
        Err(e) => {
            let _ = writeln!(writer, "{}", error_line(&e.to_string()));
        }
    }
}

fn stream_job(
    state: &ServerState,
    writer: &mut UnixStream,
    job: &ResolvedJob,
    workers: Option<usize>,
) -> std::io::Result<()> {
    let journal_path = state
        .config
        .state_dir
        .join("jobs")
        .join(format!("{}.journal", job.job_id()));
    let mut journal = Journal::open(&journal_path, job.job_hash)?;
    let trials = job.exec.effective_trials();
    writeln!(writer, "{}", accepted_line(&job.job_id(), trials))?;

    // A client hangup (or daemon shutdown) cancels at the next chunk
    // boundary; journaled chunks survive for the resume.
    let cancel = AtomicBool::new(false);
    let mut emit_failed = false;
    let outcome = {
        let mut emit = |trial: &tta_sim::TrialResult| {
            if emit_failed {
                return;
            }
            if state.stop.load(Ordering::Relaxed) {
                cancel.store(true, Ordering::Relaxed);
            }
            if writeln!(writer, "{}", trial_line(trial)).is_err() {
                emit_failed = true;
                cancel.store(true, Ordering::Relaxed);
            }
        };
        run(
            job,
            &mut journal,
            &state.cache,
            workers.unwrap_or(state.config.workers),
            state.config.crash,
            &state.appends,
            &cancel,
            &mut emit,
        )?
    };
    if outcome.complete && !emit_failed {
        writeln!(
            writer,
            "{}",
            summary_line(&job.job_id(), &outcome.aggregate)
        )?;
        writeln!(writer, "{}", stats_line(&outcome.stats))?;
    }
    Ok(())
}
