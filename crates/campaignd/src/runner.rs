//! The sharded trial runner: leases chunks, sandboxes trials, consults
//! the cache, journals checkpoints, and emits results in trial-index
//! order.
//!
//! Work distribution is a *leased* variant of the chunk-claim pattern:
//! trials are partitioned into fixed [`CHUNK_SIZE`] chunks, a lease
//! table hands pending chunks to whichever worker is free, and every
//! lease carries a generation so a completion from a superseded lease
//! is discarded instead of double-published. A supervisor thread walks
//! the workers' progress slots on a fixed tick; a worker that has sat
//! on one trial past the deadline has its lease expired — the chunk
//! goes back to the front of the pending queue for a healthy worker
//! (spawning a bounded number of replacement workers when the pool has
//! been eaten by wedged threads), and the trial that caused it is
//! charged one timeout attempt.
//!
//! Each trial runs inside `catch_unwind` with a bounded retry budget
//! ([`RetryPolicy`], mirroring `tta-protocol`'s `RestartPolicy`
//! shapes): a panicking attempt is retried after exponential backoff; a
//! trial that burns the whole budget — by panicking every attempt or by
//! being charged [`RetryPolicy::max_attempts`] timeouts — is recorded
//! as a [`TrialVerdict::Quarantined`] entry in the journal and the
//! NDJSON stream. Quarantine is a deterministic *outcome*, not a crash:
//! the sweep completes, the daemon survives, and a resumed run replays
//! the quarantined verdict from the journal without re-running the
//! poisoned trial.
//!
//! Because trial `index` is the same simulation everywhere, *which*
//! worker runs a chunk — or how many times a chunk was reclaimed and
//! re-run — never shows in the output, only in the (out-of-band) stats.
//! Resumption slots in at the same seam as before: chunks recovered
//! from the journal are pre-seeded into the emitter's reorder buffer
//! and never handed to workers.

use crate::cache::Cache;
use crate::chaos::ChaosPlan;
use crate::journal::{ChunkRecord, Journal, CHUNK_SIZE};
use crate::spec::ResolvedJob;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};
use tta_sim::{TrialAggregate, TrialResult};

/// Upper bound on idle/teardown sleeps (worker claim-wait, supervisor
/// slice, emitter poll) so a long supervision tick slows *scanning*,
/// never run teardown.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// Why a trial was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// Every sandboxed attempt panicked.
    Panic,
    /// The trial was charged the full timeout budget by the supervisor.
    Timeout,
}

impl QuarantineReason {
    /// The stable wire token (`"panic"` / `"timeout"`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            QuarantineReason::Panic => "panic",
            QuarantineReason::Timeout => "timeout",
        }
    }

    /// Parses a wire token back.
    #[must_use]
    pub fn parse(token: &str) -> Option<QuarantineReason> {
        match token {
            "panic" => Some(QuarantineReason::Panic),
            "timeout" => Some(QuarantineReason::Timeout),
            _ => None,
        }
    }
}

/// A trial the retry budget gave up on: a deterministic terminal
/// verdict, journaled and streamed like any other result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedTrial {
    /// The trial's index in the sweep.
    pub index: u32,
    /// The trial's derived seed (identifies the poisoned simulation).
    pub seed: u64,
    /// Why the budget was exhausted.
    pub reason: QuarantineReason,
}

/// The terminal verdict of one trial.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialVerdict {
    /// The trial ran to completion.
    Completed(TrialResult),
    /// The trial exhausted its retry budget and was quarantined.
    Quarantined(QuarantinedTrial),
}

impl TrialVerdict {
    /// The trial index this verdict covers.
    #[must_use]
    pub fn index(&self) -> u32 {
        match self {
            TrialVerdict::Completed(t) => t.index,
            TrialVerdict::Quarantined(q) => q.index,
        }
    }

    /// The completed result, if any.
    #[must_use]
    pub fn completed(&self) -> Option<&TrialResult> {
        match self {
            TrialVerdict::Completed(t) => Some(t),
            TrialVerdict::Quarantined(_) => None,
        }
    }
}

/// Bounded retry budget for sandboxed trials — the service-level mirror
/// of `tta-protocol`'s `RestartPolicy::BoundedRetry`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts (initial + retries) before a trial is quarantined; also
    /// the timeout budget a trial may be charged by the supervisor.
    pub max_attempts: u32,
    /// Base backoff between panicking attempts (doubles per retry).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
        }
    }
}

/// Supervision parameters: the retry budget, the per-trial wall-clock
/// deadline, and the supervisor's scan period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Supervision {
    /// Retry budget for panicking / timed-out trials.
    pub retry: RetryPolicy,
    /// Wall-clock deadline for one trial attempt; a worker exceeding it
    /// has its chunk lease expired and the trial charged one timeout.
    pub trial_deadline: Duration,
    /// Supervisor scan period.
    pub tick: Duration,
}

impl Default for Supervision {
    fn default() -> Supervision {
        Supervision {
            retry: RetryPolicy::default(),
            trial_deadline: Duration::from_secs(30),
            tick: Duration::from_millis(25),
        }
    }
}

/// Non-deterministic bookkeeping of one run. Reported on a separate
/// stream line precisely because it is *not* stable across worker
/// counts or interruptions — never mix it into the deterministic
/// output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Trials answered from the result cache.
    pub cache_hits: u64,
    /// Trials actually simulated.
    pub computed: u64,
    /// Chunks recovered from the journal instead of being re-run.
    pub resumed_chunks: u64,
    /// Trials inside those recovered chunks.
    pub resumed_trials: u64,
    /// Trials quarantined this run (journal-recovered ones excluded).
    pub quarantined: u64,
    /// Panicking attempts that were retried.
    pub panics_retried: u64,
    /// Chunk leases expired and reclaimed by the supervisor.
    pub leases_reclaimed: u64,
}

/// The result of one (possibly partial) run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every emitted verdict, in trial-index order.
    pub verdicts: Vec<TrialVerdict>,
    /// The fold of the *completed* trials, in the same order every run
    /// folds in.
    pub aggregate: TrialAggregate,
    /// Whether all trials were emitted (false only when cancelled or a
    /// worker hit an I/O error mid-sweep).
    pub complete: bool,
    /// Non-deterministic bookkeeping.
    pub stats: RunStats,
}

impl RunOutcome {
    /// The completed trials, in index order.
    #[must_use]
    pub fn completed(&self) -> Vec<TrialResult> {
        self.verdicts
            .iter()
            .filter_map(|v| v.completed().copied())
            .collect()
    }
}

/// Debug crash hook: makes the daemon abort itself after a fixed number
/// of journal appends, for exercising kill-and-resume in tests and CI
/// without racing an external `SIGKILL`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashPlan {
    /// Abort the process after this many successful journal appends
    /// (counted per process, across jobs).
    pub crash_after_chunks: Option<u64>,
}

/// Everything configuring one run besides the job itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunConfig {
    /// Worker pool size (clamped to at least 1).
    pub workers: usize,
    /// Supervision parameters (`..Default::default()` for the stock
    /// budget).
    pub supervision: Supervision,
    /// Failure injection (default: none).
    pub chaos: ChaosPlan,
    /// Debug crash hook.
    pub crash: CrashPlan,
}

impl RunConfig {
    /// A config with `workers` workers and stock supervision.
    #[must_use]
    pub fn with_workers(workers: usize) -> RunConfig {
        RunConfig {
            workers,
            ..RunConfig::default()
        }
    }
}

/// Control and observation handles a host wires into one run: the
/// process-wide journal-append counter (the crash hook's clock), the
/// cancellation flag, and optional live progress for the `status` op.
#[derive(Debug, Clone, Copy)]
pub struct RunHandles<'a> {
    /// Journal appends across the whole process, fed to the crash hook.
    /// Relaxed: a monotone counter whose exact interleaving with other
    /// writers is immaterial — the crash hook only wants "about the
    /// Nth append".
    pub appends_so_far: &'a AtomicU64,
    /// Set to stop workers at the next chunk (lease) boundary.
    /// Relaxed latch: false→true once; observing it a chunk late just
    /// moves the (already chunk-granular) stop boundary.
    pub cancel: &'a AtomicBool,
    /// Live progress counters, kept current when present.
    pub progress: Option<&'a JobProgress>,
}

/// Live progress counters of one running job, shared with the daemon's
/// `status` op. All counters are monotone except `chunks_leased` and
/// `workers_active`, which track the current state.
///
/// Every field uses Relaxed ordering: these are advisory gauges read by
/// the `status` op for display only — no decision and no other data
/// hangs off them, so a momentarily stale or torn-across-fields view is
/// acceptable by design.
#[derive(Debug, Default)]
pub struct JobProgress {
    /// Chunks this run must produce (journal-recovered ones excluded).
    /// Relaxed gauge (see struct docs).
    pub chunks_total: AtomicU64,
    /// Chunks committed (journaled + handed to the emitter).
    /// Relaxed gauge (see struct docs).
    pub chunks_done: AtomicU64,
    /// Chunks currently out on a lease. Relaxed gauge (see struct docs).
    pub chunks_leased: AtomicU64,
    /// Trials quarantined so far. Relaxed gauge (see struct docs).
    pub quarantined: AtomicU64,
    /// Workers currently in the claim/execute loop. Relaxed gauge (see
    /// struct docs).
    pub workers_active: AtomicU64,
}

// ---------------------------------------------------------------------
// Lease table.
// ---------------------------------------------------------------------

/// One chunk lease: who may commit the chunk, and since when.
#[derive(Debug, Clone, Copy)]
struct Lease {
    generation: u64,
}

#[derive(Debug, Default)]
struct LeaseTable {
    pending: VecDeque<u32>,
    active: HashMap<u32, Lease>,
    done: usize,
    total: usize,
    next_generation: u64,
}

impl LeaseTable {
    fn new(pending: Vec<u32>) -> LeaseTable {
        LeaseTable {
            total: pending.len(),
            pending: pending.into(),
            ..LeaseTable::default()
        }
    }

    fn claim(&mut self) -> Option<(u32, u64)> {
        let chunk = self.pending.pop_front()?;
        let generation = self.next_generation;
        self.next_generation += 1;
        self.active.insert(chunk, Lease { generation });
        Some((chunk, generation))
    }

    /// Commits a completed chunk if `generation` still holds the lease.
    fn commit(&mut self, chunk: u32, generation: u64) -> bool {
        match self.active.get(&chunk) {
            Some(lease) if lease.generation == generation => {
                self.active.remove(&chunk);
                self.done += 1;
                true
            }
            _ => false,
        }
    }

    /// Expires a lease, returning the chunk to the head of the queue.
    /// Returns false when `generation` no longer holds the lease.
    fn expire(&mut self, chunk: u32, generation: u64) -> bool {
        match self.active.get(&chunk) {
            Some(lease) if lease.generation == generation => {
                self.active.remove(&chunk);
                self.pending.push_front(chunk);
                true
            }
            _ => false,
        }
    }

    fn finished(&self) -> bool {
        self.done == self.total
    }
}

/// What a worker is doing right now, visible to the supervisor.
#[derive(Debug, Clone, Copy)]
struct TrialInFlight {
    chunk: u32,
    generation: u64,
    index: u32,
    started: Instant,
}

/// Shared state of one run, borrowed by workers and the supervisor.
struct RunCtx<'a> {
    job: &'a ResolvedJob,
    cache: &'a Cache,
    config: &'a RunConfig,
    total_trials: u32,
    leases: Mutex<LeaseTable>,
    /// Per-worker-slot progress, scanned by the supervisor.
    in_flight: Vec<Mutex<Option<TrialInFlight>>>,
    /// Supervisor-charged timeout counts per trial index.
    timeouts: Mutex<HashMap<u32, u32>>,
    journal: Mutex<&'a mut Journal>,
    io_error: Mutex<Option<std::io::Error>>,
    /// Relaxed latch, see [`RunHandles::cancel`].
    cancel: &'a AtomicBool,
    /// Relaxed monotone counter, see [`RunHandles::appends_so_far`].
    appends_so_far: &'a AtomicU64,
    progress: Option<&'a JobProgress>,
    /// Per-run stats counters (`cache_hits` through
    /// `leases_reclaimed`): Relaxed monotone counters, read only after
    /// the worker scope joins — the join is the synchronization point,
    /// the ordering on the increments carries no data.
    cache_hits: AtomicU64,
    /// Relaxed monotone stats counter, see [`RunCtx::cache_hits`].
    computed: AtomicU64,
    /// Relaxed monotone stats counter, see [`RunCtx::cache_hits`].
    quarantined: AtomicU64,
    /// Relaxed monotone stats counter, see [`RunCtx::cache_hits`].
    panics_retried: AtomicU64,
    /// Relaxed monotone stats counter, see [`RunCtx::cache_hits`].
    leases_reclaimed: AtomicU64,
    /// Remaining worker-replacement budget. Relaxed `fetch_sub` ticket
    /// counter: each decrement claims one replacement; exact order
    /// among claimants is irrelevant, only that the budget is not
    /// exceeded (the fetch_sub return value decides that atomically).
    replacements_left: AtomicUsize,
    /// Next progress-slot index to hand to a spawned worker. Relaxed
    /// `fetch_add` ticket counter: uniqueness is all that matters.
    next_slot: AtomicUsize,
    /// Workers currently inside `worker_loop`; the emitter stops
    /// waiting once this hits zero (the sender side lives in this
    /// struct, so channel disconnection can never signal that).
    /// AcqRel/Acquire: the Release half of each decrement publishes the
    /// worker's final sends before the emitter's Acquire load can
    /// observe `live == 0` and stop draining (see `emitter_loop`).
    workers_live: AtomicUsize,
    tx: mpsc::Sender<(u32, Vec<TrialVerdict>)>,
}

impl RunCtx<'_> {
    fn bail(&self) -> bool {
        self.cancel.load(Ordering::Relaxed) || self.io_error.lock().expect("error slot").is_some()
    }

    fn timeout_count(&self, index: u32) -> u32 {
        self.timeouts
            .lock()
            .expect("timeout table")
            .get(&index)
            .copied()
            .unwrap_or(0)
    }
}

/// Swallows the panic output of *injected* chaos panics so a chaos run
/// doesn't spam stderr with backtraces; every other panic keeps the
/// default reporting. Installed once per process, first run.
fn install_quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("chaos: injected"))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|m| m.contains("chaos: injected"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Runs (or resumes) a resolved job.
///
/// `emit` observes every verdict in trial-index order —
/// journal-recovered, cache-hit, freshly simulated and quarantined
/// alike — as soon as its chunk and all earlier chunks are done.
/// Setting `cancel` stops workers at the next chunk (lease) boundary;
/// finished chunks stay journaled, so a later run resumes where this
/// one stopped. `progress`, when given, is kept current for the
/// daemon's `status` op.
///
/// # Errors
///
/// Propagates journal/cache I/O errors. Trials finished before the
/// error are already journaled and will be resumed, not lost.
///
/// # Panics
///
/// Never panics on a panicking *trial* — those are sandboxed, retried
/// and quarantined. Panics only on poisoned internal locks.
pub fn run(
    job: &ResolvedJob,
    journal: &mut Journal,
    cache: &Cache,
    config: &RunConfig,
    handles: RunHandles<'_>,
    emit: &mut dyn FnMut(&TrialVerdict),
) -> std::io::Result<RunOutcome> {
    let RunHandles {
        appends_so_far,
        cancel,
        progress,
    } = handles;
    install_quiet_chaos_panics();
    let total = job.exec.effective_trials();
    let total_chunks = total.div_ceil(CHUNK_SIZE);
    let workers = config.workers.max(1);

    let mut ready: BTreeMap<u32, Vec<TrialVerdict>> = journal.take_recovered();
    // A journal may hold chunks beyond this spec's horizon only if the
    // job hash collided; drop anything out of range defensively.
    ready.retain(|chunk, _| *chunk < total_chunks);
    let mut stats = RunStats {
        resumed_chunks: ready.len() as u64,
        resumed_trials: ready.values().map(|t| t.len() as u64).sum(),
        ..RunStats::default()
    };

    let pending: Vec<u32> = (0..total_chunks)
        .filter(|chunk| !ready.contains_key(chunk))
        .collect();
    let initial_workers = workers.min(pending.len().max(1));
    // Replacement budget: enough to survive every worker wedging once
    // per retry attempt, bounded so a pathological job cannot spawn
    // threads forever.
    let replacement_budget =
        (initial_workers * config.supervision.retry.max_attempts.max(1) as usize).min(16);

    if let Some(progress) = progress {
        progress
            .chunks_total
            .store(pending.len() as u64, Ordering::Relaxed);
        progress.chunks_done.store(0, Ordering::Relaxed);
        progress.chunks_leased.store(0, Ordering::Relaxed);
        progress.quarantined.store(0, Ordering::Relaxed);
    }

    let (tx, rx) = mpsc::channel::<(u32, Vec<TrialVerdict>)>();
    let ctx = RunCtx {
        job,
        cache,
        config,
        total_trials: total,
        leases: Mutex::new(LeaseTable::new(pending)),
        in_flight: (0..initial_workers + replacement_budget)
            .map(|_| Mutex::new(None))
            .collect(),
        timeouts: Mutex::new(HashMap::new()),
        journal: Mutex::new(journal),
        io_error: Mutex::new(None),
        cancel,
        appends_so_far,
        progress,
        cache_hits: AtomicU64::new(0),
        computed: AtomicU64::new(0),
        quarantined: AtomicU64::new(0),
        panics_retried: AtomicU64::new(0),
        leases_reclaimed: AtomicU64::new(0),
        replacements_left: AtomicUsize::new(replacement_budget),
        next_slot: AtomicUsize::new(0),
        workers_live: AtomicUsize::new(0),
        tx,
    };

    std::thread::scope(|scope| {
        for _ in 0..initial_workers {
            let slot = ctx.next_slot.fetch_add(1, Ordering::Relaxed);
            let ctx = &ctx;
            // Registered before the spawn so the emitter can never
            // observe zero live workers while any are still starting.
            ctx.workers_live.fetch_add(1, Ordering::AcqRel);
            scope.spawn(move || worker_loop(ctx, slot));
        }
        // The supervisor: scans progress slots, expires stale leases,
        // spawns replacements for wedged workers.
        {
            let ctx = &ctx;
            scope.spawn(move || supervisor_loop(ctx, scope));
        }

        // In-order emitter: republish chunks as soon as the next index
        // is available, pulling from workers until the run completes
        // or the pool empties out (cancel / crash budget / I/O error).
        let mut emitted: Vec<TrialVerdict> = Vec::with_capacity(total as usize);
        let mut next: u32 = 0;
        while next < total_chunks {
            if let Some(verdicts) = ready.remove(&next) {
                for verdict in &verdicts {
                    emit(verdict);
                }
                emitted.extend(verdicts);
                next += 1;
                continue;
            }
            match rx.recv_timeout(config.supervision.tick.min(IDLE_POLL)) {
                Ok((chunk, verdicts)) => {
                    ready.insert(chunk, verdicts);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if ctx.workers_live.load(Ordering::Acquire) == 0 {
                        // Every worker has exited; whatever they sent
                        // is already in the channel. Drain it, then
                        // stop if the next chunk still isn't there.
                        while let Ok((chunk, verdicts)) = rx.try_recv() {
                            ready.insert(chunk, verdicts);
                        }
                        if !ready.contains_key(&next) {
                            break;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        stats.cache_hits = ctx.cache_hits.load(Ordering::Relaxed);
        stats.computed = ctx.computed.load(Ordering::Relaxed);
        stats.quarantined = ctx.quarantined.load(Ordering::Relaxed);
        stats.panics_retried = ctx.panics_retried.load(Ordering::Relaxed);
        stats.leases_reclaimed = ctx.leases_reclaimed.load(Ordering::Relaxed);
        // Unblock any worker still waiting on lease churn.
        cancel.store(
            cancel.load(Ordering::Relaxed) || next == total_chunks,
            Ordering::Relaxed,
        );
        let error = ctx.io_error.lock().expect("error slot").take();
        if let Some(e) = error {
            return Err(e);
        }
        let aggregate = TrialAggregate::fold(
            &emitted
                .iter()
                .filter_map(|v| v.completed().copied())
                .collect::<Vec<_>>(),
        );
        Ok(RunOutcome {
            complete: emitted.len() == total as usize,
            verdicts: emitted,
            aggregate,
            stats,
        })
    })
}

fn worker_loop(ctx: &RunCtx<'_>, slot: usize) {
    // The spawner incremented `workers_live` for us.
    if let Some(progress) = ctx.progress {
        progress.workers_active.fetch_add(1, Ordering::Relaxed);
    }
    loop {
        if ctx.bail() {
            break;
        }
        let claimed = {
            let mut leases = ctx.leases.lock().expect("lease table");
            if leases.finished() {
                break;
            }
            leases.claim()
        };
        let Some((chunk, generation)) = claimed else {
            // Nothing pending, but leased chunks may yet be reclaimed
            // by the supervisor — wait for churn instead of exiting.
            // Capped below the tick so run teardown never waits out a
            // long scan interval.
            if ctx.leases.lock().expect("lease table").finished() {
                break;
            }
            std::thread::sleep(ctx.config.supervision.tick.min(IDLE_POLL));
            continue;
        };
        if let Some(progress) = ctx.progress {
            progress.chunks_leased.fetch_add(1, Ordering::Relaxed);
        }
        let (verdicts, fresh) = execute_chunk(ctx, chunk, generation, slot);
        let committed = ctx
            .leases
            .lock()
            .expect("lease table")
            .commit(chunk, generation);
        if let Some(progress) = ctx.progress {
            progress.chunks_leased.fetch_sub(1, Ordering::Relaxed);
        }
        if !committed {
            // The supervisor reclaimed this lease while we were wedged;
            // another worker owns (or owned) the chunk now. Discard —
            // results are deterministic, so the other copy is
            // equivalent.
            continue;
        }
        let quarantined_here = verdicts
            .iter()
            .filter(|v| matches!(v, TrialVerdict::Quarantined(_)))
            .count() as u64;
        let record = ChunkRecord {
            chunk,
            trials: verdicts,
        };
        let appended = (|| -> std::io::Result<()> {
            ctx.cache.insert_batch(&fresh)?;
            let mut journal = ctx.journal.lock().expect("journal lock");
            journal.append(&record)?;
            Ok(())
        })();
        match appended {
            Ok(()) => {
                ctx.quarantined
                    .fetch_add(quarantined_here, Ordering::Relaxed);
                if let Some(progress) = ctx.progress {
                    progress.chunks_done.fetch_add(1, Ordering::Relaxed);
                    progress
                        .quarantined
                        .fetch_add(quarantined_here, Ordering::Relaxed);
                }
                let done = ctx.appends_so_far.fetch_add(1, Ordering::Relaxed) + 1;
                let crash_at = ctx
                    .config
                    .crash
                    .crash_after_chunks
                    .or(ctx.config.chaos.kill_after_chunks);
                if crash_at.is_some_and(|n| done >= n) {
                    // The whole point: die *after* the checkpoint hit
                    // disk, with no unwind, like a power cut.
                    std::process::abort();
                }
                let _ = ctx.tx.send((record.chunk, record.trials));
            }
            Err(e) => {
                ctx.io_error.lock().expect("error slot").get_or_insert(e);
                break;
            }
        }
    }
    if let Some(progress) = ctx.progress {
        progress.workers_active.fetch_sub(1, Ordering::Relaxed);
    }
    ctx.workers_live.fetch_sub(1, Ordering::AcqRel);
}

/// Runs every trial of one chunk under the sandbox, returning the
/// verdicts plus the freshly computed cache entries.
fn execute_chunk(
    ctx: &RunCtx<'_>,
    chunk: u32,
    generation: u64,
    slot: usize,
) -> (Vec<TrialVerdict>, Vec<(u64, TrialResult)>) {
    let start = chunk * CHUNK_SIZE;
    let end = (start + CHUNK_SIZE).min(ctx.total_trials);
    let mut verdicts = Vec::with_capacity((end - start) as usize);
    let mut fresh = Vec::new();
    for index in start..end {
        let trial_seed = ctx.job.exec.trial_seed(index);
        let key = ctx.job.trial_key(trial_seed);
        if let Some(hit) = ctx.cache.lookup(key, index) {
            ctx.cache_hits.fetch_add(1, Ordering::Relaxed);
            verdicts.push(TrialVerdict::Completed(hit));
            continue;
        }
        let verdict = run_sandboxed(ctx, chunk, generation, slot, index, trial_seed);
        if let TrialVerdict::Completed(trial) = &verdict {
            fresh.push((key, *trial));
        }
        verdicts.push(verdict);
        // A reclaimed lease means our remaining work is someone else's;
        // finishing the chunk would only waste CPU. Keep going anyway
        // if we're nearly done — the commit check is the arbiter — but
        // bail mid-chunk on cancellation.
        if ctx.cancel.load(Ordering::Relaxed) && verdicts.len() < (end - start) as usize {
            // Incomplete chunks are never committed; drop the partial
            // work and let a resume recompute it.
            let mut leases = ctx.leases.lock().expect("lease table");
            leases.expire(chunk, generation);
            return (verdicts, fresh);
        }
    }
    (verdicts, fresh)
}

/// One trial under `catch_unwind` + deadline supervision + retry
/// budget.
fn run_sandboxed(
    ctx: &RunCtx<'_>,
    chunk: u32,
    generation: u64,
    slot: usize,
    index: u32,
    trial_seed: u64,
) -> TrialVerdict {
    let budget = ctx.config.supervision.retry.max_attempts.max(1);
    let mut panic_attempts = 0u32;
    loop {
        // Timeout charges accrue via the supervisor (possibly against
        // an earlier lease of this chunk); a trial over budget is
        // quarantined without running again.
        let timeout_attempts = ctx.timeout_count(index);
        if timeout_attempts >= budget {
            return TrialVerdict::Quarantined(QuarantinedTrial {
                index,
                seed: trial_seed,
                reason: QuarantineReason::Timeout,
            });
        }
        *ctx.in_flight[slot].lock().expect("progress slot") = Some(TrialInFlight {
            chunk,
            generation,
            index,
            // detlint: allow(DL02) reason=supervision deadline stamp; read only by the supervisor scan, never by trial execution or output
            started: Instant::now(),
        });
        let chaos = &ctx.config.chaos;
        let deadline = ctx.config.supervision.trial_deadline;
        let attempt = panic_attempts;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if chaos.injects_panic(index, trial_seed, attempt) {
                panic!("chaos: injected worker panic (trial {index})");
            }
            if chaos.injects_stall(index, timeout_attempts) {
                // Stall past the deadline so the supervisor reclaims
                // the lease; bounded, so wedged threads drain.
                std::thread::sleep(
                    deadline
                        .saturating_mul(2)
                        .min(deadline + Duration::from_secs(10)),
                );
            }
            ctx.job.exec.run_trial(index)
        }));
        *ctx.in_flight[slot].lock().expect("progress slot") = None;
        match outcome {
            Ok(trial) => {
                ctx.computed.fetch_add(1, Ordering::Relaxed);
                return TrialVerdict::Completed(trial);
            }
            Err(_) => {
                panic_attempts += 1;
                if panic_attempts >= budget {
                    return TrialVerdict::Quarantined(QuarantinedTrial {
                        index,
                        seed: trial_seed,
                        reason: QuarantineReason::Panic,
                    });
                }
                ctx.panics_retried.fetch_add(1, Ordering::Relaxed);
                // Exponential backoff between attempts.
                let backoff = ctx
                    .config
                    .supervision
                    .retry
                    .backoff
                    .saturating_mul(1 << (panic_attempts - 1).min(8));
                std::thread::sleep(backoff);
            }
        }
    }
}

/// Scans the workers' progress slots on a fixed tick; a trial past its
/// deadline is charged one timeout and its chunk lease expired, and a
/// replacement worker is spawned (bounded) since the wedged one cannot
/// claim further work until it returns.
fn supervisor_loop<'scope, 'env>(
    ctx: &'scope RunCtx<'env>,
    scope: &'scope std::thread::Scope<'scope, 'env>,
) where
    'env: 'scope,
{
    // detlint: allow(DL02) reason=supervisor scan cadence; timing decides only when to look for stale leases, reclaim itself is generation-checked
    let mut last_scan = Instant::now();
    loop {
        if ctx.bail() || ctx.leases.lock().expect("lease table").finished() {
            break;
        }
        // Sleep in short slices so a finished run tears down promptly
        // even under a long scan tick; the scan itself keeps its
        // configured cadence.
        std::thread::sleep(ctx.config.supervision.tick.min(IDLE_POLL));
        if last_scan.elapsed() < ctx.config.supervision.tick {
            continue;
        }
        // detlint: allow(DL02) reason=supervisor scan cadence, out-of-band
        last_scan = Instant::now();
        for slot in &ctx.in_flight {
            let stale = {
                let mut guard = slot.lock().expect("progress slot");
                match &*guard {
                    Some(t) if t.started.elapsed() > ctx.config.supervision.trial_deadline => {
                        guard.take()
                    }
                    _ => None,
                }
            };
            let Some(t) = stale else { continue };
            let expired = ctx
                .leases
                .lock()
                .expect("lease table")
                .expire(t.chunk, t.generation);
            if !expired {
                continue; // Already superseded; nothing to charge.
            }
            ctx.leases_reclaimed.fetch_add(1, Ordering::Relaxed);
            if let Some(progress) = ctx.progress {
                progress.chunks_leased.fetch_sub(1, Ordering::Relaxed);
            }
            *ctx.timeouts
                .lock()
                .expect("timeout table")
                .entry(t.index)
                .or_insert(0) += 1;
            // The wedged worker occupies a pool slot until its stalled
            // trial returns; restore capacity so recovery time stays
            // bounded by the deadline, not by the stall.
            if ctx
                .replacements_left
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
            {
                let slot = ctx.next_slot.fetch_add(1, Ordering::Relaxed);
                if slot < ctx.in_flight.len() {
                    ctx.workers_live.fetch_add(1, Ordering::AcqRel);
                    scope.spawn(move || worker_loop(ctx, slot));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, ResolvedJob, ScenarioSource};
    use std::path::{Path, PathBuf};
    use tta_sim::Scenario;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaignd-runner-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn job() -> ResolvedJob {
        let spec = JobSpec {
            trials: 20, // 2 full chunks + 1 short chunk
            slots: 200,
            ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
        };
        ResolvedJob::resolve(spec, Path::new(".")).unwrap()
    }

    fn run_with(dir: &Path, config: &RunConfig) -> (RunOutcome, Vec<u32>) {
        let job = job();
        let mut journal =
            Journal::open(&dir.join(format!("{}.journal", job.job_id())), job.job_hash).unwrap();
        let cache = Cache::open(&dir.join("cache")).unwrap();
        let mut seen = Vec::new();
        let outcome = run(
            &job,
            &mut journal,
            &cache,
            config,
            RunHandles {
                appends_so_far: &AtomicU64::new(0),
                cancel: &AtomicBool::new(false),
                progress: None,
            },
            &mut |v| seen.push(v.index()),
        )
        .unwrap();
        (outcome, seen)
    }

    fn run_fresh(dir: &Path, workers: usize) -> (RunOutcome, Vec<u32>) {
        run_with(dir, &RunConfig::with_workers(workers))
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let base = run_fresh(&temp_dir("w1"), 1);
        for workers in [2, 4, 8] {
            let other = run_fresh(&temp_dir(&format!("w{workers}")), workers);
            assert_eq!(other.0.verdicts, base.0.verdicts, "workers={workers}");
            assert_eq!(other.0.aggregate, base.0.aggregate);
            assert_eq!(other.1, (0..20).collect::<Vec<u32>>());
        }
        assert!(base.0.complete);
        assert_eq!(base.0.stats.computed, 20);
        assert_eq!(base.0.stats.cache_hits, 0);
        assert_eq!(base.0.stats.quarantined, 0);
    }

    #[test]
    fn resumed_runs_reuse_journaled_chunks_and_match() {
        let dir = temp_dir("resume");
        let job = job();
        let journal_path = dir.join("job.journal");

        // First run: cancel after the first chunk lands. With one
        // worker the cancellation point is deterministic enough — at
        // least one chunk journals, not all three.
        let cancel = AtomicBool::new(false);
        let cache = Cache::open(&dir.join("cache")).unwrap();
        {
            let mut journal = Journal::open(&journal_path, job.job_hash).unwrap();
            let mut count = 0u32;
            let outcome = run(
                &job,
                &mut journal,
                &cache,
                &RunConfig::with_workers(1),
                RunHandles {
                    appends_so_far: &AtomicU64::new(0),
                    cancel: &cancel,
                    progress: None,
                },
                &mut |_| {
                    count += 1;
                    if count == CHUNK_SIZE {
                        cancel.store(true, Ordering::Relaxed);
                    }
                },
            )
            .unwrap();
            assert!(!outcome.complete);
            assert!(outcome.stats.computed >= u64::from(CHUNK_SIZE));
        }

        // Resume with a *fresh cache* so resumed chunks provably come
        // from the journal, not recomputation or cache hits.
        let empty_cache = Cache::open(&dir.join("cache2")).unwrap();
        let mut journal = Journal::open(&journal_path, job.job_hash).unwrap();
        let mut order = Vec::new();
        let resumed = run(
            &job,
            &mut journal,
            &empty_cache,
            &RunConfig::with_workers(4),
            RunHandles {
                appends_so_far: &AtomicU64::new(0),
                cancel: &AtomicBool::new(false),
                progress: None,
            },
            &mut |v| order.push(v.index()),
        )
        .unwrap();
        assert!(resumed.complete);
        assert!(resumed.stats.resumed_chunks >= 1);
        assert_eq!(order, (0..20).collect::<Vec<u32>>());

        let (fresh, _) = run_fresh(&temp_dir("resume-ref"), 4);
        assert_eq!(resumed.verdicts, fresh.verdicts);
        assert_eq!(resumed.aggregate, fresh.aggregate);
    }

    /// The detlint DL02 audit routes every wall-clock read in this
    /// module out of the deterministic stream (supervision deadlines
    /// and scan cadence only). This is the behavioral pin for that
    /// claim: cranking the supervisor's timing from one extreme to the
    /// other — a frantic 1ms scan tick versus a glacial 5s one, under
    /// contention at several worker counts — must leave the verdict
    /// stream and aggregate byte-identical to the stock configuration.
    /// The deadline stays generous so no lease legitimately expires;
    /// *that* path is exercised by `chaos.rs`, where degradation is the
    /// point.
    #[test]
    fn supervision_timing_never_leaks_into_the_stream() {
        let (reference, order) = run_fresh(&temp_dir("sup-ref"), 4);
        assert!(reference.complete);
        assert_eq!(order, (0..20).collect::<Vec<u32>>());

        for (name, tick_ms, workers) in [
            ("frantic-w2", 1u64, 2usize),
            ("frantic-w8", 1, 8),
            ("glacial-w4", 5_000, 4),
        ] {
            let mut config = RunConfig::with_workers(workers);
            config.supervision.tick = Duration::from_millis(tick_ms);
            config.supervision.trial_deadline = Duration::from_secs(600);
            let (outcome, order) = run_with(&temp_dir(&format!("sup-{name}")), &config);
            assert!(outcome.complete, "{name}");
            assert_eq!(outcome.verdicts, reference.verdicts, "{name}");
            assert_eq!(outcome.aggregate, reference.aggregate, "{name}");
            assert_eq!(order, (0..20).collect::<Vec<u32>>(), "{name}");
            assert_eq!(
                outcome.stats.quarantined, 0,
                "{name}: a generous deadline must never quarantine"
            );
        }
    }

    #[test]
    fn second_run_hits_cache_with_identical_results() {
        let dir = temp_dir("cache-hit");
        let job = job();
        let cache = Cache::open(&dir.join("cache")).unwrap();

        let mut journal = Journal::open(&dir.join("a.journal"), job.job_hash).unwrap();
        let first = run(
            &job,
            &mut journal,
            &cache,
            &RunConfig::with_workers(4),
            RunHandles {
                appends_so_far: &AtomicU64::new(0),
                cancel: &AtomicBool::new(false),
                progress: None,
            },
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(first.stats.cache_hits, 0);

        // Same scenario, fresh journal: every trial answered from cache.
        let mut journal = Journal::open(&dir.join("b.journal"), job.job_hash).unwrap();
        let second = run(
            &job,
            &mut journal,
            &cache,
            &RunConfig::with_workers(4),
            RunHandles {
                appends_so_far: &AtomicU64::new(0),
                cancel: &AtomicBool::new(false),
                progress: None,
            },
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(second.stats.cache_hits, 20);
        assert_eq!(second.stats.computed, 0);
        assert_eq!(second.verdicts, first.verdicts);
        assert_eq!(second.aggregate, first.aggregate);
    }

    #[test]
    fn inapplicable_jobs_complete_with_zero_trials() {
        let dir = temp_dir("empty");
        let spec = JobSpec {
            topology: tta_sim::Topology::Bus,
            ..JobSpec::new(ScenarioSource::Builtin(Scenario::CouplerReplay))
        };
        let job = ResolvedJob::resolve(spec, Path::new(".")).unwrap();
        let mut journal = Journal::open(&dir.join("j.journal"), job.job_hash).unwrap();
        let cache = Cache::open(&dir.join("cache")).unwrap();
        let outcome = run(
            &job,
            &mut journal,
            &cache,
            &RunConfig::with_workers(4),
            RunHandles {
                appends_so_far: &AtomicU64::new(0),
                cancel: &AtomicBool::new(false),
                progress: None,
            },
            &mut |_| {},
        )
        .unwrap();
        assert!(outcome.complete);
        assert!(outcome.verdicts.is_empty());
        assert_eq!(outcome.aggregate.trials, 0);
    }

    #[test]
    fn injected_panics_are_retried_and_masked() {
        let reference = run_fresh(&temp_dir("chaos-ref"), 2);
        let mut config = RunConfig::with_workers(2);
        config.chaos = ChaosPlan::parse("panic=0.5,seed=11").unwrap();
        let chaotic = run_with(&temp_dir("chaos-panic"), &config);
        assert_eq!(chaotic.0.verdicts, reference.0.verdicts);
        assert_eq!(chaotic.0.aggregate, reference.0.aggregate);
        assert_eq!(chaotic.0.stats.quarantined, 0);
        assert!(
            chaotic.0.stats.panics_retried > 0,
            "p=0.5 over 20 trials should have injected at least one panic"
        );
    }

    #[test]
    fn a_poisoned_trial_is_quarantined_not_fatal() {
        let mut config = RunConfig::with_workers(2);
        config.chaos = ChaosPlan::parse("poison=5").unwrap();
        config.supervision.retry.backoff = Duration::from_millis(1);
        let (outcome, seen) = run_with(&temp_dir("poison"), &config);
        assert!(outcome.complete);
        assert_eq!(seen, (0..20).collect::<Vec<u32>>());
        assert_eq!(outcome.stats.quarantined, 1);
        let quarantined: Vec<_> = outcome
            .verdicts
            .iter()
            .filter_map(|v| match v {
                TrialVerdict::Quarantined(q) => Some(*q),
                TrialVerdict::Completed(_) => None,
            })
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].index, 5);
        assert_eq!(quarantined[0].reason, QuarantineReason::Panic);
        // The fold covers the 19 completed trials only.
        assert_eq!(outcome.aggregate.trials, 19);

        // Identical at another worker count: quarantine is
        // deterministic.
        let mut config4 = config;
        config4.workers = 4;
        let again = run_with(&temp_dir("poison4"), &config4);
        assert_eq!(again.0.verdicts, outcome.verdicts);
    }

    #[test]
    fn a_quarantined_trial_resumes_from_the_journal_without_rerunning() {
        let dir = temp_dir("poison-resume");
        let mut config = RunConfig::with_workers(2);
        config.chaos = ChaosPlan::parse("poison=5").unwrap();
        config.supervision.retry.backoff = Duration::from_millis(1);
        let (first, _) = run_with(&dir, &config);
        assert_eq!(first.stats.quarantined, 1);

        // Resume on the same journal *without* chaos: nothing re-runs,
        // the quarantined verdict replays from the journal.
        let job = job();
        let mut journal =
            Journal::open(&dir.join(format!("{}.journal", job.job_id())), job.job_hash).unwrap();
        let cache = Cache::open(&dir.join("cache-fresh")).unwrap();
        let resumed = run(
            &job,
            &mut journal,
            &cache,
            &RunConfig::with_workers(2),
            RunHandles {
                appends_so_far: &AtomicU64::new(0),
                cancel: &AtomicBool::new(false),
                progress: None,
            },
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(
            resumed.stats.computed, 0,
            "all chunks came from the journal"
        );
        assert_eq!(resumed.verdicts, first.verdicts);
    }

    #[test]
    fn a_stalled_trial_is_reclaimed_by_a_healthy_worker() {
        let reference = run_fresh(&temp_dir("stall-ref"), 2);
        let mut config = RunConfig::with_workers(2);
        config.chaos = ChaosPlan::parse("timeout=12").unwrap();
        config.supervision.trial_deadline = Duration::from_millis(150);
        config.supervision.tick = Duration::from_millis(10);
        let chaotic = run_with(&temp_dir("stall"), &config);
        assert_eq!(chaotic.0.verdicts, reference.0.verdicts);
        assert_eq!(chaotic.0.stats.quarantined, 0);
        assert!(
            chaotic.0.stats.leases_reclaimed >= 1,
            "the stalled chunk's lease must have been reclaimed"
        );
    }

    #[test]
    fn a_hung_trial_is_quarantined_with_a_timeout_verdict() {
        let mut config = RunConfig::with_workers(2);
        config.chaos = ChaosPlan::parse("hang=3").unwrap();
        config.supervision.trial_deadline = Duration::from_millis(120);
        config.supervision.tick = Duration::from_millis(10);
        let (outcome, seen) = run_with(&temp_dir("hang"), &config);
        assert!(outcome.complete);
        assert_eq!(seen, (0..20).collect::<Vec<u32>>());
        let quarantined: Vec<_> = outcome
            .verdicts
            .iter()
            .filter_map(|v| match v {
                TrialVerdict::Quarantined(q) => Some(*q),
                TrialVerdict::Completed(_) => None,
            })
            .collect();
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].index, 3);
        assert_eq!(quarantined[0].reason, QuarantineReason::Timeout);
    }
}
