//! The sharded trial runner: claims chunks, consults the cache,
//! journals checkpoints, and emits results in trial-index order.
//!
//! Work distribution follows the chunk-claim pattern of
//! `tta_modelcheck::chunks::map_chunks`: trials are partitioned into
//! fixed [`CHUNK_SIZE`] chunks, an atomic cursor hands pending chunks
//! to whichever worker is free (fast workers take more), and the
//! emitter republishes finished chunks strictly in index order. Because
//! trial `index` is the same simulation everywhere, *which* worker runs
//! a chunk never shows in the output — only in the timing.
//!
//! Resumption slots in at the same seam: chunks recovered from the
//! journal are pre-seeded into the emitter's reorder buffer and simply
//! never handed to workers. The emitted stream is byte-identical to an
//! uninterrupted run's by construction, because both are the same
//! records in the same order — one set read back from disk, the other
//! recomputed from the same seeds.

use crate::cache::Cache;
use crate::journal::{ChunkRecord, Journal, CHUNK_SIZE};
use crate::spec::ResolvedJob;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use tta_sim::{TrialAggregate, TrialResult};

/// Non-deterministic bookkeeping of one run. Reported on a separate
/// stream line precisely because it is *not* stable across worker
/// counts or interruptions — never mix it into the deterministic
/// output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Trials answered from the result cache.
    pub cache_hits: u64,
    /// Trials actually simulated.
    pub computed: u64,
    /// Chunks recovered from the journal instead of being re-run.
    pub resumed_chunks: u64,
    /// Trials inside those recovered chunks.
    pub resumed_trials: u64,
}

/// The result of one (possibly partial) run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Every emitted trial, in index order.
    pub trials: Vec<TrialResult>,
    /// The fold of `trials`, in the same order every run folds in.
    pub aggregate: TrialAggregate,
    /// Whether all trials were emitted (false only when cancelled or a
    /// worker hit an I/O error mid-sweep).
    pub complete: bool,
    /// Non-deterministic bookkeeping.
    pub stats: RunStats,
}

/// Debug crash hook: makes the daemon abort itself after a fixed number
/// of journal appends, for exercising kill-and-resume in tests and CI
/// without racing an external `SIGKILL`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashPlan {
    /// Abort the process after this many successful journal appends
    /// (counted per process, across jobs).
    pub crash_after_chunks: Option<u64>,
}

/// Runs (or resumes) a resolved job.
///
/// `workers` is clamped to at least 1. `emit` observes every trial in
/// index order — journal-recovered, cache-hit and freshly simulated
/// alike — as soon as its chunk and all earlier chunks are done.
/// Setting `cancel` stops workers at the next chunk boundary; finished
/// chunks stay journaled, so a later run resumes where this one
/// stopped.
///
/// # Errors
///
/// Propagates journal/cache I/O errors. Trials finished before the
/// error are already journaled and will be resumed, not lost.
///
/// # Panics
///
/// Panics only if a worker thread panics (a simulator bug).
#[allow(clippy::too_many_arguments)]
pub fn run(
    job: &ResolvedJob,
    journal: &mut Journal,
    cache: &Cache,
    workers: usize,
    crash: CrashPlan,
    appends_so_far: &AtomicU64,
    cancel: &AtomicBool,
    emit: &mut dyn FnMut(&TrialResult),
) -> std::io::Result<RunOutcome> {
    let total = job.exec.effective_trials();
    let total_chunks = total.div_ceil(CHUNK_SIZE);
    let workers = workers.max(1);

    let mut ready: BTreeMap<u32, Vec<TrialResult>> = journal.take_recovered();
    // A journal may hold chunks beyond this spec's horizon only if the
    // job hash collided; drop anything out of range defensively.
    ready.retain(|chunk, _| *chunk < total_chunks);
    let mut stats = RunStats {
        resumed_chunks: ready.len() as u64,
        resumed_trials: ready.values().map(|t| t.len() as u64).sum(),
        ..RunStats::default()
    };

    let pending: Vec<u32> = (0..total_chunks)
        .filter(|chunk| !ready.contains_key(chunk))
        .collect();

    let cursor = AtomicUsize::new(0);
    let cache_hits = AtomicU64::new(0);
    let computed = AtomicU64::new(0);
    let journal_slot = Mutex::new(journal);
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let (tx, rx) = mpsc::channel::<(u32, Vec<TrialResult>)>();

    std::thread::scope(|scope| {
        for _ in 0..workers.min(pending.len().max(1)) {
            let tx = tx.clone();
            scope.spawn(|| {
                let tx = tx; // move the clone, borrow the rest
                loop {
                    if cancel.load(Ordering::Relaxed) {
                        break;
                    }
                    if io_error.lock().expect("error slot").is_some() {
                        break;
                    }
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&chunk) = pending.get(slot) else {
                        break;
                    };
                    let start = chunk * CHUNK_SIZE;
                    let end = (start + CHUNK_SIZE).min(total);
                    let mut trials = Vec::with_capacity((end - start) as usize);
                    let mut fresh = Vec::new();
                    for index in start..end {
                        let key = job.trial_key(job.exec.trial_seed(index));
                        if let Some(hit) = cache.lookup(key, index) {
                            cache_hits.fetch_add(1, Ordering::Relaxed);
                            trials.push(hit);
                        } else {
                            let trial = job.exec.run_trial(index);
                            computed.fetch_add(1, Ordering::Relaxed);
                            fresh.push((key, trial));
                            trials.push(trial);
                        }
                    }
                    let record = ChunkRecord { chunk, trials };
                    let appended = (|| -> std::io::Result<()> {
                        cache.insert_batch(&fresh)?;
                        let mut journal = journal_slot.lock().expect("journal lock");
                        journal.append(&record)?;
                        Ok(())
                    })();
                    match appended {
                        Ok(()) => {
                            let done = appends_so_far.fetch_add(1, Ordering::Relaxed) + 1;
                            if crash.crash_after_chunks.is_some_and(|n| done >= n) {
                                // The whole point: die *after* the
                                // checkpoint hit disk, with no unwind,
                                // like a power cut.
                                std::process::abort();
                            }
                            let _ = tx.send((record.chunk, record.trials));
                        }
                        Err(e) => {
                            io_error.lock().expect("error slot").get_or_insert(e);
                            break;
                        }
                    }
                }
            });
        }
        drop(tx);

        // In-order emitter: republish chunks as soon as the next index
        // is available, pulling from workers until they all hang up.
        let mut emitted: Vec<TrialResult> = Vec::with_capacity(total as usize);
        let mut next: u32 = 0;
        loop {
            if let Some(trials) = ready.remove(&next) {
                for trial in &trials {
                    emit(trial);
                }
                emitted.extend(trials);
                next += 1;
                if next == total_chunks {
                    break;
                }
                continue;
            }
            match rx.recv() {
                Ok((chunk, trials)) => {
                    ready.insert(chunk, trials);
                }
                Err(_) => break, // workers done (or cancelled/errored)
            }
        }
        stats.cache_hits = cache_hits.load(Ordering::Relaxed);
        stats.computed = computed.load(Ordering::Relaxed);
        let error = io_error.lock().expect("error slot").take();
        if let Some(e) = error {
            return Err(e);
        }
        let aggregate = TrialAggregate::fold(&emitted);
        Ok(RunOutcome {
            complete: emitted.len() == total as usize,
            trials: emitted,
            aggregate,
            stats,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, ResolvedJob, ScenarioSource};
    use std::path::{Path, PathBuf};
    use tta_sim::Scenario;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaignd-runner-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn job() -> ResolvedJob {
        let spec = JobSpec {
            trials: 20, // 2 full chunks + 1 short chunk
            slots: 200,
            ..JobSpec::new(ScenarioSource::Builtin(Scenario::SosSender))
        };
        ResolvedJob::resolve(spec, Path::new(".")).unwrap()
    }

    fn run_fresh(dir: &Path, workers: usize) -> (RunOutcome, Vec<u32>) {
        let job = job();
        let mut journal =
            Journal::open(&dir.join(format!("{}.journal", job.job_id())), job.job_hash).unwrap();
        let cache = Cache::open(&dir.join("cache")).unwrap();
        let mut seen = Vec::new();
        let outcome = run(
            &job,
            &mut journal,
            &cache,
            workers,
            CrashPlan::default(),
            &AtomicU64::new(0),
            &AtomicBool::new(false),
            &mut |t| seen.push(t.index),
        )
        .unwrap();
        (outcome, seen)
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let base = run_fresh(&temp_dir("w1"), 1);
        for workers in [2, 4, 8] {
            let other = run_fresh(&temp_dir(&format!("w{workers}")), workers);
            assert_eq!(other.0.trials, base.0.trials, "workers={workers}");
            assert_eq!(other.0.aggregate, base.0.aggregate);
            assert_eq!(other.1, (0..20).collect::<Vec<u32>>());
        }
        assert!(base.0.complete);
        assert_eq!(base.0.stats.computed, 20);
        assert_eq!(base.0.stats.cache_hits, 0);
    }

    #[test]
    fn resumed_runs_reuse_journaled_chunks_and_match() {
        let dir = temp_dir("resume");
        let job = job();
        let journal_path = dir.join("job.journal");

        // First run: cancel after the first chunk lands. With one
        // worker the cancellation point is deterministic enough — at
        // least one chunk journals, not all three.
        let cancel = AtomicBool::new(false);
        let cache = Cache::open(&dir.join("cache")).unwrap();
        {
            let mut journal = Journal::open(&journal_path, job.job_hash).unwrap();
            let mut count = 0u32;
            let outcome = run(
                &job,
                &mut journal,
                &cache,
                1,
                CrashPlan::default(),
                &AtomicU64::new(0),
                &cancel,
                &mut |_| {
                    count += 1;
                    if count == CHUNK_SIZE {
                        cancel.store(true, Ordering::Relaxed);
                    }
                },
            )
            .unwrap();
            assert!(!outcome.complete);
            assert!(outcome.stats.computed >= u64::from(CHUNK_SIZE));
        }

        // Resume with a *fresh cache* so resumed chunks provably come
        // from the journal, not recomputation or cache hits.
        let empty_cache = Cache::open(&dir.join("cache2")).unwrap();
        let mut journal = Journal::open(&journal_path, job.job_hash).unwrap();
        let mut order = Vec::new();
        let resumed = run(
            &job,
            &mut journal,
            &empty_cache,
            4,
            CrashPlan::default(),
            &AtomicU64::new(0),
            &AtomicBool::new(false),
            &mut |t| order.push(t.index),
        )
        .unwrap();
        assert!(resumed.complete);
        assert!(resumed.stats.resumed_chunks >= 1);
        assert_eq!(order, (0..20).collect::<Vec<u32>>());

        let (fresh, _) = run_fresh(&temp_dir("resume-ref"), 4);
        assert_eq!(resumed.trials, fresh.trials);
        assert_eq!(resumed.aggregate, fresh.aggregate);
    }

    #[test]
    fn second_run_hits_cache_with_identical_results() {
        let dir = temp_dir("cache-hit");
        let job = job();
        let cache = Cache::open(&dir.join("cache")).unwrap();

        let mut journal = Journal::open(&dir.join("a.journal"), job.job_hash).unwrap();
        let first = run(
            &job,
            &mut journal,
            &cache,
            4,
            CrashPlan::default(),
            &AtomicU64::new(0),
            &AtomicBool::new(false),
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(first.stats.cache_hits, 0);

        // Same scenario, fresh journal: every trial answered from cache.
        let mut journal = Journal::open(&dir.join("b.journal"), job.job_hash).unwrap();
        let second = run(
            &job,
            &mut journal,
            &cache,
            4,
            CrashPlan::default(),
            &AtomicU64::new(0),
            &AtomicBool::new(false),
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(second.stats.cache_hits, 20);
        assert_eq!(second.stats.computed, 0);
        assert_eq!(second.trials, first.trials);
        assert_eq!(second.aggregate, first.aggregate);
    }

    #[test]
    fn inapplicable_jobs_complete_with_zero_trials() {
        let dir = temp_dir("empty");
        let spec = JobSpec {
            topology: tta_sim::Topology::Bus,
            ..JobSpec::new(ScenarioSource::Builtin(Scenario::CouplerReplay))
        };
        let job = ResolvedJob::resolve(spec, Path::new(".")).unwrap();
        let mut journal = Journal::open(&dir.join("j.journal"), job.job_hash).unwrap();
        let cache = Cache::open(&dir.join("cache")).unwrap();
        let outcome = run(
            &job,
            &mut journal,
            &cache,
            4,
            CrashPlan::default(),
            &AtomicU64::new(0),
            &AtomicBool::new(false),
            &mut |_| {},
        )
        .unwrap();
        assert!(outcome.complete);
        assert!(outcome.trials.is_empty());
        assert_eq!(outcome.aggregate.trials, 0);
    }
}
