//! The append-only chunk journal: crash-safe checkpoints of completed
//! work.
//!
//! One journal file per job, named by the job hash, holding one line
//! per completed chunk of trials. Each line carries its own FNV
//! checksum, so a journal torn mid-write by a crash (the whole point of
//! having one) degrades cleanly: on reopen, the valid prefix is kept,
//! the torn tail is truncated away, and at most one chunk of work is
//! redone. Nothing in the file is ever rewritten — resumption is "read
//! the prefix, skip those chunks".
//!
//! Format (NDJSON):
//!
//! ```text
//! {"journal":"tta-campaignd","job":"<16-hex>","chunk_size":8,"check":"<16-hex>"}
//! {"chunk":0,"trials":[{"index":0,...},...],"check":"<16-hex>"}
//! {"chunk":3,"trials":[...],"check":"<16-hex>"}
//! ```
//!
//! Chunks appear in *completion* order, not index order — workers claim
//! chunks dynamically. The checksum of each line is the FNV-1a hash of
//! the line's canonical rendering without its `check` field.

use crate::hash::{fnv1a64, to_hex};
use crate::json::Json;
use crate::runner::TrialVerdict;
use crate::spec::{verdict_from_json, verdict_to_fields};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::Path;

/// Trials per journaled chunk. Fixed (not tunable per job) so that a
/// sweep resumed under a different worker count still partitions
/// identically and every journaled chunk stays valid.
pub const CHUNK_SIZE: u32 = 8;

/// One completed chunk: `CHUNK_SIZE` consecutive trial verdicts (the
/// last chunk of a job may be shorter), in trial-index order. A
/// quarantined trial journals as a verdict like any other — resumption
/// replays it instead of re-running the poisoned simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRecord {
    /// Chunk index; covers trials `chunk * CHUNK_SIZE ..`.
    pub chunk: u32,
    /// The chunk's trial verdicts, in index order.
    pub trials: Vec<TrialVerdict>,
}

impl ChunkRecord {
    fn to_line(&self) -> String {
        let body = Json::Obj(vec![
            ("chunk".to_string(), Json::UInt(u64::from(self.chunk))),
            (
                "trials".to_string(),
                Json::Arr(
                    self.trials
                        .iter()
                        .map(|v| Json::Obj(verdict_to_fields(v)))
                        .collect(),
                ),
            ),
        ]);
        seal(body)
    }

    fn from_value(value: &Json) -> Option<ChunkRecord> {
        let chunk = u32::try_from(value.get("chunk")?.as_u64()?).ok()?;
        let trials = value
            .get("trials")?
            .as_arr()?
            .iter()
            .map(|t| verdict_from_json(t).ok())
            .collect::<Option<Vec<_>>>()?;
        Some(ChunkRecord { chunk, trials })
    }
}

/// Appends a `check` field (FNV of the rendering so far) and renders.
/// Shared with the result cache, whose shard files use the same
/// self-checking line format.
pub(crate) fn seal(body: Json) -> String {
    let partial = body.render();
    let check = to_hex(fnv1a64(partial.as_bytes()));
    match body {
        Json::Obj(mut fields) => {
            fields.push(("check".to_string(), Json::str(check)));
            Json::Obj(fields).render()
        }
        _ => unreachable!("journal lines are objects"),
    }
}

/// Verifies and strips a line's `check` field; returns the body.
pub(crate) fn unseal(line: &str) -> Option<Json> {
    let value = Json::parse(line).ok()?;
    let Json::Obj(fields) = value else {
        return None;
    };
    let (body_fields, check): (Vec<_>, Vec<_>) =
        fields.into_iter().partition(|(key, _)| key != "check");
    let claimed = check.first()?.1.as_str()?.to_string();
    let body = Json::Obj(body_fields);
    if to_hex(fnv1a64(body.render().as_bytes())) == claimed {
        Some(body)
    } else {
        None
    }
}

/// An open, append-position journal for one job.
#[derive(Debug)]
pub struct Journal {
    file: File,
    /// Chunks recovered from the valid prefix at open time.
    recovered: BTreeMap<u32, Vec<TrialVerdict>>,
}

impl Journal {
    /// Opens (or creates) the journal for `job_hash` at `path`.
    ///
    /// An existing file is scanned line by line; scanning stops at the
    /// first line that fails to parse or checksum (a torn tail), and
    /// the file is truncated back to the valid prefix. A file whose
    /// header names a different job or chunk size is discarded
    /// entirely — it belongs to a different sweep definition.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors. A *corrupt* journal is not an
    /// error — corruption means less resumable work, never a failed
    /// open.
    pub fn open(path: &Path, job_hash: u64) -> std::io::Result<Journal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;

        let mut recovered = BTreeMap::new();
        let mut valid_len: u64 = 0;
        {
            let mut reader = BufReader::new(&mut file);
            let mut line = String::new();
            let mut header_seen = false;
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 || !line.ends_with('\n') {
                    break; // EOF or a torn (newline-less) tail.
                }
                let Some(body) = unseal(line.trim_end()) else {
                    break;
                };
                if !header_seen {
                    let job_ok =
                        body.get("job").and_then(Json::as_str) == Some(to_hex(job_hash).as_str());
                    let size_ok = body.get("chunk_size").and_then(Json::as_u64)
                        == Some(u64::from(CHUNK_SIZE));
                    if !job_ok || !size_ok {
                        break; // Different sweep: keep nothing.
                    }
                    header_seen = true;
                } else {
                    let Some(record) = ChunkRecord::from_value(&body) else {
                        break;
                    };
                    recovered.insert(record.chunk, record.trials);
                }
                valid_len += n as u64;
            }
        }

        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        let mut journal = Journal { file, recovered };
        if valid_len == 0 {
            let header = seal(Json::Obj(vec![
                ("journal".to_string(), Json::str("tta-campaignd")),
                ("job".to_string(), Json::str(to_hex(job_hash))),
                ("chunk_size".to_string(), Json::UInt(u64::from(CHUNK_SIZE))),
            ]));
            journal.write_line(&header)?;
        }
        Ok(journal)
    }

    /// Chunks recovered at open time, keyed by chunk index. Consumed by
    /// the runner to pre-seed its result stream.
    #[must_use]
    pub fn recovered(&self) -> &BTreeMap<u32, Vec<TrialVerdict>> {
        &self.recovered
    }

    /// Takes the recovered chunks out of the journal.
    pub fn take_recovered(&mut self) -> BTreeMap<u32, Vec<TrialVerdict>> {
        std::mem::take(&mut self.recovered)
    }

    /// Appends one completed chunk and syncs it to disk before
    /// returning — once `append` returns, a crash cannot lose the
    /// chunk.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, record: &ChunkRecord) -> std::io::Result<()> {
        let line = record.to_line();
        self.write_line(&line)
    }

    fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{QuarantineReason, QuarantinedTrial};
    use tta_sim::{Outcome, RecoveryOutcome, TrialResult};

    fn trial(index: u32) -> TrialVerdict {
        TrialVerdict::Completed(TrialResult {
            index,
            seed: u64::from(index) * 977,
            outcome: Outcome::Contained,
            recovery: RecoveryOutcome::Recovered,
            unavailability: f64::from(index) / 7.0,
            time_to_reintegration: if index.is_multiple_of(2) {
                Some(u64::from(index))
            } else {
                None
            },
        })
    }

    fn record(chunk: u32) -> ChunkRecord {
        let start = chunk * CHUNK_SIZE;
        ChunkRecord {
            chunk,
            trials: (start..start + CHUNK_SIZE).map(trial).collect(),
        }
    }

    #[test]
    fn quarantined_verdicts_round_trip() {
        let path = temp_path("quarantine");
        let _ = std::fs::remove_file(&path);
        let mut trials: Vec<TrialVerdict> = (0..CHUNK_SIZE).map(trial).collect();
        trials[3] = TrialVerdict::Quarantined(QuarantinedTrial {
            index: 3,
            seed: 3 * 977,
            reason: QuarantineReason::Panic,
        });
        trials[5] = TrialVerdict::Quarantined(QuarantinedTrial {
            index: 5,
            seed: 5 * 977,
            reason: QuarantineReason::Timeout,
        });
        let record = ChunkRecord { chunk: 0, trials };
        {
            let mut journal = Journal::open(&path, 0xBEEF).unwrap();
            journal.append(&record).unwrap();
        }
        let journal = Journal::open(&path, 0xBEEF).unwrap();
        assert_eq!(journal.recovered()[&0], record.trials);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("campaignd-journal-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("job.journal")
    }

    #[test]
    fn journal_round_trips_chunks() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 0xABCD).unwrap();
            assert!(journal.recovered().is_empty());
            journal.append(&record(2)).unwrap();
            journal.append(&record(0)).unwrap();
        }
        let journal = Journal::open(&path, 0xABCD).unwrap();
        let recovered = journal.recovered();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[&0], record(0).trials);
        assert_eq!(recovered[&2], record(2).trials);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 7).unwrap();
            journal.append(&record(0)).unwrap();
            journal.append(&record(1)).unwrap();
        }
        // Simulate a crash mid-append: a truncated final line.
        let mut bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len();
        bytes.extend_from_slice(b"{\"chunk\":2,\"trials\":[{\"ind");
        std::fs::write(&path, &bytes).unwrap();

        let mut journal = Journal::open(&path, 7).unwrap();
        assert_eq!(journal.recovered().len(), 2);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep as u64);
        // The truncated journal accepts new appends cleanly.
        journal.append(&record(2)).unwrap();
        drop(journal);
        let journal = Journal::open(&path, 7).unwrap();
        assert_eq!(journal.recovered().len(), 3);
    }

    #[test]
    fn corrupted_line_stops_recovery_at_the_valid_prefix() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 9).unwrap();
            journal.append(&record(0)).unwrap();
            journal.append(&record(1)).unwrap();
            journal.append(&record(2)).unwrap();
        }
        // Flip a byte inside the *second* chunk line's payload.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut bad = lines.clone();
        let tampered = lines[2].replace("\"chunk\":1", "\"chunk\":5");
        bad[2] = &tampered;
        std::fs::write(&path, format!("{}\n", bad.join("\n"))).unwrap();

        let journal = Journal::open(&path, 9).unwrap();
        // Only the chunk before the tampered line survives.
        assert_eq!(
            journal.recovered().keys().copied().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn header_mismatch_discards_the_file() {
        let path = temp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let mut journal = Journal::open(&path, 1).unwrap();
            journal.append(&record(0)).unwrap();
        }
        // Same path, different job hash (e.g. the scenario file was
        // edited): nothing may be resumed.
        let journal = Journal::open(&path, 2).unwrap();
        assert!(journal.recovered().is_empty());
    }
}
