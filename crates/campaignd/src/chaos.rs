//! Deterministic failure injection for the campaign service itself.
//!
//! The paper's thesis is that centralizing a function concentrates its
//! failure modes; `tta-campaignd` centralizes campaign execution, so it
//! gets the same treatment we give the modeled cluster: injected
//! faults, and a proof that the recovery machinery masks them. A
//! [`ChaosPlan`] describes *which* failures to inject — worker panics,
//! trial delays past the supervision deadline, connection drops,
//! process kills — and every injection decision is a pure function of
//! the chaos seed and the trial's identity, never of wall-clock or
//! scheduling, so a chaos run is reproducible.
//!
//! The spec grammar (the daemon's `--chaos` flag) is a comma-separated
//! key=value list:
//!
//! ```text
//! panic=0.1,timeout=12,drop=10,kill=3,poison=5,hang=7,seed=42
//! ```
//!
//! * `panic=P`   — each trial's *first* attempt panics with probability
//!   P (hashed from the chaos seed and the trial seed); retries never
//!   re-panic, so a bounded retry budget fully masks these.
//! * `timeout=I` — trial I's first attempt stalls past the supervision
//!   deadline; the chunk lease expires and a healthy worker re-runs it.
//! * `drop=N`    — the daemon severs the submit connection after
//!   streaming N trial lines (once per process); a resilient client
//!   reconnects and resumes.
//! * `kill=N`    — the daemon aborts after N journal appends (the
//!   kill-at-random-chunk hook; same stand-in as
//!   `--crash-after-chunks`).
//! * `poison=I`  — trial I panics on *every* attempt: the retry budget
//!   burns out and the trial is deterministically quarantined.
//! * `hang=I`    — trial I stalls past the deadline on every attempt:
//!   the timeout budget burns out and the trial is quarantined.
//! * `seed=S`    — the injection seed (decimal or 0x hex).

use crate::spec::SpecError;

/// SplitMix64 finalizer — same decorrelator as trial-seed derivation.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A parsed chaos specification. `ChaosPlan::default()` injects
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosPlan {
    /// Probability that a trial's first attempt panics.
    pub panic_p: f64,
    /// Trial whose first attempt stalls past the deadline.
    pub timeout_trial: Option<u32>,
    /// Sever the submit connection after this many streamed trial
    /// lines (once per daemon process).
    pub drop_after: Option<u64>,
    /// Abort the process after this many journal appends.
    pub kill_after_chunks: Option<u64>,
    /// Trial that panics on every attempt (deterministic quarantine).
    pub poison_trial: Option<u32>,
    /// Trial that stalls on every attempt (timeout quarantine).
    pub hang_trial: Option<u32>,
    /// Injection seed.
    pub seed: u64,
}

impl ChaosPlan {
    /// Parses the `--chaos` spec grammar.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the malformed key or value.
    pub fn parse(spec: &str) -> Result<ChaosPlan, SpecError> {
        let mut plan = ChaosPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| SpecError(format!("chaos: `{part}` is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            let int = || -> Result<u64, SpecError> {
                value
                    .strip_prefix("0x")
                    .map_or_else(
                        || value.parse().ok(),
                        |hex| u64::from_str_radix(hex, 16).ok(),
                    )
                    .ok_or_else(|| {
                        SpecError(format!("chaos: `{key}` needs an integer, got `{value}`"))
                    })
            };
            let trial = || -> Result<u32, SpecError> {
                int().and_then(|v| {
                    u32::try_from(v)
                        .map_err(|_| SpecError(format!("chaos: `{key}` trial index too large")))
                })
            };
            match key {
                "panic" => {
                    let p: f64 = value.parse().map_err(|_| {
                        SpecError(format!("chaos: `panic` needs a probability, got `{value}`"))
                    })?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(SpecError("chaos: `panic` must be in [0, 1]".to_string()));
                    }
                    plan.panic_p = p;
                }
                "timeout" => plan.timeout_trial = Some(trial()?),
                "drop" => plan.drop_after = Some(int()?),
                "kill" => plan.kill_after_chunks = Some(int()?),
                "poison" => plan.poison_trial = Some(trial()?),
                "hang" => plan.hang_trial = Some(trial()?),
                "seed" => plan.seed = int()?,
                other => return Err(SpecError(format!("chaos: unknown key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Whether this plan injects anything at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        *self != ChaosPlan::default()
    }

    /// Whether attempt `attempt` of the trial with `trial_seed` at
    /// `index` must panic. Pure: depends only on the plan and the
    /// trial's identity, so every run makes the same decisions.
    #[must_use]
    pub fn injects_panic(&self, index: u32, trial_seed: u64, attempt: u32) -> bool {
        if self.poison_trial == Some(index) {
            return true;
        }
        if attempt > 0 || self.panic_p <= 0.0 {
            return false;
        }
        // Map the hash to [0, 1) and compare against p.
        let h = mix(self.seed ^ mix(trial_seed) ^ 0x9E37_79B9_7F4A_7C15);
        ((h >> 11) as f64) / ((1u64 << 53) as f64) < self.panic_p
    }

    /// Whether attempt `attempt` of trial `index` must stall past the
    /// supervision deadline.
    #[must_use]
    pub fn injects_stall(&self, index: u32, attempt: u32) -> bool {
        if self.hang_trial == Some(index) {
            return true;
        }
        self.timeout_trial == Some(index) && attempt == 0
    }
}

impl std::fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut parts = Vec::new();
        if self.panic_p > 0.0 {
            parts.push(format!("panic={}", self.panic_p));
        }
        if let Some(t) = self.timeout_trial {
            parts.push(format!("timeout={t}"));
        }
        if let Some(n) = self.drop_after {
            parts.push(format!("drop={n}"));
        }
        if let Some(n) = self.kill_after_chunks {
            parts.push(format!("kill={n}"));
        }
        if let Some(t) = self.poison_trial {
            parts.push(format!("poison={t}"));
        }
        if let Some(t) = self.hang_trial {
            parts.push(format!("hang={t}"));
        }
        parts.push(format!("seed={}", self.seed));
        f.write_str(&parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_grammar_parses() {
        let plan =
            ChaosPlan::parse("panic=0.25,timeout=12,drop=10,kill=3,poison=5,hang=7,seed=0x2a")
                .unwrap();
        assert_eq!(plan.panic_p, 0.25);
        assert_eq!(plan.timeout_trial, Some(12));
        assert_eq!(plan.drop_after, Some(10));
        assert_eq!(plan.kill_after_chunks, Some(3));
        assert_eq!(plan.poison_trial, Some(5));
        assert_eq!(plan.hang_trial, Some(7));
        assert_eq!(plan.seed, 42);
        assert!(plan.is_active());
        assert!(!ChaosPlan::default().is_active());
    }

    #[test]
    fn malformed_specs_name_the_problem() {
        assert!(ChaosPlan::parse("panic").is_err());
        assert!(ChaosPlan::parse("panic=2.0").is_err());
        assert!(ChaosPlan::parse("drop=x").is_err());
        assert!(ChaosPlan::parse("nope=1").is_err());
    }

    #[test]
    fn panic_injection_is_deterministic_and_first_attempt_only() {
        let plan = ChaosPlan::parse("panic=0.5,seed=7").unwrap();
        let mut hits = 0;
        for seed in 0..200u64 {
            let first = plan.injects_panic(0, seed, 0);
            assert_eq!(first, plan.injects_panic(0, seed, 0), "must be stable");
            assert!(!plan.injects_panic(0, seed, 1), "retries never re-panic");
            if first {
                hits += 1;
            }
        }
        assert!((50..150).contains(&hits), "p=0.5 over 200 seeds: {hits}");
    }

    #[test]
    fn poison_and_hang_persist_across_attempts() {
        let plan = ChaosPlan::parse("poison=3,hang=4").unwrap();
        for attempt in 0..5 {
            assert!(plan.injects_panic(3, 99, attempt));
            assert!(plan.injects_stall(4, attempt));
        }
        assert!(!plan.injects_panic(2, 99, 0));
        assert!(!plan.injects_stall(5, 0));
        // A plain timeout only stalls the first attempt.
        let plan = ChaosPlan::parse("timeout=6").unwrap();
        assert!(plan.injects_stall(6, 0));
        assert!(!plan.injects_stall(6, 1));
    }
}
