//! The client side: one connection per request, typed results.
//!
//! [`Client::submit`] exposes the stream split that the whole
//! kill-and-resume story rests on: every **deterministic** line
//! (`accepted`, `trial`, `summary`) is handed verbatim to the caller's
//! observer — that text is the byte-comparable artifact — while the
//! trailing non-deterministic `stats` line is returned out-of-band in
//! the typed result, never mixed into the observed stream.

use crate::json::Json;
use crate::protocol::{
    evaluation_from_json, render_eval, render_submit, stats_from_json, EvalRequest,
};
use crate::runner::RunStats;
use crate::spec::{aggregate_from_json, trial_from_json, JobSpec};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tta_sim::{PlanRunMetrics, TrialAggregate, TrialResult};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The daemon answered with an `error` line.
    Daemon(String),
    /// The daemon's response violated the protocol (including a stream
    /// that ended before its summary — a daemon killed mid-sweep).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Daemon(m) => write!(f, "daemon error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn proto(message: impl Into<String>) -> ClientError {
    ClientError::Protocol(message.into())
}

/// A completed submit stream, parsed.
#[derive(Debug)]
pub struct SubmitResult {
    /// The job id (hex job hash) the daemon accepted.
    pub job: String,
    /// Trial count the daemon committed to.
    pub total: u32,
    /// Every trial, in index order.
    pub trials: Vec<TrialResult>,
    /// The summary fold.
    pub aggregate: TrialAggregate,
    /// The non-deterministic stats line.
    pub stats: RunStats,
}

/// One daemon's status line, parsed.
#[derive(Debug, Clone, Copy)]
pub struct StatusInfo {
    /// Entries in the daemon's result cache.
    pub cache_entries: u64,
    /// Jobs currently streaming.
    pub jobs_running: u64,
    /// Jobs completed since the daemon started.
    pub jobs_done: u64,
}

/// A campaign-service client bound to one socket path.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
}

impl Client {
    /// A client for the daemon at `socket`.
    #[must_use]
    pub fn new(socket: &Path) -> Client {
        Client {
            socket: socket.to_path_buf(),
        }
    }

    /// The socket this client talks to.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    fn request(&self, line: &str) -> Result<BufReader<UnixStream>, ClientError> {
        let mut stream = UnixStream::connect(&self.socket)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        Ok(BufReader::new(stream))
    }

    fn one_line(&self, request_line: &str) -> Result<Json, ClientError> {
        let mut reader = self.request(request_line)?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(proto("daemon closed the connection without answering"));
        }
        let value =
            Json::parse(line.trim_end()).map_err(|e| proto(format!("bad response: {e}")))?;
        if value.get("type").and_then(Json::as_str) == Some("error") {
            let message = value
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string();
            return Err(ClientError::Daemon(message));
        }
        Ok(value)
    }

    /// Whether a daemon answers on the socket right now.
    #[must_use]
    pub fn ping(&self) -> bool {
        matches!(
            self.one_line("{\"op\":\"ping\"}"),
            Ok(v) if v.get("type").and_then(Json::as_str) == Some("ok")
        )
    }

    /// Polls `ping` until the daemon answers or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError::Io`] timeout if the daemon never came
    /// up.
    pub fn wait_ready(&self, timeout: Duration) -> Result<(), ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.ping() {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("no daemon on {} within {timeout:?}", self.socket.display()),
                )));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.one_line("{\"op\":\"shutdown\"}").map(|_| ())
    }

    /// Fetches the daemon's status line.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn status(&self) -> Result<StatusInfo, ClientError> {
        let value = self.one_line("{\"op\":\"status\"}")?;
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| proto(format!("status response missing \"{key}\"")))
        };
        Ok(StatusInfo {
            cache_entries: field("cache_entries")?,
            jobs_running: field("jobs_running")?,
            jobs_done: field("jobs_done")?,
        })
    }

    /// Evaluates one fault plan on the daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket, daemon and protocol failures.
    pub fn eval(&self, request: &EvalRequest) -> Result<PlanRunMetrics, ClientError> {
        let value = self.one_line(&render_eval(request))?;
        evaluation_from_json(&value).map_err(|e| proto(e.0))
    }

    /// Submits a job and consumes its stream. `observe` sees each
    /// deterministic line (`accepted`, `trial`, `summary`) verbatim, in
    /// order — write them to a file and you have the byte-comparable
    /// campaign NDJSON. The `stats` line goes into the result instead.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] for an `error` line;
    /// [`ClientError::Protocol`] if the stream ends before its summary
    /// (daemon killed mid-sweep — resubmit after restart to resume).
    pub fn submit(
        &self,
        spec: &JobSpec,
        workers: Option<usize>,
        observe: &mut dyn FnMut(&str),
    ) -> Result<SubmitResult, ClientError> {
        let mut reader = self.request(&render_submit(spec, workers))?;
        let mut line = String::new();
        let mut job: Option<(String, u32)> = None;
        let mut trials: Vec<TrialResult> = Vec::new();
        let mut summary: Option<TrialAggregate> = None;
        let mut stats: Option<RunStats> = None;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let text = line.trim_end();
            let value = Json::parse(text).map_err(|e| proto(format!("bad stream line: {e}")))?;
            match value.get("type").and_then(Json::as_str) {
                Some("error") => {
                    return Err(ClientError::Daemon(
                        value
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified")
                            .to_string(),
                    ));
                }
                Some("accepted") => {
                    let id = value
                        .get("job")
                        .and_then(Json::as_str)
                        .ok_or_else(|| proto("accepted line missing \"job\""))?;
                    let total = value
                        .get("trials")
                        .and_then(Json::as_u64)
                        .and_then(|t| u32::try_from(t).ok())
                        .ok_or_else(|| proto("accepted line missing \"trials\""))?;
                    job = Some((id.to_string(), total));
                    observe(text);
                }
                Some("trial") => {
                    trials.push(trial_from_json(&value).map_err(|e| proto(e.0))?);
                    observe(text);
                }
                Some("summary") => {
                    let aggregate = value
                        .get("aggregate")
                        .ok_or_else(|| proto("summary line missing \"aggregate\""))
                        .and_then(|a| aggregate_from_json(a).map_err(|e| proto(e.0)))?;
                    summary = Some(aggregate);
                    observe(text);
                }
                Some("stats") => {
                    stats = Some(stats_from_json(&value).map_err(|e| proto(e.0))?);
                }
                other => {
                    return Err(proto(format!("unexpected stream line type {other:?}")));
                }
            }
        }
        let (job, total) = job.ok_or_else(|| proto("stream ended before an accepted line"))?;
        let aggregate = summary.ok_or_else(|| {
            proto(format!(
                "stream ended after {}/{total} trials without a summary \
                 (daemon gone mid-sweep; resubmit to resume)",
                trials.len()
            ))
        })?;
        Ok(SubmitResult {
            job,
            total,
            trials,
            aggregate,
            stats: stats.unwrap_or_default(),
        })
    }
}
