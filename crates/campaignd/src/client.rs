//! The client side: one connection per request, typed results.
//!
//! [`Client::submit`] exposes the stream split that the whole
//! kill-and-resume story rests on: every **deterministic** line
//! (`accepted`, `trial`, `summary`) is handed verbatim to the caller's
//! observer — that text is the byte-comparable artifact — while the
//! trailing non-deterministic `stats` line is returned out-of-band in
//! the typed result, never mixed into the observed stream.
//!
//! [`Client::submit_resilient`] layers reconnect-with-resume on top:
//! when the connection dies mid-stream (daemon killed, connection
//! dropped) or the daemon reports a *retryable* condition (duplicate
//! in-flight job, draining), it backs off with exponential delay plus
//! bounded deterministic jitter, resubmits, and silently skips the
//! already-observed prefix of the resumed stream. That skip is sound
//! precisely because of the determinism invariant — a resumed stream's
//! first N deterministic lines are byte-identical to the first N lines
//! of any other run of the same job — and idempotent because finished
//! work is journaled and cached, not recomputed.

use crate::json::Json;
use crate::protocol::{
    evaluation_from_json, jobs_from_status, render_eval, render_submit, stats_from_json,
    EvalRequest, JobStatus,
};
use crate::runner::{QuarantinedTrial, RunStats, TrialVerdict};
use crate::spec::{aggregate_from_json, verdict_from_json, JobSpec};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tta_sim::{PlanRunMetrics, TrialAggregate, TrialResult};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The daemon answered with an `error` line. `retryable` mirrors
    /// the line's flag: true for transient conditions (duplicate
    /// in-flight job, draining daemon) a resilient client should retry.
    Daemon {
        /// The daemon's error message.
        message: String,
        /// Whether the daemon marked the condition retryable.
        retryable: bool,
    },
    /// The daemon's response violated the protocol (including a stream
    /// that ended before its summary — a daemon killed mid-sweep).
    Protocol(String),
}

impl ClientError {
    fn daemon(value: &Json) -> ClientError {
        ClientError::Daemon {
            message: value
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_string(),
            retryable: value.get("retryable").and_then(Json::as_bool) == Some(true),
        }
    }

    /// Whether retrying (reconnect + resubmit) can plausibly succeed:
    /// socket failures and truncated streams always can (a fresh or
    /// restarted daemon resumes from the journal); daemon errors only
    /// when flagged retryable.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Protocol(_) => true,
            ClientError::Daemon { retryable, .. } => *retryable,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Daemon { message, .. } => write!(f, "daemon error: {message}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn proto(message: impl Into<String>) -> ClientError {
    ClientError::Protocol(message.into())
}

/// A completed submit stream, parsed.
#[derive(Debug)]
pub struct SubmitResult {
    /// The job id (hex job hash) the daemon accepted.
    pub job: String,
    /// Trial count the daemon committed to.
    pub total: u32,
    /// Every completed trial, in index order.
    pub trials: Vec<TrialResult>,
    /// Trials the daemon quarantined (retry budget exhausted), in index
    /// order. Deterministic — the same job quarantines the same trials.
    pub quarantined: Vec<QuarantinedTrial>,
    /// The summary fold.
    pub aggregate: TrialAggregate,
    /// The non-deterministic stats line.
    pub stats: RunStats,
}

/// One daemon's status line, parsed.
#[derive(Debug, Clone)]
pub struct StatusInfo {
    /// Entries in the daemon's result cache.
    pub cache_entries: u64,
    /// Jobs currently streaming.
    pub jobs_running: u64,
    /// Jobs completed since the daemon started.
    pub jobs_done: u64,
    /// Whether the daemon is draining (finishing leased work, refusing
    /// new jobs). False when talking to an older daemon.
    pub draining: bool,
    /// Per-job progress detail. Empty when talking to an older daemon.
    pub jobs: Vec<JobStatus>,
}

/// Reconnect-with-resume policy for [`Client::submit_resilient`]:
/// exponential backoff with bounded, *deterministic* jitter (hashed
/// from `seed` and the attempt number — no wall-clock randomness, so a
/// test run's retry timing is reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Submission attempts (initial + retries) before giving up.
    pub max_attempts: u32,
    /// Base backoff before the first retry (doubles per retry).
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 6,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

impl ReconnectPolicy {
    /// The delay before retry number `attempt` (1-based): exponential,
    /// capped, with ±25% deterministic jitter.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.cap).as_nanos() as u64;
        // SplitMix64 finalizer over (seed, attempt): stable jitter.
        let mut z = self.seed ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Scale into [0.75, 1.25).
        let jittered = capped / 1000 * (750 + z % 500);
        Duration::from_nanos(jittered.max(1))
    }
}

/// A campaign-service client bound to one socket path.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
}

impl Client {
    /// A client for the daemon at `socket`.
    #[must_use]
    pub fn new(socket: &Path) -> Client {
        Client {
            socket: socket.to_path_buf(),
        }
    }

    /// The socket this client talks to.
    #[must_use]
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    fn request(&self, line: &str) -> Result<BufReader<UnixStream>, ClientError> {
        let mut stream = UnixStream::connect(&self.socket)?;
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        Ok(BufReader::new(stream))
    }

    fn one_line(&self, request_line: &str) -> Result<Json, ClientError> {
        let mut reader = self.request(request_line)?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(proto("daemon closed the connection without answering"));
        }
        let value =
            Json::parse(line.trim_end()).map_err(|e| proto(format!("bad response: {e}")))?;
        if value.get("type").and_then(Json::as_str) == Some("error") {
            return Err(ClientError::daemon(&value));
        }
        Ok(value)
    }

    /// Whether a daemon answers on the socket right now.
    #[must_use]
    pub fn ping(&self) -> bool {
        matches!(
            self.one_line("{\"op\":\"ping\"}"),
            Ok(v) if v.get("type").and_then(Json::as_str) == Some("ok")
        )
    }

    /// Polls `ping` until the daemon answers or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns a [`ClientError::Io`] timeout if the daemon never came
    /// up.
    pub fn wait_ready(&self, timeout: Duration) -> Result<(), ClientError> {
        // detlint: allow(DL02) reason=client-side startup timeout; decides only when to stop waiting for the daemon, never a trial result
        let deadline = Instant::now() + timeout;
        loop {
            if self.ping() {
                return Ok(());
            }
            // detlint: allow(DL02) reason=client-side startup timeout check, out-of-band
            if Instant::now() >= deadline {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("no daemon on {} within {timeout:?}", self.socket.display()),
                )));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        self.one_line("{\"op\":\"shutdown\"}").map(|_| ())
    }

    /// Asks the daemon to drain gracefully: finish leased chunks,
    /// checkpoint journals, refuse new jobs, exit when idle.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn drain(&self) -> Result<(), ClientError> {
        self.one_line("{\"op\":\"drain\"}").map(|_| ())
    }

    /// Fetches the daemon's status line.
    ///
    /// # Errors
    ///
    /// Propagates socket and protocol failures.
    pub fn status(&self) -> Result<StatusInfo, ClientError> {
        let value = self.one_line("{\"op\":\"status\"}")?;
        let field = |key: &str| {
            value
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| proto(format!("status response missing \"{key}\"")))
        };
        Ok(StatusInfo {
            cache_entries: field("cache_entries")?,
            jobs_running: field("jobs_running")?,
            jobs_done: field("jobs_done")?,
            draining: value.get("draining").and_then(Json::as_bool) == Some(true),
            jobs: jobs_from_status(&value),
        })
    }

    /// Evaluates one fault plan on the daemon.
    ///
    /// # Errors
    ///
    /// Propagates socket, daemon and protocol failures.
    pub fn eval(&self, request: &EvalRequest) -> Result<PlanRunMetrics, ClientError> {
        let value = self.one_line(&render_eval(request))?;
        evaluation_from_json(&value).map_err(|e| proto(e.0))
    }

    /// Submits a job and consumes its stream. `observe` sees each
    /// deterministic line (`accepted`, `trial`, `summary`) verbatim, in
    /// order — write them to a file and you have the byte-comparable
    /// campaign NDJSON. The `stats` line goes into the result instead.
    ///
    /// # Errors
    ///
    /// [`ClientError::Daemon`] for an `error` line;
    /// [`ClientError::Protocol`] if the stream ends before its summary
    /// (daemon killed mid-sweep — resubmit after restart to resume).
    pub fn submit(
        &self,
        spec: &JobSpec,
        workers: Option<usize>,
        observe: &mut dyn FnMut(&str),
    ) -> Result<SubmitResult, ClientError> {
        let mut reader = self.request(&render_submit(spec, workers))?;
        let mut line = String::new();
        let mut job: Option<(String, u32)> = None;
        let mut trials: Vec<TrialResult> = Vec::new();
        let mut quarantined: Vec<QuarantinedTrial> = Vec::new();
        let mut summary: Option<TrialAggregate> = None;
        let mut stats: Option<RunStats> = None;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                break;
            }
            let text = line.trim_end();
            let value = Json::parse(text).map_err(|e| proto(format!("bad stream line: {e}")))?;
            match value.get("type").and_then(Json::as_str) {
                Some("error") => {
                    return Err(ClientError::daemon(&value));
                }
                Some("accepted") => {
                    let id = value
                        .get("job")
                        .and_then(Json::as_str)
                        .ok_or_else(|| proto("accepted line missing \"job\""))?;
                    let total = value
                        .get("trials")
                        .and_then(Json::as_u64)
                        .and_then(|t| u32::try_from(t).ok())
                        .ok_or_else(|| proto("accepted line missing \"trials\""))?;
                    job = Some((id.to_string(), total));
                    observe(text);
                }
                Some("trial") => {
                    match verdict_from_json(&value).map_err(|e| proto(e.0))? {
                        TrialVerdict::Completed(trial) => trials.push(trial),
                        TrialVerdict::Quarantined(q) => quarantined.push(q),
                    }
                    observe(text);
                }
                Some("summary") => {
                    let aggregate = value
                        .get("aggregate")
                        .ok_or_else(|| proto("summary line missing \"aggregate\""))
                        .and_then(|a| aggregate_from_json(a).map_err(|e| proto(e.0)))?;
                    summary = Some(aggregate);
                    observe(text);
                }
                Some("stats") => {
                    stats = Some(stats_from_json(&value).map_err(|e| proto(e.0))?);
                }
                other => {
                    return Err(proto(format!("unexpected stream line type {other:?}")));
                }
            }
        }
        let (job, total) = job.ok_or_else(|| proto("stream ended before an accepted line"))?;
        let aggregate = summary.ok_or_else(|| {
            proto(format!(
                "stream ended after {}/{total} trials without a summary \
                 (daemon gone mid-sweep; resubmit to resume)",
                trials.len() + quarantined.len()
            ))
        })?;
        Ok(SubmitResult {
            job,
            total,
            trials,
            quarantined,
            aggregate,
            stats: stats.unwrap_or_default(),
        })
    }

    /// [`Client::submit`] with reconnect-with-resume: on a retryable
    /// failure (dead socket, truncated stream, draining or busy
    /// daemon), backs off per `policy`, resubmits, and resumes
    /// observation where it left off — `observe` sees every
    /// deterministic line exactly once, and the concatenation is
    /// byte-identical to an uninterrupted run's stream. Progress
    /// already journaled or cached by the daemon is never recomputed,
    /// which is what makes the resubmit idempotent.
    ///
    /// # Errors
    ///
    /// The last attempt's error once `policy.max_attempts` is
    /// exhausted, or the first non-retryable error.
    pub fn submit_resilient(
        &self,
        spec: &JobSpec,
        workers: Option<usize>,
        policy: &ReconnectPolicy,
        observe: &mut dyn FnMut(&str),
    ) -> Result<SubmitResult, ClientError> {
        // Deterministic lines already handed to `observe` across all
        // attempts; a resumed stream's identical prefix is skipped.
        let mut acked: u64 = 0;
        let mut attempt: u32 = 0;
        loop {
            let mut seen: u64 = 0;
            let result = self.submit(spec, workers, &mut |text| {
                seen += 1;
                if seen > acked {
                    observe(text);
                }
            });
            match result {
                Ok(result) => return Ok(result),
                Err(e) => {
                    acked = acked.max(seen);
                    attempt += 1;
                    if !e.is_retryable() || attempt >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(policy.backoff(attempt));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_jitters_deterministically() {
        let policy = ReconnectPolicy::default();
        let first = policy.backoff(1);
        let second = policy.backoff(2);
        assert_eq!(first, policy.backoff(1), "jitter must be deterministic");
        assert!(second > first, "{second:?} vs {first:?}");
        // ±25% around 50ms.
        assert!(first >= Duration::from_micros(37_500) && first < Duration::from_micros(62_500));
        // Far past the doubling horizon, the cap (+jitter) holds.
        let late = policy.backoff(30);
        assert!(late <= Duration::from_millis(2500), "{late:?}");
    }

    #[test]
    fn retryability_follows_the_error_kind() {
        assert!(ClientError::Io(std::io::Error::other("gone")).is_retryable());
        assert!(proto("stream ended").is_retryable());
        assert!(ClientError::Daemon {
            message: "draining".to_string(),
            retryable: true
        }
        .is_retryable());
        assert!(!ClientError::Daemon {
            message: "unknown scenario".to_string(),
            retryable: false
        }
        .is_retryable());
    }
}
