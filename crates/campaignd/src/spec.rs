//! Job specifications: the canonical description of one campaign sweep,
//! its content hashes, and the per-trial execution they drive.
//!
//! Two hashes with two scopes:
//!
//! * **`scenario_hash`** covers everything that determines a single
//!   trial's *simulation* except the restart policy and the trial seed —
//!   cluster shape, authority, scenario source (with the scenario
//!   *file's bytes* when the job references one), horizon and fault
//!   duration. The per-trial result-cache key is
//!   `fnv(scenario_hash ‖ policy ‖ trial_seed)`, so overlapping sweeps
//!   (an E10 re-run, a longer seed range, a policy grid over the same
//!   scenario) hit cache for every trial they share, and an edit to a
//!   referenced scenario file changes the hash and forces recompute.
//! * **`job_hash`** additionally covers the policy, the campaign seed
//!   and the trial count — it names the *sweep*, keys the checkpoint
//!   journal, and doubles as the job id on the wire. Resubmitting a
//!   byte-identical job resumes it; changing anything (including the
//!   scenario file's content) yields a fresh journal.

use crate::hash::{fnv1a64, to_hex};
use crate::json::Json;
use crate::runner::{QuarantineReason, QuarantinedTrial, TrialVerdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{
    Campaign, Outcome, RecoveryOutcome, Scenario, Topology, TrialAggregate, TrialResult,
};

/// A protocol-level error: malformed or inconsistent spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn bad(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// Where a job's fault scenario comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSource {
    /// One of the campaign layer's built-in randomized scenarios.
    Builtin(Scenario),
    /// A scenario DSL file (the conformance TOML subset); the job runs
    /// its fixed fault plan under randomized per-trial start delays.
    File(PathBuf),
}

/// One campaign sweep, as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Cluster size (ignored for file scenarios, which carry their own).
    pub nodes: usize,
    /// Interconnect topology (ignored for file scenarios).
    pub topology: Topology,
    /// Guardian authority (ignored for file scenarios).
    pub authority: CouplerAuthority,
    /// The fault scenario.
    pub scenario: ScenarioSource,
    /// The hosts' restart policy (overrides a file scenario's own).
    pub policy: RestartPolicy,
    /// Trial count.
    pub trials: u32,
    /// Per-trial horizon in slots (ignored for file scenarios).
    pub slots: u64,
    /// Campaign seed (per-trial seeds derive from it).
    pub seed: u64,
    /// Transient fault duration in slots (`None` = faults persist to
    /// the end of the run; ignored for file scenarios).
    pub fault_duration: Option<u64>,
}

impl JobSpec {
    /// A spec with the campaign layer's defaults for everything but the
    /// scenario.
    #[must_use]
    pub fn new(scenario: ScenarioSource) -> JobSpec {
        JobSpec {
            nodes: 4,
            topology: Topology::Star,
            authority: CouplerAuthority::SmallShifting,
            scenario,
            policy: RestartPolicy::Never,
            trials: 24,
            slots: 400,
            seed: 0xDB5_2004,
            fault_duration: None,
        }
    }

    /// The canonical wire form (field order fixed — this rendering is
    /// what the job hash covers).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let scenario = match &self.scenario {
            ScenarioSource::Builtin(s) => Json::str(scenario_token(*s)),
            ScenarioSource::File(path) => Json::Obj(vec![(
                "file".to_string(),
                Json::str(path.display().to_string()),
            )]),
        };
        Json::Obj(vec![
            ("nodes".to_string(), Json::UInt(self.nodes as u64)),
            (
                "topology".to_string(),
                Json::str(topology_token(self.topology)),
            ),
            (
                "authority".to_string(),
                Json::str(authority_token(self.authority)),
            ),
            ("scenario".to_string(), scenario),
            ("policy".to_string(), policy_to_json(self.policy)),
            ("trials".to_string(), Json::UInt(u64::from(self.trials))),
            ("slots".to_string(), Json::UInt(self.slots)),
            ("seed".to_string(), Json::UInt(self.seed)),
            (
                "fault_duration".to_string(),
                self.fault_duration.map_or(Json::Null, Json::UInt),
            ),
        ])
    }

    /// Parses the wire form. Missing optional fields take the campaign
    /// defaults; `scenario` is required.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field.
    pub fn from_json(value: &Json) -> Result<JobSpec, SpecError> {
        let scenario = match value.get("scenario") {
            None => return Err(bad("job spec needs a \"scenario\"")),
            Some(Json::Str(token)) => ScenarioSource::Builtin(parse_scenario(token)?),
            Some(obj @ Json::Obj(_)) => match obj.get("file").and_then(Json::as_str) {
                Some(path) => ScenarioSource::File(PathBuf::from(path)),
                None => return Err(bad("scenario object needs a \"file\" path")),
            },
            Some(_) => return Err(bad("\"scenario\" must be a name or {\"file\": path}")),
        };
        let mut spec = JobSpec::new(scenario);
        if let Some(v) = value.get("nodes") {
            let nodes = v
                .as_u64()
                .ok_or_else(|| bad("\"nodes\" must be an integer"))?;
            if !(2..=16).contains(&nodes) {
                return Err(bad("\"nodes\" must be in 2..=16"));
            }
            spec.nodes = nodes as usize;
        }
        if let Some(v) = value.get("topology") {
            let token = v
                .as_str()
                .ok_or_else(|| bad("\"topology\" must be a string"))?;
            spec.topology = parse_topology(token)?;
        }
        if let Some(v) = value.get("authority") {
            let token = v
                .as_str()
                .ok_or_else(|| bad("\"authority\" must be a string"))?;
            spec.authority = parse_authority(token)?;
        }
        if let Some(v) = value.get("policy") {
            spec.policy = policy_from_json(v)?;
        }
        if let Some(v) = value.get("trials") {
            let trials = v
                .as_u64()
                .ok_or_else(|| bad("\"trials\" must be an integer"))?;
            spec.trials = u32::try_from(trials).map_err(|_| bad("\"trials\" too large"))?;
        }
        if let Some(v) = value.get("slots") {
            spec.slots = v
                .as_u64()
                .ok_or_else(|| bad("\"slots\" must be an integer"))?;
        }
        if let Some(v) = value.get("seed") {
            spec.seed = v.as_u64().ok_or_else(|| bad("\"seed\" must be a u64"))?;
        }
        if let Some(v) = value.get("fault_duration") {
            spec.fault_duration = if v.is_null() {
                None
            } else {
                Some(
                    v.as_u64()
                        .ok_or_else(|| bad("\"fault_duration\" must be an integer or null"))?,
                )
            };
        }
        Ok(spec)
    }
}

/// A spec resolved against the filesystem: the referenced scenario file
/// (if any) has been read once and snapshotted, and both hashes are
/// fixed. All later work — journal naming, cache keys, trial execution —
/// uses this snapshot, so a concurrent edit to the file cannot tear a
/// running sweep.
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// The spec as submitted.
    pub spec: JobSpec,
    /// Content hash of everything but policy/seed/trials (cache scope).
    pub scenario_hash: u64,
    /// Content hash of the whole sweep (journal scope, wire job id).
    pub job_hash: u64,
    /// The executable form.
    pub exec: TrialExec,
}

impl ResolvedJob {
    /// Resolves a spec: loads and parses the scenario file when the job
    /// references one (relative paths resolve against `base_dir`),
    /// builds the trial executor, and derives both content hashes.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for unreadable/unparsable scenario files
    /// or out-of-range cluster sizes.
    pub fn resolve(spec: JobSpec, base_dir: &Path) -> Result<ResolvedJob, SpecError> {
        let (exec, file_fingerprint) = match &spec.scenario {
            ScenarioSource::Builtin(scenario) => {
                let campaign = Campaign::new(spec.nodes, spec.topology, spec.authority)
                    .trials(spec.trials)
                    .slots(spec.slots)
                    .seed(spec.seed)
                    .restart_policy(spec.policy);
                let campaign = match spec.fault_duration {
                    Some(d) => campaign.fault_duration(d),
                    None => campaign,
                };
                (
                    TrialExec::Builtin {
                        campaign,
                        scenario: *scenario,
                    },
                    None,
                )
            }
            ScenarioSource::File(path) => {
                let path = if path.is_absolute() {
                    path.clone()
                } else {
                    base_dir.join(path)
                };
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| bad(format!("cannot read scenario {}: {e}", path.display())))?;
                let parent = path.parent().unwrap_or(base_dir).to_path_buf();
                let scenario = tta_conformance::Scenario::parse(&text, &parent)
                    .map_err(|e| bad(format!("scenario {}: {e}", path.display())))?;
                let fingerprint = fnv1a64(text.as_bytes());
                (
                    TrialExec::File {
                        scenario: Box::new(scenario),
                        policy: spec.policy,
                        seed: spec.seed,
                        trials: spec.trials,
                    },
                    Some(fingerprint),
                )
            }
        };

        // The scenario-scope canonical string uses the *effective*
        // simulation parameters: for file jobs those come from the file,
        // so two specs that resolve to the same simulation share cache
        // regardless of what their ignored fields said.
        let scenario_part = match &exec {
            TrialExec::Builtin {
                campaign: _,
                scenario,
            } => Json::Obj(vec![
                ("nodes".to_string(), Json::UInt(spec.nodes as u64)),
                (
                    "topology".to_string(),
                    Json::str(topology_token(spec.topology)),
                ),
                (
                    "authority".to_string(),
                    Json::str(authority_token(spec.authority)),
                ),
                ("scenario".to_string(), Json::str(scenario_token(*scenario))),
                ("slots".to_string(), Json::UInt(spec.slots)),
                (
                    "fault_duration".to_string(),
                    spec.fault_duration.map_or(Json::Null, Json::UInt),
                ),
            ])
            .render(),
            TrialExec::File { scenario, .. } => Json::Obj(vec![
                ("nodes".to_string(), Json::UInt(scenario.nodes as u64)),
                (
                    "topology".to_string(),
                    Json::str(topology_token(scenario.topology)),
                ),
                (
                    "authority".to_string(),
                    Json::str(authority_token(scenario.authority)),
                ),
                (
                    "scenario_content".to_string(),
                    Json::str(to_hex(
                        file_fingerprint.expect("file job has a fingerprint"),
                    )),
                ),
                ("slots".to_string(), Json::UInt(scenario.slots)),
            ])
            .render(),
        };
        let scenario_hash = fnv1a64(scenario_part.as_bytes());

        let mut job_bytes = spec.to_json().render().into_bytes();
        job_bytes.push(b'|');
        job_bytes.extend_from_slice(&file_fingerprint.unwrap_or(0).to_le_bytes());
        let job_hash = fnv1a64(&job_bytes);

        Ok(ResolvedJob {
            spec,
            scenario_hash,
            job_hash,
            exec,
        })
    }

    /// The cache key of one trial: `fnv(scenario_hash ‖ policy ‖ seed)`.
    #[must_use]
    pub fn trial_key(&self, trial_seed: u64) -> u64 {
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(&self.scenario_hash.to_le_bytes());
        bytes.push(b'|');
        bytes.extend_from_slice(policy_to_json(self.spec.policy).render().as_bytes());
        bytes.push(b'|');
        bytes.extend_from_slice(&trial_seed.to_le_bytes());
        fnv1a64(&bytes)
    }

    /// The wire job id.
    #[must_use]
    pub fn job_id(&self) -> String {
        to_hex(self.job_hash)
    }
}

/// The executable form of a job: something that can run trial `i`.
#[derive(Debug, Clone)]
pub enum TrialExec {
    /// A built-in randomized campaign scenario.
    Builtin {
        /// The configured campaign (trial seeds derive from it).
        campaign: Campaign,
        /// The scenario to inject.
        scenario: Scenario,
    },
    /// A fixed fault plan from a scenario file, randomized per trial
    /// only in the nodes' start delays.
    File {
        /// The parsed scenario.
        scenario: Box<tta_conformance::Scenario>,
        /// Restart policy override (the sweep axis).
        policy: RestartPolicy,
        /// Campaign seed.
        seed: u64,
        /// Trial count.
        trials: u32,
    },
}

/// SplitMix64 finalizer — the same decorrelator the campaign layer
/// derives trial seeds with.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Scenario-tag for file-scenario seed derivation: one past the last
/// built-in [`Scenario`] discriminant, so file trials can never collide
/// with a built-in scenario's seed stream under the same campaign seed.
const FILE_SCENARIO_TAG: u64 = 8;

impl TrialExec {
    /// Trials this job will actually run: the requested count, or zero
    /// when the scenario is physically inapplicable (mirroring
    /// [`Campaign::run`]'s empty report for e.g. a replay on a bus).
    #[must_use]
    pub fn effective_trials(&self) -> u32 {
        match self {
            TrialExec::Builtin { campaign, scenario } => {
                if campaign.applicable(*scenario) {
                    self.requested_trials()
                } else {
                    0
                }
            }
            TrialExec::File { scenario, .. } => {
                if scenario.sim_applicable().is_ok() {
                    self.requested_trials()
                } else {
                    0
                }
            }
        }
    }

    fn requested_trials(&self) -> u32 {
        match self {
            TrialExec::Builtin { campaign, .. } => campaign.trial_count(),
            TrialExec::File { trials, .. } => *trials,
        }
    }

    /// The derived seed of trial `index`.
    #[must_use]
    pub fn trial_seed(&self, index: u32) -> u64 {
        match self {
            TrialExec::Builtin { campaign, scenario } => campaign.trial_seed(*scenario, index),
            TrialExec::File { seed, .. } => {
                mix(seed ^ mix(FILE_SCENARIO_TAG << 32 | u64::from(index)))
            }
        }
    }

    /// Runs one trial. Trial `index` is the same simulation no matter
    /// which worker (or which resumed run) executes it.
    #[must_use]
    pub fn run_trial(&self, index: u32) -> TrialResult {
        match self {
            TrialExec::Builtin { campaign, scenario } => campaign.run_trial(*scenario, index),
            TrialExec::File {
                scenario, policy, ..
            } => {
                let seed = self.trial_seed(index);
                let mut rng = StdRng::seed_from_u64(seed);
                let delays: Vec<u32> = (0..scenario.nodes)
                    .map(|_| rng.gen_range(0..4 * scenario.nodes as u32))
                    .collect();
                let report = scenario
                    .sim_builder()
                    .restart_policy(*policy)
                    .start_delays(delays)
                    .build()
                    .run();
                TrialResult::from_report(index, seed, scenario.nodes, &report)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stable wire tokens. The builtin-scenario, topology and authority
// tokens match the scenario DSL's spellings where one exists.
// ---------------------------------------------------------------------

/// The wire token of a built-in scenario.
#[must_use]
pub fn scenario_token(scenario: Scenario) -> &'static str {
    match scenario {
        Scenario::FaultFree => "fault_free",
        Scenario::SosSender => "sos_sender",
        Scenario::MasqueradeColdStart => "masquerade_cold_start",
        Scenario::InvalidCState => "invalid_c_state",
        Scenario::Babbling => "babbling",
        Scenario::CouplerReplay => "coupler_replay",
        Scenario::CouplerSilence => "coupler_silence",
        Scenario::CouplerNoise => "coupler_noise",
    }
}

/// Parses a built-in scenario token.
///
/// # Errors
///
/// Returns a [`SpecError`] listing the valid tokens.
pub fn parse_scenario(token: &str) -> Result<Scenario, SpecError> {
    Scenario::all()
        .into_iter()
        .find(|s| scenario_token(*s) == token)
        .ok_or_else(|| {
            bad(format!(
                "unknown scenario `{token}` (expected one of: {})",
                Scenario::all().map(scenario_token).join(" | ")
            ))
        })
}

/// The wire token of a topology.
#[must_use]
pub fn topology_token(topology: Topology) -> &'static str {
    match topology {
        Topology::Bus => "bus",
        Topology::Star => "star",
    }
}

/// Parses a topology token.
///
/// # Errors
///
/// Returns a [`SpecError`] for anything but `bus` / `star`.
pub fn parse_topology(token: &str) -> Result<Topology, SpecError> {
    match token {
        "bus" => Ok(Topology::Bus),
        "star" => Ok(Topology::Star),
        other => Err(bad(format!("unknown topology `{other}` (bus | star)"))),
    }
}

/// The wire token of an authority level (the scenario DSL's spelling).
#[must_use]
pub fn authority_token(authority: CouplerAuthority) -> &'static str {
    match authority {
        CouplerAuthority::Passive => "passive",
        CouplerAuthority::TimeWindows => "time_windows",
        CouplerAuthority::SmallShifting => "small_shifting",
        CouplerAuthority::FullShifting => "full_shifting",
    }
}

/// Parses an authority token.
///
/// # Errors
///
/// Returns a [`SpecError`] listing the valid tokens.
pub fn parse_authority(token: &str) -> Result<CouplerAuthority, SpecError> {
    match token {
        "passive" => Ok(CouplerAuthority::Passive),
        "time_windows" => Ok(CouplerAuthority::TimeWindows),
        "small_shifting" => Ok(CouplerAuthority::SmallShifting),
        "full_shifting" => Ok(CouplerAuthority::FullShifting),
        other => Err(bad(format!(
            "unknown authority `{other}` (passive | time_windows | small_shifting | full_shifting)"
        ))),
    }
}

/// The wire form of a restart policy.
#[must_use]
pub fn policy_to_json(policy: RestartPolicy) -> Json {
    match policy {
        RestartPolicy::Never => Json::str("never"),
        RestartPolicy::Immediate => Json::str("immediate"),
        RestartPolicy::BoundedRetry {
            max_restarts,
            backoff_slots,
        } => Json::Obj(vec![(
            "bounded_retry".to_string(),
            Json::Obj(vec![
                (
                    "max_restarts".to_string(),
                    Json::UInt(u64::from(max_restarts)),
                ),
                ("backoff_slots".to_string(), Json::UInt(backoff_slots)),
            ]),
        )]),
        RestartPolicy::Watchdog { silence_slots } => Json::Obj(vec![(
            "watchdog".to_string(),
            Json::Obj(vec![(
                "silence_slots".to_string(),
                Json::UInt(silence_slots),
            )]),
        )]),
    }
}

/// Parses the wire form of a restart policy.
///
/// # Errors
///
/// Returns a [`SpecError`] describing the expected shape.
pub fn policy_from_json(value: &Json) -> Result<RestartPolicy, SpecError> {
    match value {
        Json::Str(s) if s == "never" => Ok(RestartPolicy::Never),
        Json::Str(s) if s == "immediate" => Ok(RestartPolicy::Immediate),
        Json::Obj(_) => {
            if let Some(retry) = value.get("bounded_retry") {
                let max = retry
                    .get("max_restarts")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("bounded_retry needs integer \"max_restarts\""))?;
                let backoff = retry
                    .get("backoff_slots")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("bounded_retry needs integer \"backoff_slots\""))?;
                return Ok(RestartPolicy::BoundedRetry {
                    max_restarts: u32::try_from(max)
                        .map_err(|_| bad("\"max_restarts\" too large"))?,
                    backoff_slots: backoff,
                });
            }
            if let Some(watchdog) = value.get("watchdog") {
                let silence = watchdog
                    .get("silence_slots")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("watchdog needs integer \"silence_slots\""))?;
                return Ok(RestartPolicy::Watchdog {
                    silence_slots: silence,
                });
            }
            Err(bad("policy object needs \"bounded_retry\" or \"watchdog\""))
        }
        _ => Err(bad(
            "policy must be \"never\" | \"immediate\" | {\"bounded_retry\": ..} | {\"watchdog\": ..}",
        )),
    }
}

/// The wire token of a containment outcome.
#[must_use]
pub fn outcome_token(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Contained => "contained",
        Outcome::HealthyNodeFrozen => "healthy_node_frozen",
        Outcome::StartupFailed => "startup_failed",
    }
}

fn parse_outcome(token: &str) -> Result<Outcome, SpecError> {
    match token {
        "contained" => Ok(Outcome::Contained),
        "healthy_node_frozen" => Ok(Outcome::HealthyNodeFrozen),
        "startup_failed" => Ok(Outcome::StartupFailed),
        other => Err(bad(format!("unknown outcome `{other}`"))),
    }
}

/// The wire token of a recovery outcome.
#[must_use]
pub fn recovery_token(outcome: RecoveryOutcome) -> &'static str {
    match outcome {
        RecoveryOutcome::Contained => "contained",
        RecoveryOutcome::Recovered => "recovered",
        RecoveryOutcome::DegradedStable => "degraded_stable",
        RecoveryOutcome::PermanentLoss => "permanent_loss",
    }
}

/// Parses a recovery-outcome token.
///
/// # Errors
///
/// Returns a [`SpecError`] for unknown tokens.
pub fn parse_recovery(token: &str) -> Result<RecoveryOutcome, SpecError> {
    match token {
        "contained" => Ok(RecoveryOutcome::Contained),
        "recovered" => Ok(RecoveryOutcome::Recovered),
        "degraded_stable" => Ok(RecoveryOutcome::DegradedStable),
        "permanent_loss" => Ok(RecoveryOutcome::PermanentLoss),
        other => Err(bad(format!("unknown recovery outcome `{other}`"))),
    }
}

// ---------------------------------------------------------------------
// Trial records and aggregates on the wire.
// ---------------------------------------------------------------------

/// The wire fields of one trial result, in canonical order.
#[must_use]
pub fn trial_to_fields(trial: &TrialResult) -> Vec<(String, Json)> {
    vec![
        ("index".to_string(), Json::UInt(u64::from(trial.index))),
        ("seed".to_string(), Json::UInt(trial.seed)),
        (
            "outcome".to_string(),
            Json::str(outcome_token(trial.outcome)),
        ),
        (
            "recovery".to_string(),
            Json::str(recovery_token(trial.recovery)),
        ),
        (
            "unavailability".to_string(),
            Json::Float(trial.unavailability),
        ),
        (
            "ttr".to_string(),
            trial.time_to_reintegration.map_or(Json::Null, Json::UInt),
        ),
    ]
}

/// Parses [`trial_to_fields`] output back.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the missing/malformed field.
pub fn trial_from_json(value: &Json) -> Result<TrialResult, SpecError> {
    let index = value
        .get("index")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("trial needs integer \"index\""))?;
    let seed = value
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("trial needs u64 \"seed\""))?;
    let outcome = value
        .get("outcome")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("trial needs string \"outcome\""))?;
    let recovery = value
        .get("recovery")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("trial needs string \"recovery\""))?;
    let unavailability = value
        .get("unavailability")
        .and_then(Json::as_f64)
        .ok_or_else(|| bad("trial needs numeric \"unavailability\""))?;
    let ttr = match value.get("ttr") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| bad("\"ttr\" must be u64 or null"))?,
        ),
    };
    Ok(TrialResult {
        index: u32::try_from(index).map_err(|_| bad("\"index\" too large"))?,
        seed,
        outcome: parse_outcome(outcome)?,
        recovery: parse_recovery(recovery)?,
        unavailability,
        time_to_reintegration: ttr,
    })
}

/// The wire fields of one trial verdict, in canonical order. A
/// completed trial renders exactly as [`trial_to_fields`] (so journals
/// and streams from before quarantine existed stay byte-identical); a
/// quarantined trial renders as
/// `{"index":N,"seed":S,"quarantined":"panic"|"timeout"}`.
#[must_use]
pub fn verdict_to_fields(verdict: &TrialVerdict) -> Vec<(String, Json)> {
    match verdict {
        TrialVerdict::Completed(trial) => trial_to_fields(trial),
        TrialVerdict::Quarantined(q) => vec![
            ("index".to_string(), Json::UInt(u64::from(q.index))),
            ("seed".to_string(), Json::UInt(q.seed)),
            ("quarantined".to_string(), Json::str(q.reason.token())),
        ],
    }
}

/// Parses [`verdict_to_fields`] output back. Records without a
/// `quarantined` field parse as completed trials, so journals written
/// before quarantine existed load unchanged.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the missing/malformed field.
pub fn verdict_from_json(value: &Json) -> Result<TrialVerdict, SpecError> {
    let Some(reason) = value.get("quarantined") else {
        return trial_from_json(value).map(TrialVerdict::Completed);
    };
    let reason = reason
        .as_str()
        .and_then(QuarantineReason::parse)
        .ok_or_else(|| bad("\"quarantined\" must be \"panic\" or \"timeout\""))?;
    let index = value
        .get("index")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("quarantined trial needs integer \"index\""))?;
    let seed = value
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("quarantined trial needs u64 \"seed\""))?;
    Ok(TrialVerdict::Quarantined(QuarantinedTrial {
        index: u32::try_from(index).map_err(|_| bad("\"index\" too large"))?,
        seed,
        reason,
    }))
}

/// The wire form of a folded aggregate.
#[must_use]
pub fn aggregate_to_json(agg: &TrialAggregate) -> Json {
    Json::Obj(vec![
        ("trials".to_string(), Json::UInt(u64::from(agg.trials))),
        (
            "contained".to_string(),
            Json::UInt(u64::from(agg.contained)),
        ),
        (
            "healthy_frozen".to_string(),
            Json::UInt(u64::from(agg.healthy_frozen)),
        ),
        (
            "startup_failed".to_string(),
            Json::UInt(u64::from(agg.startup_failed)),
        ),
        (
            "recovery_contained".to_string(),
            Json::UInt(u64::from(agg.recovery_contained)),
        ),
        (
            "recovered".to_string(),
            Json::UInt(u64::from(agg.recovered)),
        ),
        ("degraded".to_string(), Json::UInt(u64::from(agg.degraded))),
        (
            "permanent_loss".to_string(),
            Json::UInt(u64::from(agg.permanent_loss)),
        ),
        (
            "mean_unavailability".to_string(),
            Json::Float(agg.mean_unavailability),
        ),
        (
            "mean_ttr".to_string(),
            agg.mean_time_to_reintegration
                .map_or(Json::Null, Json::Float),
        ),
    ])
}

/// Parses [`aggregate_to_json`] output back.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the missing/malformed field.
pub fn aggregate_from_json(value: &Json) -> Result<TrialAggregate, SpecError> {
    let count = |key: &str| -> Result<u32, SpecError> {
        let v = value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("aggregate needs integer \"{key}\"")))?;
        u32::try_from(v).map_err(|_| bad(format!("\"{key}\" too large")))
    };
    Ok(TrialAggregate {
        trials: count("trials")?,
        contained: count("contained")?,
        healthy_frozen: count("healthy_frozen")?,
        startup_failed: count("startup_failed")?,
        recovery_contained: count("recovery_contained")?,
        recovered: count("recovered")?,
        degraded: count("degraded")?,
        permanent_loss: count("permanent_loss")?,
        mean_unavailability: value
            .get("mean_unavailability")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("aggregate needs numeric \"mean_unavailability\""))?,
        mean_time_to_reintegration: match value.get("mean_ttr") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| bad("\"mean_ttr\" must be numeric or null"))?,
            ),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            nodes: 4,
            topology: Topology::Star,
            authority: CouplerAuthority::FullShifting,
            scenario: ScenarioSource::Builtin(Scenario::CouplerReplay),
            policy: RestartPolicy::Watchdog { silence_slots: 8 },
            trials: 12,
            slots: 300,
            seed: 0xDB5_2004,
            fault_duration: Some(60),
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = sample_spec();
        let parsed = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);

        let retry = JobSpec {
            policy: RestartPolicy::BoundedRetry {
                max_restarts: 3,
                backoff_slots: 4,
            },
            scenario: ScenarioSource::File(PathBuf::from("scenarios/x.toml")),
            ..spec
        };
        assert_eq!(JobSpec::from_json(&retry.to_json()).unwrap(), retry);
    }

    #[test]
    fn every_builtin_scenario_token_parses_back() {
        for scenario in Scenario::all() {
            assert_eq!(parse_scenario(scenario_token(scenario)), Ok(scenario));
        }
        assert!(parse_scenario("nope").is_err());
    }

    #[test]
    fn resolved_builtin_jobs_match_inline_campaigns() {
        let job = ResolvedJob::resolve(sample_spec(), Path::new(".")).unwrap();
        let campaign = Campaign::new(4, Topology::Star, CouplerAuthority::FullShifting)
            .trials(12)
            .slots(300)
            .seed(0xDB5_2004)
            .restart_policy(RestartPolicy::Watchdog { silence_slots: 8 })
            .fault_duration(60);
        assert_eq!(job.exec.effective_trials(), 12);
        for index in [0u32, 3, 11] {
            assert_eq!(
                job.exec.run_trial(index),
                campaign.run_trial(Scenario::CouplerReplay, index)
            );
        }
    }

    #[test]
    fn inapplicable_scenarios_resolve_to_zero_trials() {
        let spec = JobSpec {
            topology: Topology::Bus,
            authority: CouplerAuthority::Passive,
            ..sample_spec()
        };
        let job = ResolvedJob::resolve(spec, Path::new(".")).unwrap();
        assert_eq!(job.exec.effective_trials(), 0);
    }

    #[test]
    fn policy_and_seed_separate_cache_scopes() {
        let a = ResolvedJob::resolve(sample_spec(), Path::new(".")).unwrap();
        // Changing policy keeps the scenario hash (cache reuse across a
        // policy sweep needs *different* trial keys, same scenario).
        let b = ResolvedJob::resolve(
            JobSpec {
                policy: RestartPolicy::Never,
                ..sample_spec()
            },
            Path::new("."),
        )
        .unwrap();
        assert_eq!(a.scenario_hash, b.scenario_hash);
        assert_ne!(a.job_hash, b.job_hash);
        assert_ne!(a.trial_key(7), b.trial_key(7));

        // A longer sweep over the same scenario/policy shares both the
        // scenario hash and the per-trial keys.
        let c = ResolvedJob::resolve(
            JobSpec {
                trials: 24,
                ..sample_spec()
            },
            Path::new("."),
        )
        .unwrap();
        assert_eq!(a.scenario_hash, c.scenario_hash);
        assert_eq!(a.trial_key(7), c.trial_key(7));
        assert_ne!(a.job_hash, c.job_hash);

        // Changing the horizon changes the simulation → scenario hash.
        let d = ResolvedJob::resolve(
            JobSpec {
                slots: 400,
                ..sample_spec()
            },
            Path::new("."),
        )
        .unwrap();
        assert_ne!(a.scenario_hash, d.scenario_hash);
    }

    #[test]
    fn trial_records_round_trip() {
        let trial = TrialResult {
            index: 17,
            seed: u64::MAX - 3,
            outcome: Outcome::HealthyNodeFrozen,
            recovery: RecoveryOutcome::PermanentLoss,
            unavailability: 1.0 / 3.0,
            time_to_reintegration: Some(42),
        };
        let json = Json::Obj(trial_to_fields(&trial));
        let reparsed = trial_from_json(&Json::parse(&json.render()).unwrap()).unwrap();
        assert_eq!(reparsed, trial);

        let no_ttr = TrialResult {
            time_to_reintegration: None,
            ..trial
        };
        let json = Json::Obj(trial_to_fields(&no_ttr));
        assert_eq!(
            trial_from_json(&Json::parse(&json.render()).unwrap()).unwrap(),
            no_ttr
        );
    }

    #[test]
    fn aggregates_round_trip() {
        let trials = vec![
            TrialResult {
                index: 0,
                seed: 1,
                outcome: Outcome::Contained,
                recovery: RecoveryOutcome::Contained,
                unavailability: 0.25,
                time_to_reintegration: None,
            },
            TrialResult {
                index: 1,
                seed: 2,
                outcome: Outcome::HealthyNodeFrozen,
                recovery: RecoveryOutcome::Recovered,
                unavailability: 0.125,
                time_to_reintegration: Some(30),
            },
        ];
        let agg = TrialAggregate::fold(&trials);
        let json = aggregate_to_json(&agg);
        let reparsed = aggregate_from_json(&Json::parse(&json.render()).unwrap()).unwrap();
        assert_eq!(reparsed, agg);
    }
}
