//! `tta-campaign` — client CLI for the campaign service.
//!
//! Subcommands:
//!
//! * `submit` — submit a sweep and stream its deterministic NDJSON
//!   (`accepted`/`trial`/`summary` lines) to stdout or `--ndjson PATH`;
//!   the non-deterministic `stats` line goes to stderr. The streamed
//!   bytes are identical for a given spec at any worker count, across
//!   daemon kills and resumes — that is the service's core invariant.
//! * `status` / `ping` / `drain` / `shutdown` — daemon control.
//!   `status` reports drain state and per-job chunk/lease/quarantine
//!   detail; `drain` asks the daemon to finish leased chunks,
//!   checkpoint, and exit (same as SIGTERM).
//! * `bench` — the campaign-service throughput snapshot
//!   (`BENCH_campaignd.json`): trials/sec at 1/2/4/8 workers against a
//!   private in-process daemon, a warm-vs-cold cache comparison, and
//!   the trial-supervision overhead.
//!
//! `submit` (and `bench`) go through the resilient client path: a
//! dropped connection is retried with exponential backoff and the
//! stream resumes idempotently — already-seen deterministic lines are
//! skipped, so the assembled output is byte-identical to an
//! uninterrupted run.

use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;
use tta_campaignd::client::{Client, ReconnectPolicy};
use tta_campaignd::server::{Server, ServerConfig, ServerHandle};
use tta_campaignd::spec::{
    parse_authority, parse_scenario, parse_topology, JobSpec, ScenarioSource,
};
use tta_protocol::RestartPolicy;

const USAGE: &str = "tta_campaign <submit|status|ping|drain|shutdown|bench> [options]

  submit --scenario TOKEN | --scenario-file PATH
         [--socket PATH] [--nodes N] [--topology bus|star]
         [--authority passive|time_windows|small_shifting|full_shifting]
         [--policy never|immediate|bounded_retry:MAX,BACKOFF|watchdog:SLOTS]
         [--trials N] [--slots N] [--seed N] [--fault-duration N]
         [--workers N] [--ndjson PATH]
  status|ping|drain|shutdown [--socket PATH]
  bench  [--bench-json PATH]";

fn die(why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn parse_policy(token: &str) -> RestartPolicy {
    if token == "never" {
        return RestartPolicy::Never;
    }
    if token == "immediate" {
        return RestartPolicy::Immediate;
    }
    if let Some(rest) = token.strip_prefix("bounded_retry:") {
        if let Some((max, backoff)) = rest.split_once(',') {
            if let (Ok(max_restarts), Ok(backoff_slots)) = (max.parse(), backoff.parse()) {
                return RestartPolicy::BoundedRetry {
                    max_restarts,
                    backoff_slots,
                };
            }
        }
        die("bounded_retry needs MAX,BACKOFF");
    }
    if let Some(rest) = token.strip_prefix("watchdog:") {
        if let Ok(silence_slots) = rest.parse() {
            return RestartPolicy::Watchdog { silence_slots };
        }
        die("watchdog needs SLOTS");
    }
    die(&format!("unknown policy {token}"));
}

fn parse_u64(value: &str) -> Option<u64> {
    value.strip_prefix("0x").map_or_else(
        || value.parse().ok(),
        |hex| u64::from_str_radix(hex, 16).ok(),
    )
}

fn default_socket() -> PathBuf {
    PathBuf::from(".campaignd/daemon.sock")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        die("missing subcommand");
    };
    let rest: Vec<String> = args.collect();
    match command.as_str() {
        "submit" => submit(&rest),
        "status" => status(&rest),
        "ping" => {
            if Client::new(&control_socket(&rest)).ping() {
                println!("ok");
            } else {
                eprintln!("no daemon");
                std::process::exit(1);
            }
        }
        "drain" => {
            if let Err(e) = Client::new(&control_socket(&rest)).drain() {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        "shutdown" => {
            if let Err(e) = Client::new(&control_socket(&rest)).shutdown() {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        "bench" => bench(&rest),
        other => die(&format!("unknown subcommand {other}")),
    }
}

/// Parses the `--socket PATH` option the control subcommands share.
fn control_socket(rest: &[String]) -> PathBuf {
    let mut socket = default_socket();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => match iter.next() {
                Some(path) => socket = PathBuf::from(path),
                None => die("--socket needs a path"),
            },
            other => die(&format!("unknown argument {other}")),
        }
    }
    socket
}

fn status(rest: &[String]) {
    match Client::new(&control_socket(rest)).status() {
        Ok(info) => {
            println!(
                "cache_entries {}\njobs_running {}\njobs_done {}\ndraining {}",
                info.cache_entries, info.jobs_running, info.jobs_done, info.draining
            );
            for job in &info.jobs {
                println!(
                    "job {}: chunks {}/{} done, {} leased, {} quarantined, {} workers",
                    job.job,
                    job.chunks_done,
                    job.chunks_total,
                    job.chunks_leased,
                    job.quarantined,
                    job.workers_active
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// A deferred edit applied to the [`JobSpec`] once it exists (flags may
/// precede `--scenario`, which is what constructs the spec).
type SpecPatch = Box<dyn FnOnce(&mut JobSpec)>;

fn submit(rest: &[String]) {
    let mut socket = default_socket();
    let mut scenario: Option<ScenarioSource> = None;
    let mut spec_patch: Vec<SpecPatch> = Vec::new();
    let mut workers: Option<usize> = None;
    let mut ndjson: Option<PathBuf> = None;

    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| match iter.next() {
            Some(v) => v.clone(),
            None => die(&format!("{arg} needs {what}")),
        };
        match arg.as_str() {
            "--socket" => socket = PathBuf::from(value("a path")),
            "--scenario" => match parse_scenario(&value("a scenario token")) {
                Ok(s) => scenario = Some(ScenarioSource::Builtin(s)),
                Err(e) => die(&e.0),
            },
            "--scenario-file" => {
                scenario = Some(ScenarioSource::File(PathBuf::from(value("a path"))));
            }
            "--nodes" => match value("an integer").parse() {
                Ok(n) => spec_patch.push(Box::new(move |s| s.nodes = n)),
                Err(_) => die("--nodes needs an integer"),
            },
            "--topology" => match parse_topology(&value("bus|star")) {
                Ok(t) => spec_patch.push(Box::new(move |s| s.topology = t)),
                Err(e) => die(&e.0),
            },
            "--authority" => match parse_authority(&value("an authority token")) {
                Ok(a) => spec_patch.push(Box::new(move |s| s.authority = a)),
                Err(e) => die(&e.0),
            },
            "--policy" => {
                let p = parse_policy(&value("a policy token"));
                spec_patch.push(Box::new(move |s| s.policy = p));
            }
            "--trials" => match value("an integer").parse() {
                Ok(n) => spec_patch.push(Box::new(move |s| s.trials = n)),
                Err(_) => die("--trials needs an integer"),
            },
            "--slots" => match value("an integer").parse() {
                Ok(n) => spec_patch.push(Box::new(move |s| s.slots = n)),
                Err(_) => die("--slots needs an integer"),
            },
            "--seed" => match parse_u64(&value("an integer")) {
                Some(n) => spec_patch.push(Box::new(move |s| s.seed = n)),
                None => die("--seed needs an integer (decimal or 0x hex)"),
            },
            "--fault-duration" => match value("an integer").parse() {
                Ok(n) => spec_patch.push(Box::new(move |s| s.fault_duration = Some(n))),
                Err(_) => die("--fault-duration needs an integer"),
            },
            "--workers" => match value("an integer").parse() {
                Ok(n) if n > 0 => workers = Some(n),
                _ => die("--workers needs a positive integer"),
            },
            "--ndjson" => ndjson = Some(PathBuf::from(value("a path"))),
            other => die(&format!("unknown argument {other}")),
        }
    }

    let Some(scenario) = scenario else {
        die("submit needs --scenario or --scenario-file");
    };
    let mut spec = JobSpec::new(scenario);
    for patch in spec_patch {
        patch(&mut spec);
    }

    let client = Client::new(&socket);
    let mut sink: Box<dyn Write> = match &ndjson {
        Some(path) => Box::new(std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("error: cannot create {}: {e}", path.display());
            std::process::exit(1);
        })),
        None => Box::new(std::io::stdout()),
    };
    let mut sink_failed = false;
    let result =
        client.submit_resilient(&spec, workers, &ReconnectPolicy::default(), &mut |line| {
            if !sink_failed && writeln!(sink, "{line}").is_err() {
                sink_failed = true;
            }
        });
    drop(sink);
    match result {
        Ok(result) => {
            if sink_failed {
                eprintln!("error: could not write the NDJSON stream");
                std::process::exit(1);
            }
            if let Some(path) = &ndjson {
                eprintln!("wrote {}", path.display());
            }
            eprintln!(
                "job {}: {} trials ({} computed, {} cache hits, {} resumed, {} quarantined)",
                result.job,
                result.trials.len(),
                result.stats.computed,
                result.stats.cache_hits,
                result.stats.resumed_trials,
                result.quarantined.len()
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

// --- bench ---------------------------------------------------------------

/// The sweep the throughput snapshot times: big enough to shard across
/// eight workers (64 trials = 8 journal chunks), heavy enough per trial
/// (400 slots, transient fault, watchdog restarts) to dominate the
/// protocol overhead.
fn bench_spec() -> JobSpec {
    JobSpec {
        trials: 64,
        policy: RestartPolicy::Watchdog { silence_slots: 8 },
        fault_duration: Some(60),
        ..JobSpec::new(ScenarioSource::Builtin(tta_sim::Scenario::SosSender))
    }
}

struct BenchDaemon {
    handle: Option<ServerHandle>,
    state_dir: PathBuf,
}

impl BenchDaemon {
    fn spawn(state_dir: PathBuf, workers: usize) -> BenchDaemon {
        Self::spawn_cfg(state_dir, workers, |_| {})
    }

    fn spawn_cfg(
        state_dir: PathBuf,
        workers: usize,
        configure: impl FnOnce(&mut ServerConfig),
    ) -> BenchDaemon {
        let mut config = ServerConfig::at(&state_dir);
        config.workers = workers;
        configure(&mut config);
        let handle = Server::spawn(config).unwrap_or_else(|e| {
            eprintln!("error: cannot spawn bench daemon: {e}");
            std::process::exit(1);
        });
        BenchDaemon {
            handle: Some(handle),
            state_dir,
        }
    }

    fn client(&self) -> Client {
        Client::new(self.handle.as_ref().expect("live daemon").socket())
    }
}

impl Drop for BenchDaemon {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            handle.shutdown();
        }
        let _ = std::fs::remove_dir_all(&self.state_dir);
    }
}

fn bench(rest: &[String]) {
    let mut out_path = PathBuf::from("BENCH_campaignd.json");
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--bench-json" => match iter.next() {
                Some(path) => out_path = PathBuf::from(path),
                None => die("--bench-json needs a path"),
            },
            other => die(&format!("unknown argument {other}")),
        }
    }

    // detlint: allow(DL03) reason=bench sizing and reporting only; worker counts under test are fixed explicitly below
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let spec = bench_spec();
    let scratch = std::env::temp_dir().join(format!("campaignd-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    eprintln!(
        "campaign-service throughput: 64 trials, sos_sender, watchdog:8 ({host_cpus} host CPUs)"
    );

    // Cold-state scaling: a fresh daemon (empty journal dir, empty
    // cache) per worker count, so every trial is computed.
    let worker_counts = [1usize, 2, 4, 8];
    let mut scaling = Vec::new();
    let mut base_seconds = 0.0f64;
    for &workers in &worker_counts {
        let daemon = BenchDaemon::spawn(scratch.join(format!("w{workers}")), workers);
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let start = Instant::now();
        let result = daemon
            .client()
            .submit_resilient(
                &spec,
                Some(workers),
                &ReconnectPolicy::default(),
                &mut |_| {},
            )
            .unwrap_or_else(|e| {
                eprintln!("error: bench submit failed: {e}");
                std::process::exit(1);
            });
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            result.stats.cache_hits, 0,
            "cold run must compute every trial"
        );
        if workers == 1 {
            base_seconds = seconds;
        }
        let rate = f64::from(spec.trials) / seconds;
        let comparable = workers <= host_cpus;
        eprintln!(
            "  workers {workers}: {seconds:.3} s, {rate:.0} trials/s{}",
            if comparable { "" } else { " (oversubscribed)" }
        );
        scaling.push((workers, seconds, rate, base_seconds / seconds, comparable));
    }

    // Warm vs. cold cache on one daemon: submit cold, delete the
    // journal so a resubmit cannot just resume, submit again — every
    // trial should come from the result cache.
    let warm_workers = 4.min(host_cpus).max(1);
    let daemon = BenchDaemon::spawn(scratch.join("warm"), warm_workers);
    let client = daemon.client();
    // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
    let start = Instant::now();
    let cold = client
        .submit_resilient(
            &spec,
            Some(warm_workers),
            &ReconnectPolicy::default(),
            &mut |_| {},
        )
        .unwrap_or_else(|e| {
            eprintln!("error: bench submit failed: {e}");
            std::process::exit(1);
        });
    let cold_seconds = start.elapsed().as_secs_f64();
    std::fs::remove_dir_all(daemon.state_dir.join("jobs")).unwrap_or_else(|e| {
        eprintln!("error: cannot clear journals: {e}");
        std::process::exit(1);
    });
    // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
    let start = Instant::now();
    let warm = client
        .submit_resilient(
            &spec,
            Some(warm_workers),
            &ReconnectPolicy::default(),
            &mut |_| {},
        )
        .unwrap_or_else(|e| {
            eprintln!("error: bench submit failed: {e}");
            std::process::exit(1);
        });
    let warm_seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        u32::try_from(warm.stats.cache_hits).ok(),
        Some(spec.trials),
        "warm run must hit cache for every trial"
    );
    assert_eq!(cold.trials, warm.trials, "cache must not change results");
    eprintln!(
        "  cache ({warm_workers} workers): cold {cold_seconds:.3} s, warm {warm_seconds:.3} s \
         ({:.1}x)",
        cold_seconds / warm_seconds
    );
    drop(daemon);

    // Supervision overhead: the same cold sweep with the supervisor
    // effectively asleep (5 s scan tick, one-hour trial deadline — it
    // never fires) vs the default tick. The delta bounds what
    // per-trial sandboxing plus lease/deadline scanning cost a healthy
    // run; the robustness budget is ≤5%. Each config is timed
    // best-of-3 on a fresh cold daemon — single ~30 ms sweeps are
    // dominated by scheduler noise otherwise.
    let mut relaxed_seconds = f64::INFINITY;
    let mut supervised_seconds = f64::INFINITY;
    for round in 0..3 {
        let relaxed_daemon = BenchDaemon::spawn_cfg(
            scratch.join(format!("sup-relaxed-{round}")),
            warm_workers,
            |config| {
                config.supervision.tick = std::time::Duration::from_secs(5);
                config.supervision.trial_deadline = std::time::Duration::from_secs(3600);
            },
        );
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let start = Instant::now();
        relaxed_daemon
            .client()
            .submit_resilient(
                &spec,
                Some(warm_workers),
                &ReconnectPolicy::default(),
                &mut |_| {},
            )
            .unwrap_or_else(|e| {
                eprintln!("error: bench submit failed: {e}");
                std::process::exit(1);
            });
        relaxed_seconds = relaxed_seconds.min(start.elapsed().as_secs_f64());
        drop(relaxed_daemon);
        let supervised_daemon =
            BenchDaemon::spawn(scratch.join(format!("sup-default-{round}")), warm_workers);
        // detlint: allow(DL02) reason=benchmark measurement; wall-clock is the quantity this binary reports
        let start = Instant::now();
        supervised_daemon
            .client()
            .submit_resilient(
                &spec,
                Some(warm_workers),
                &ReconnectPolicy::default(),
                &mut |_| {},
            )
            .unwrap_or_else(|e| {
                eprintln!("error: bench submit failed: {e}");
                std::process::exit(1);
            });
        supervised_seconds = supervised_seconds.min(start.elapsed().as_secs_f64());
        drop(supervised_daemon);
    }
    let overhead_percent = (supervised_seconds / relaxed_seconds - 1.0) * 100.0;
    eprintln!(
        "  supervision ({warm_workers} workers): relaxed {relaxed_seconds:.3} s, \
         supervised {supervised_seconds:.3} s ({overhead_percent:+.1}%)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"snapshot\": \"campaign_service_throughput\",\n");
    json.push_str(
        "  \"job\": \"sos_sender star/small_shifting watchdog:8, 64 trials x 400 slots\",\n",
    );
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(
        "  \"note\": \"entries with comparable=false used more workers than host CPUs and only \
         time-slice one core; judge scaling on comparable entries\",\n",
    );
    json.push_str("  \"workers\": [\n");
    for (i, (workers, seconds, rate, speedup, comparable)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"seconds\": {seconds:.6}, \
             \"trials_per_second\": {rate:.0}, \"speedup_vs_1\": {speedup:.3}, \
             \"comparable\": {comparable}}}{comma}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"cache\": {{\"workers\": {warm_workers}, \"cold_seconds\": {cold_seconds:.6}, \
         \"warm_seconds\": {warm_seconds:.6}, \"speedup\": {:.1}, \"warm_cache_hits\": {}}},\n",
        cold_seconds / warm_seconds,
        warm.stats.cache_hits
    ));
    json.push_str(&format!(
        "  \"supervision\": {{\"workers\": {warm_workers}, \
         \"relaxed_seconds\": {relaxed_seconds:.6}, \
         \"supervised_seconds\": {supervised_seconds:.6}, \
         \"overhead_percent\": {overhead_percent:.2}, \"budget_percent\": 5.0}}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", out_path.display());
}
