//! `tta-campaignd` — the resumable, sharded fault-injection campaign
//! daemon.
//!
//! Listens on a Unix socket, shards submitted campaign sweeps across a
//! worker pool, streams per-trial results back as NDJSON, checkpoints
//! completed chunks to an append-only journal (a killed daemon resumes
//! without redoing work), and memoizes trials in a content-addressed
//! result cache. See `crates/campaignd/src/lib.rs` for the determinism
//! invariant and DESIGN.md § "Campaign service" for the protocol.

use std::path::PathBuf;
use tta_campaignd::runner::CrashPlan;
use tta_campaignd::server::{Server, ServerConfig};

const USAGE: &str = "tta_campaignd [--state-dir DIR] [--socket PATH] [--workers N] \
                     [--base-dir DIR] [--crash-after-chunks N]";

fn die(why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut state_dir = PathBuf::from(".campaignd");
    let mut socket: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut base_dir: Option<PathBuf> = None;
    let mut crash = CrashPlan::default();

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--state-dir" => match iter.next() {
                Some(dir) => state_dir = PathBuf::from(dir),
                None => die("--state-dir needs a directory"),
            },
            "--socket" => match iter.next() {
                Some(path) => socket = Some(PathBuf::from(path)),
                None => die("--socket needs a path"),
            },
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => die("--workers needs a positive integer"),
            },
            "--base-dir" => match iter.next() {
                Some(dir) => base_dir = Some(PathBuf::from(dir)),
                None => die("--base-dir needs a directory"),
            },
            "--crash-after-chunks" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    crash = CrashPlan {
                        crash_after_chunks: Some(n),
                    };
                }
                None => die("--crash-after-chunks needs an integer"),
            },
            other => die(&format!("unknown argument {other}")),
        }
    }

    let mut config = ServerConfig::at(&state_dir);
    if let Some(socket) = socket {
        config.socket = socket;
    }
    if let Some(workers) = workers {
        config.workers = workers;
    }
    if let Some(base_dir) = base_dir {
        config.base_dir = base_dir;
    }
    config.crash = crash;

    let socket = config.socket.clone();
    let workers = config.workers;
    let server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("error: cannot start daemon: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "tta-campaignd: listening on {} ({workers} workers, state in {})",
        socket.display(),
        state_dir.display()
    );
    if let Err(e) = server.serve() {
        eprintln!("error: daemon failed: {e}");
        std::process::exit(1);
    }
}
