//! `tta-campaignd` — the resumable, sharded fault-injection campaign
//! daemon.
//!
//! Listens on a Unix socket, shards submitted campaign sweeps across a
//! worker pool, streams per-trial results back as NDJSON, checkpoints
//! completed chunks to an append-only journal (a killed daemon resumes
//! without redoing work), and memoizes trials in a content-addressed
//! result cache. See `crates/campaignd/src/lib.rs` for the determinism
//! invariant and DESIGN.md § "Campaign service" for the protocol.
//!
//! SIGTERM (and SIGINT) trigger a graceful *drain*, not an abrupt exit:
//! running jobs finish their leased chunks and checkpoint their
//! journals, new submissions are refused with a retryable error, and
//! the process exits once the last job has wound down. `--chaos`
//! arms deterministic failure injection (see [`ChaosPlan`]) for the
//! self-fault-tolerance test matrix.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use tta_campaignd::chaos::ChaosPlan;
use tta_campaignd::client::Client;
use tta_campaignd::runner::CrashPlan;
use tta_campaignd::server::{Server, ServerConfig};

const USAGE: &str = "tta_campaignd [--state-dir DIR] [--socket PATH] [--workers N] \
                     [--base-dir DIR] [--crash-after-chunks N] [--chaos SPEC] \
                     [--trial-deadline-ms N] [--retry-max N] [--retry-backoff-ms N]";

fn die(why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: {USAGE}");
    std::process::exit(2);
}

/// Set by the signal handler; a watcher thread turns it into a `drain`
/// request over the daemon's own socket (a handler must not touch the
/// server directly — flag-and-poll is the only async-signal-safe move).
/// Relaxed: a one-way latch polled in a loop; no other data is
/// published through it, and signal handlers cannot use stronger
/// synchronization anyway.
static DRAIN_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_terminate(_signum: i32) {
    DRAIN_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs `on_terminate` for SIGTERM/SIGINT via a minimal hand-rolled
/// `signal(2)` binding — the libc crate is deliberately not a
/// dependency, and this is the one place the daemon needs the OS API.
fn install_drain_signal_handler() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SAFETY: `signal` is the C standard library's own prototype; the
    // handler only stores to an atomic, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, on_terminate);
        signal(SIGINT, on_terminate);
    }
}

fn main() {
    let mut state_dir = PathBuf::from(".campaignd");
    let mut socket: Option<PathBuf> = None;
    let mut workers: Option<usize> = None;
    let mut base_dir: Option<PathBuf> = None;
    let mut crash = CrashPlan::default();
    let mut chaos = ChaosPlan::default();
    let mut trial_deadline: Option<Duration> = None;
    let mut retry_max: Option<u32> = None;
    let mut retry_backoff: Option<Duration> = None;

    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--state-dir" => match iter.next() {
                Some(dir) => state_dir = PathBuf::from(dir),
                None => die("--state-dir needs a directory"),
            },
            "--socket" => match iter.next() {
                Some(path) => socket = Some(PathBuf::from(path)),
                None => die("--socket needs a path"),
            },
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => die("--workers needs a positive integer"),
            },
            "--base-dir" => match iter.next() {
                Some(dir) => base_dir = Some(PathBuf::from(dir)),
                None => die("--base-dir needs a directory"),
            },
            "--crash-after-chunks" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => {
                    crash = CrashPlan {
                        crash_after_chunks: Some(n),
                    };
                }
                None => die("--crash-after-chunks needs an integer"),
            },
            "--chaos" => match iter.next() {
                Some(spec) => match ChaosPlan::parse(&spec) {
                    Ok(plan) => chaos = plan,
                    Err(e) => die(&e.0),
                },
                None => die("--chaos needs a spec (e.g. panic=0.1,timeout=12,seed=7)"),
            },
            "--trial-deadline-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) if ms > 0u64 => trial_deadline = Some(Duration::from_millis(ms)),
                _ => die("--trial-deadline-ms needs a positive integer"),
            },
            "--retry-max" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0u32 => retry_max = Some(n),
                _ => die("--retry-max needs a positive integer"),
            },
            "--retry-backoff-ms" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(ms) => retry_backoff = Some(Duration::from_millis(ms)),
                None => die("--retry-backoff-ms needs an integer"),
            },
            other => die(&format!("unknown argument {other}")),
        }
    }

    let mut config = ServerConfig::at(&state_dir);
    if let Some(socket) = socket {
        config.socket = socket;
    }
    if let Some(workers) = workers {
        config.workers = workers;
    }
    if let Some(base_dir) = base_dir {
        config.base_dir = base_dir;
    }
    config.crash = crash;
    config.chaos = chaos;
    if let Some(deadline) = trial_deadline {
        config.supervision.trial_deadline = deadline;
    }
    if let Some(max) = retry_max {
        config.supervision.retry.max_attempts = max;
    }
    if let Some(backoff) = retry_backoff {
        config.supervision.retry.backoff = backoff;
    }

    let socket = config.socket.clone();
    let workers = config.workers;
    let chaos_active = config.chaos.is_active();
    let server = Server::bind(config).unwrap_or_else(|e| {
        eprintln!("error: cannot start daemon: {e}");
        std::process::exit(1);
    });

    install_drain_signal_handler();
    {
        // The drain watcher: converts the signal flag into a protocol
        // `drain` op against our own socket, then exits. `serve`
        // returns once running jobs have wound down.
        let socket = socket.clone();
        std::thread::spawn(move || loop {
            if DRAIN_REQUESTED.load(Ordering::Relaxed) {
                let _ = Client::new(&socket).drain();
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    eprintln!(
        "tta-campaignd: listening on {} ({workers} workers, state in {}{})",
        socket.display(),
        state_dir.display(),
        if chaos_active { ", CHAOS ARMED" } else { "" }
    );
    if let Err(e) = server.serve() {
        eprintln!("error: daemon failed: {e}");
        std::process::exit(1);
    }
}
