//! `tta-campaignd`: a resumable, sharded fault-injection campaign
//! service.
//!
//! The paper's experiments (E9/E10) are embarrassingly parallel sweeps
//! of independent, seed-deterministic trials. This crate packages that
//! workload as a small local job service:
//!
//! * **`tta_campaignd`** — a daemon listening on a Unix socket for
//!   newline-delimited JSON requests. Each job (scenario + restart
//!   policy + seed range) is sharded into fixed chunks over a worker
//!   pool, streamed back as per-trial NDJSON, and checkpointed to an
//!   append-only journal so a killed sweep resumes without redoing
//!   finished chunks.
//! * **`tta_campaign`** — the client CLI: submit jobs, stream results,
//!   inspect status, benchmark the service.
//!
//! The core invariant, enforced end to end: **a job's deterministic
//! output (per-trial records and summary) is bit-identical for a given
//! seed regardless of worker count, and regardless of whether the sweep
//! ran straight through or was killed and resumed.** Everything in this
//! crate is arranged around that — trials are keyed by derived seed,
//! chunks are adopted in index order, floats render shortest-roundtrip,
//! and the one legitimately non-deterministic line (cache/timing stats)
//! is segregated from the deterministic stream.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod hash;
pub mod journal;
pub mod json;
pub mod protocol;
pub mod runner;
pub mod server;
pub mod spec;
pub mod table;
