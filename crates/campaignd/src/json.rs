//! A minimal JSON value type with a deterministic writer and a strict
//! parser — the wire format of the campaign service.
//!
//! Hand-rolled for the same reason `CampaignJson` renders by hand: the
//! offline build vendors inert `serde`/`serde_json` stubs, and the
//! protocol needs **byte-stable** output (golden diffs, kill-and-resume
//! equality) plus **exact** 64-bit integers (trial seeds use all 64
//! bits, which a float-only JSON layer would silently round).
//!
//! Numbers are kept in three lanes: unsigned, signed and float. The
//! writer renders floats with Rust's shortest-roundtrip `Display`, so
//! `parse(render(x))` recovers exactly `x` for every finite `f64` — the
//! property the daemon relies on when a client re-folds streamed trial
//! metrics into the same report an inline campaign computes.

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order (the writer is
/// deterministic; no sorting, no hashing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer token (no `.`/exponent, fits `u64`).
    UInt(u64),
    /// Negative integer token (fits `i64`).
    Int(i64),
    /// Any other number token.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse error with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience string constructor.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (unsigned tokens and non-negative signed
    /// tokens only — floats are rejected so seeds never round).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric lane).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact single-line JSON. Deterministic:
    /// field order is whatever the builder inserted, floats use the
    /// shortest representation that round-trips.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                // NaN/inf have no JSON form; the protocol never produces
                // them (availabilities and means are finite).
                debug_assert!(v.is_finite(), "non-finite float in protocol value");
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value, requiring the whole input be consumed
    /// (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first
    /// offending character.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err("trailing characters after value", pos));
        }
        Ok(value)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(message: &str, offset: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

const MAX_DEPTH: usize = 64;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err("value nested too deeply", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected ',' or ']' in array", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b'"') {
                    return Err(err("expected string key in object", *pos));
                }
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err("expected ':' after object key", *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(err("expected ',' or '}' in object", *pos)),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err("invalid literal", *pos))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(err("unpaired surrogate escape", *pos));
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(err("invalid low surrogate", *pos));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code).ok_or_else(|| err("invalid code point", *pos))?
                        } else {
                            char::from_u32(hi).ok_or_else(|| err("invalid code point", *pos))?
                        };
                        out.push(c);
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err(err("control character in string", *pos)),
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // bytes are valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| {
                    err("invalid UTF-8", *pos) // unreachable from &str input
                })?;
                let c = rest.chars().next().expect("non-empty checked above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    // `*pos` is at the 'u'; consume 4 hex digits after it, leaving
    // `*pos` at the final digit (the caller advances past it).
    let start = *pos + 1;
    let digits = bytes
        .get(start..start + 4)
        .ok_or_else(|| err("truncated \\u escape", *pos))?;
    let text = std::str::from_utf8(digits).map_err(|_| err("invalid \\u escape", *pos))?;
    let value = u32::from_str_radix(text, 16).map_err(|_| err("invalid \\u escape", *pos))?;
    *pos += 4;
    Ok(value)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number token");
    if !is_float {
        if let Some(rest) = text.strip_prefix('-') {
            if rest.parse::<u64>().is_ok() {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Json::Int(v));
                }
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err("invalid number", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let value = Json::Obj(vec![
            ("op".to_string(), Json::str("submit")),
            ("seed".to_string(), Json::UInt(u64::MAX)),
            ("delta".to_string(), Json::Int(-42)),
            ("avail".to_string(), Json::Float(0.9375)),
            (
                "items".to_string(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("a\"b\\c\n")]),
            ),
        ]);
        let rendered = value.render();
        assert_eq!(Json::parse(&rendered), Ok(value));
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        for seed in [0, 1, u64::MAX, 0xDB5_2004, 1 << 53, (1 << 53) + 1] {
            let rendered = Json::UInt(seed).render();
            let parsed = Json::parse(&rendered).unwrap();
            assert_eq!(parsed.as_u64(), Some(seed), "{rendered}");
        }
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.1, 1.0 / 3.0, 0.015_625, 1e300, -2.5e-10, 0.0] {
            let rendered = Json::Float(x).render();
            let parsed = Json::parse(&rendered).unwrap();
            assert_eq!(parsed.as_f64(), Some(x), "{rendered}");
        }
    }

    #[test]
    fn whole_floats_render_as_integers_but_read_back_as_f64() {
        // `1.0` renders as "1"; consumers use as_f64 which accepts the
        // integer lane, so the ambiguity is harmless.
        assert_eq!(Json::Float(1.0).render(), "1");
        assert_eq!(Json::parse("1").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "\"\\q\"", "1 2", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = Json::parse(r#""a\n\t\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(parsed.as_str(), Some("a\n\tA\u{1F600}"));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"a": 3, "b": null, "c": [1, 2], "d": -7}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert!(v.get("b").unwrap().is_null());
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(Json::as_u64), None);
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(-7.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }
}
