//! The wire protocol: newline-delimited JSON over a local Unix socket.
//!
//! Deliberately minimal — no HTTP, no framing beyond `\n`, one request
//! per connection. The client writes a single request line; the daemon
//! answers with one or more response lines and closes.
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"status"}
//! {"op":"drain"}
//! {"op":"shutdown"}
//! {"op":"submit","workers":4,"spec":{...}}          (workers optional)
//! {"op":"eval","nodes":4,"topology":"star","authority":"passive",
//!  "slots":400,"policy":"never","plan":{...}}
//! ```
//!
//! A `submit` response is a stream: one `accepted` line, then every
//! trial in index order, then the `summary` fold, then a final `stats`
//! line. Everything up to and including `summary` is **deterministic**
//! — bit-identical for a given job spec at any worker count, resumed or
//! not. A quarantined trial (one that exhausted its supervision retry
//! budget) is part of that deterministic stream: it renders as a trial
//! line with a `quarantined` reason instead of a result. The `stats`
//! line (cache hits, resumed chunks, lease churn) legitimately varies
//! between runs and is segregated at the end so consumers can split the
//! stream on type and byte-compare the rest.
//!
//! Error lines may carry `"retryable":true` — the condition is
//! transient (a duplicate in-flight job, a draining daemon) and a
//! resilient client should back off and retry rather than fail.

use crate::json::Json;
use crate::runner::{JobProgress, RunStats, TrialVerdict};
use crate::spec::{
    aggregate_to_json, authority_token, parse_authority, parse_topology, policy_from_json,
    policy_to_json, recovery_token, topology_token, verdict_to_fields, JobSpec, SpecError,
};
use std::sync::atomic::Ordering;
use tta_guardian::sos::SosDomain;
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_protocol::RestartPolicy;
use tta_sim::{
    CouplerFaultEvent, FaultPersistence, FaultPlan, NodeFault, NodeFaultKind, PlanRunMetrics,
    Topology, TrialAggregate,
};
use tta_types::NodeId;

fn bad(message: impl Into<String>) -> SpecError {
    SpecError(message.into())
}

/// One plan evaluation: the `eval` op's payload. The client translates
/// its candidate to an admissible [`FaultPlan`] *before* sending (the
/// authority-dependent out-of-slot filtering is an evaluator-side
/// concern), so the daemon's job is purely "simulate this plan here".
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Cluster size.
    pub nodes: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Guardian authority for this run.
    pub authority: CouplerAuthority,
    /// Horizon in slots.
    pub slots: u64,
    /// Host restart policy.
    pub policy: RestartPolicy,
    /// The exact plan to inject.
    pub plan: FaultPlan,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One-line service status.
    Status,
    /// Graceful drain: refuse new jobs, finish leased chunks,
    /// checkpoint, then exit once running jobs have stopped.
    Drain,
    /// Graceful shutdown.
    Shutdown,
    /// Run (or resume) a campaign job, streaming results.
    Submit {
        /// The job.
        spec: JobSpec,
        /// Worker-count override for this job (defaults to the
        /// daemon's).
        workers: Option<usize>,
    },
    /// Simulate one fault plan and return its metrics.
    Eval(Box<EvalRequest>),
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`SpecError`] suitable for an `error` response line.
pub fn parse_request(line: &str) -> Result<Request, SpecError> {
    let value = Json::parse(line).map_err(|e| bad(format!("malformed request: {e}")))?;
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("request needs a string \"op\""))?;
    match op {
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "drain" => Ok(Request::Drain),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let spec = value
                .get("spec")
                .ok_or_else(|| bad("submit needs a \"spec\""))?;
            let workers = match value.get("workers") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|w| usize::try_from(w).ok())
                        .filter(|w| *w >= 1)
                        .ok_or_else(|| bad("\"workers\" must be a positive integer"))?,
                ),
            };
            Ok(Request::Submit {
                spec: JobSpec::from_json(spec)?,
                workers,
            })
        }
        "eval" => Ok(Request::Eval(Box::new(parse_eval(&value)?))),
        other => Err(bad(format!("unknown op `{other}`"))),
    }
}

fn parse_eval(value: &Json) -> Result<EvalRequest, SpecError> {
    let nodes = value
        .get("nodes")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("eval needs integer \"nodes\""))?;
    if !(2..=16).contains(&nodes) {
        return Err(bad("\"nodes\" must be in 2..=16"));
    }
    let topology = parse_topology(
        value
            .get("topology")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("eval needs string \"topology\""))?,
    )?;
    let authority = parse_authority(
        value
            .get("authority")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("eval needs string \"authority\""))?,
    )?;
    let slots = value
        .get("slots")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("eval needs integer \"slots\""))?;
    let policy = policy_from_json(
        value
            .get("policy")
            .ok_or_else(|| bad("eval needs a \"policy\""))?,
    )?;
    let plan = plan_from_json(
        value
            .get("plan")
            .ok_or_else(|| bad("eval needs a \"plan\""))?,
    )?;
    Ok(EvalRequest {
        nodes: nodes as usize,
        topology,
        authority,
        slots,
        policy,
        plan,
    })
}

/// Renders an `eval` request line.
#[must_use]
pub fn render_eval(request: &EvalRequest) -> String {
    Json::Obj(vec![
        ("op".to_string(), Json::str("eval")),
        ("nodes".to_string(), Json::UInt(request.nodes as u64)),
        (
            "topology".to_string(),
            Json::str(topology_token(request.topology)),
        ),
        (
            "authority".to_string(),
            Json::str(authority_token(request.authority)),
        ),
        ("slots".to_string(), Json::UInt(request.slots)),
        ("policy".to_string(), policy_to_json(request.policy)),
        ("plan".to_string(), plan_to_json(&request.plan)),
    ])
    .render()
}

/// Renders a `submit` request line.
#[must_use]
pub fn render_submit(spec: &JobSpec, workers: Option<usize>) -> String {
    let mut fields = vec![("op".to_string(), Json::str("submit"))];
    if let Some(workers) = workers {
        fields.push(("workers".to_string(), Json::UInt(workers as u64)));
    }
    fields.push(("spec".to_string(), spec.to_json()));
    Json::Obj(fields).render()
}

// ---------------------------------------------------------------------
// Fault plans on the wire.
// ---------------------------------------------------------------------

fn persistence_to_json(p: FaultPersistence) -> Json {
    match p {
        FaultPersistence::Transient => Json::str("transient"),
        FaultPersistence::Permanent => Json::str("permanent"),
        FaultPersistence::Intermittent { period, duty } => Json::Obj(vec![(
            "intermittent".to_string(),
            Json::Obj(vec![
                ("period".to_string(), Json::UInt(period)),
                ("duty".to_string(), Json::UInt(duty)),
            ]),
        )]),
    }
}

fn persistence_from_json(value: &Json) -> Result<FaultPersistence, SpecError> {
    match value {
        Json::Str(s) if s == "transient" => Ok(FaultPersistence::Transient),
        Json::Str(s) if s == "permanent" => Ok(FaultPersistence::Permanent),
        Json::Obj(_) => {
            let inner = value
                .get("intermittent")
                .ok_or_else(|| bad("persistence object needs \"intermittent\""))?;
            let period = inner
                .get("period")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("intermittent needs integer \"period\""))?;
            let duty = inner
                .get("duty")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("intermittent needs integer \"duty\""))?;
            if period == 0 || !(1..=period).contains(&duty) {
                return Err(bad("intermittent needs period > 0 and duty in 1..=period"));
            }
            Ok(FaultPersistence::Intermittent { period, duty })
        }
        _ => Err(bad(
            "persistence must be \"transient\" | \"permanent\" | {\"intermittent\": ..}",
        )),
    }
}

fn coupler_mode_token(mode: CouplerFaultMode) -> &'static str {
    match mode {
        CouplerFaultMode::None => "none",
        CouplerFaultMode::Silence => "silence",
        CouplerFaultMode::BadFrame => "bad_frame",
        CouplerFaultMode::OutOfSlot => "out_of_slot",
    }
}

fn parse_coupler_mode(token: &str) -> Result<CouplerFaultMode, SpecError> {
    match token {
        "none" => Ok(CouplerFaultMode::None),
        "silence" => Ok(CouplerFaultMode::Silence),
        "bad_frame" => Ok(CouplerFaultMode::BadFrame),
        "out_of_slot" => Ok(CouplerFaultMode::OutOfSlot),
        other => Err(bad(format!("unknown coupler fault mode `{other}`"))),
    }
}

fn node_kind_to_json(kind: NodeFaultKind) -> Json {
    match kind {
        NodeFaultKind::Sos { domain, magnitude } => Json::Obj(vec![(
            "sos".to_string(),
            Json::Obj(vec![
                (
                    "domain".to_string(),
                    Json::str(match domain {
                        SosDomain::Time => "time",
                        SosDomain::Value => "value",
                    }),
                ),
                ("magnitude".to_string(), Json::Float(magnitude)),
            ]),
        )]),
        NodeFaultKind::MasqueradeColdStart { claimed_slot } => Json::Obj(vec![(
            "masquerade_cold_start".to_string(),
            Json::Obj(vec![(
                "claimed_slot".to_string(),
                Json::UInt(u64::from(claimed_slot)),
            )]),
        )]),
        NodeFaultKind::InvalidCState { claimed_slot } => Json::Obj(vec![(
            "invalid_c_state".to_string(),
            Json::Obj(vec![(
                "claimed_slot".to_string(),
                Json::UInt(u64::from(claimed_slot)),
            )]),
        )]),
        NodeFaultKind::Babbling => Json::str("babbling"),
        NodeFaultKind::Mute => Json::str("mute"),
    }
}

fn node_kind_from_json(value: &Json) -> Result<NodeFaultKind, SpecError> {
    match value {
        Json::Str(s) if s == "babbling" => Ok(NodeFaultKind::Babbling),
        Json::Str(s) if s == "mute" => Ok(NodeFaultKind::Mute),
        Json::Obj(_) => {
            if let Some(sos) = value.get("sos") {
                let domain = match sos.get("domain").and_then(Json::as_str) {
                    Some("time") => SosDomain::Time,
                    Some("value") => SosDomain::Value,
                    _ => return Err(bad("sos needs \"domain\": \"time\" | \"value\"")),
                };
                let magnitude = sos
                    .get("magnitude")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("sos needs numeric \"magnitude\""))?;
                if !(0.0..=1.0).contains(&magnitude) {
                    return Err(bad("sos \"magnitude\" must be in [0, 1]"));
                }
                return Ok(NodeFaultKind::Sos { domain, magnitude });
            }
            for (key, make) in [
                (
                    "masquerade_cold_start",
                    (|slot| NodeFaultKind::MasqueradeColdStart { claimed_slot: slot })
                        as fn(u16) -> NodeFaultKind,
                ),
                ("invalid_c_state", |slot| NodeFaultKind::InvalidCState {
                    claimed_slot: slot,
                }),
            ] {
                if let Some(inner) = value.get(key) {
                    let slot = inner
                        .get("claimed_slot")
                        .and_then(Json::as_u64)
                        .and_then(|s| u16::try_from(s).ok())
                        .ok_or_else(|| bad(format!("{key} needs u16 \"claimed_slot\"")))?;
                    return Ok(make(slot));
                }
            }
            Err(bad("unknown node fault kind object"))
        }
        _ => Err(bad("node fault kind must be a string or object")),
    }
}

/// Renders a plan for the wire.
#[must_use]
pub fn plan_to_json(plan: &FaultPlan) -> Json {
    let nodes = plan
        .node_faults()
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("node".to_string(), Json::UInt(u64::from(f.node.index()))),
                ("kind".to_string(), node_kind_to_json(f.kind)),
                ("from_slot".to_string(), Json::UInt(f.from_slot)),
                ("to_slot".to_string(), Json::UInt(f.to_slot)),
                (
                    "persistence".to_string(),
                    persistence_to_json(f.persistence),
                ),
            ])
        })
        .collect();
    let couplers = plan
        .coupler_faults()
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("channel".to_string(), Json::UInt(f.channel as u64)),
                ("mode".to_string(), Json::str(coupler_mode_token(f.mode))),
                ("from_slot".to_string(), Json::UInt(f.from_slot)),
                ("to_slot".to_string(), Json::UInt(f.to_slot)),
                (
                    "persistence".to_string(),
                    persistence_to_json(f.persistence),
                ),
            ])
        })
        .collect();
    // Local-guardian faults are not carried: no current client
    // generates them, and rejecting beats silently dropping.
    Json::Obj(vec![
        ("node_faults".to_string(), Json::Arr(nodes)),
        ("coupler_faults".to_string(), Json::Arr(couplers)),
    ])
}

/// Parses a wire plan.
///
/// # Errors
///
/// Returns a [`SpecError`] naming the malformed event, or rejecting
/// plans whose events violate the simulator's construction invariants
/// (bad channel, empty window, double-coupler overlap).
pub fn plan_from_json(value: &Json) -> Result<FaultPlan, SpecError> {
    let mut plan = FaultPlan::none();
    if let Some(nodes) = value.get("node_faults") {
        for entry in nodes
            .as_arr()
            .ok_or_else(|| bad("\"node_faults\" must be an array"))?
        {
            let node = entry
                .get("node")
                .and_then(Json::as_u64)
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| bad("node fault needs u8 \"node\""))?;
            let fault = NodeFault {
                node: NodeId::new(node),
                kind: node_kind_from_json(
                    entry
                        .get("kind")
                        .ok_or_else(|| bad("node fault needs \"kind\""))?,
                )?,
                from_slot: entry
                    .get("from_slot")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("node fault needs integer \"from_slot\""))?,
                to_slot: entry
                    .get("to_slot")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("node fault needs integer \"to_slot\""))?,
                persistence: persistence_from_json(
                    entry
                        .get("persistence")
                        .ok_or_else(|| bad("node fault needs \"persistence\""))?,
                )?,
            };
            check_window(fault.persistence, fault.from_slot, fault.to_slot)?;
            plan = plan.with_node_fault(fault);
        }
    }
    if let Some(couplers) = value.get("coupler_faults") {
        for entry in couplers
            .as_arr()
            .ok_or_else(|| bad("\"coupler_faults\" must be an array"))?
        {
            let channel = entry
                .get("channel")
                .and_then(Json::as_u64)
                .filter(|c| *c < 2)
                .ok_or_else(|| bad("coupler fault needs \"channel\" 0 or 1"))?;
            let fault = CouplerFaultEvent {
                channel: channel as usize,
                mode: parse_coupler_mode(
                    entry
                        .get("mode")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("coupler fault needs string \"mode\""))?,
                )?,
                from_slot: entry
                    .get("from_slot")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("coupler fault needs integer \"from_slot\""))?,
                to_slot: entry
                    .get("to_slot")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("coupler fault needs integer \"to_slot\""))?,
                persistence: persistence_from_json(
                    entry
                        .get("persistence")
                        .ok_or_else(|| bad("coupler fault needs \"persistence\""))?,
                )?,
            };
            check_window(fault.persistence, fault.from_slot, fault.to_slot)?;
            // `with_coupler_fault` enforces the single-faulty-coupler
            // hypothesis with an assert; pre-check so a hostile or
            // buggy client gets an error line, not a daemon panic.
            for other in plan.coupler_faults() {
                if other.channel != fault.channel
                    && fault.from_slot < other.envelope_end()
                    && other.from_slot < fault.envelope_end()
                {
                    return Err(bad("coupler fault windows on both channels overlap \
                         (single-faulty-coupler hypothesis)"));
                }
            }
            plan = plan.with_coupler_fault(fault);
        }
    }
    Ok(plan)
}

/// Pre-validates a fault window so plan construction cannot panic.
fn check_window(p: FaultPersistence, from: u64, to: u64) -> Result<(), SpecError> {
    match p {
        FaultPersistence::Permanent => Ok(()),
        FaultPersistence::Transient | FaultPersistence::Intermittent { .. } if from < to => Ok(()),
        _ => Err(bad("fault window must satisfy from_slot < to_slot")),
    }
}

// ---------------------------------------------------------------------
// Response lines.
// ---------------------------------------------------------------------

/// `{"type":"ok"}`
#[must_use]
pub fn ok_line() -> String {
    Json::Obj(vec![("type".to_string(), Json::str("ok"))]).render()
}

/// `{"type":"error","message":...}`
#[must_use]
pub fn error_line(message: &str) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("error")),
        ("message".to_string(), Json::str(message)),
    ])
    .render()
}

/// `{"type":"error","message":...,"retryable":true}` — a transient
/// condition the client should back off and retry.
#[must_use]
pub fn retryable_error_line(message: &str) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("error")),
        ("message".to_string(), Json::str(message)),
        ("retryable".to_string(), Json::Bool(true)),
    ])
    .render()
}

/// The deterministic `accepted` header of a submit stream.
#[must_use]
pub fn accepted_line(job_id: &str, trials: u32) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("accepted")),
        ("job".to_string(), Json::str(job_id)),
        ("trials".to_string(), Json::UInt(u64::from(trials))),
    ])
    .render()
}

/// One deterministic trial line of a submit stream. A completed trial
/// renders its full result; a quarantined trial renders
/// `{"type":"trial","index":N,"seed":S,"quarantined":"panic"|"timeout"}`
/// — deterministic like any other trial line.
#[must_use]
pub fn trial_line(verdict: &TrialVerdict) -> String {
    let mut fields = vec![("type".to_string(), Json::str("trial"))];
    fields.extend(verdict_to_fields(verdict));
    Json::Obj(fields).render()
}

/// The deterministic summary fold closing a submit stream. The
/// `quarantined` count appears only when nonzero, so streams without
/// quarantine stay byte-identical to the pre-supervision format.
#[must_use]
pub fn summary_line(job_id: &str, aggregate: &TrialAggregate, quarantined: u64) -> String {
    let mut fields = vec![
        ("type".to_string(), Json::str("summary")),
        ("job".to_string(), Json::str(job_id)),
        ("aggregate".to_string(), aggregate_to_json(aggregate)),
    ];
    if quarantined > 0 {
        fields.push(("quarantined".to_string(), Json::UInt(quarantined)));
    }
    Json::Obj(fields).render()
}

/// The final, *non-deterministic* stats line of a submit stream. Varies
/// with cache warmth and interruption history; consumers must keep it
/// out of byte-compared output.
#[must_use]
pub fn stats_line(stats: &RunStats) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("stats")),
        ("cache_hits".to_string(), Json::UInt(stats.cache_hits)),
        ("computed".to_string(), Json::UInt(stats.computed)),
        (
            "resumed_chunks".to_string(),
            Json::UInt(stats.resumed_chunks),
        ),
        (
            "resumed_trials".to_string(),
            Json::UInt(stats.resumed_trials),
        ),
        ("quarantined".to_string(), Json::UInt(stats.quarantined)),
        (
            "panics_retried".to_string(),
            Json::UInt(stats.panics_retried),
        ),
        (
            "leases_reclaimed".to_string(),
            Json::UInt(stats.leases_reclaimed),
        ),
    ])
    .render()
}

/// Parses a stats line back into [`RunStats`]. The supervision counters
/// (`quarantined`, `panics_retried`, `leases_reclaimed`) default to
/// zero when absent, so stats lines from older daemons still parse.
///
/// # Errors
///
/// Returns a [`SpecError`] if the line is not a stats line.
pub fn stats_from_json(value: &Json) -> Result<RunStats, SpecError> {
    let field = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| bad(format!("stats needs integer \"{key}\"")))
    };
    let optional = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
    Ok(RunStats {
        cache_hits: field("cache_hits")?,
        computed: field("computed")?,
        resumed_chunks: field("resumed_chunks")?,
        resumed_trials: field("resumed_trials")?,
        quarantined: optional("quarantined"),
        panics_retried: optional("panics_retried"),
        leases_reclaimed: optional("leases_reclaimed"),
    })
}

/// Per-job progress detail carried by a `status` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id (hex job hash).
    pub job: String,
    /// Chunks this run must produce.
    pub chunks_total: u64,
    /// Chunks committed so far.
    pub chunks_done: u64,
    /// Chunks currently out on a lease.
    pub chunks_leased: u64,
    /// Trials quarantined so far.
    pub quarantined: u64,
    /// Workers currently executing this job.
    pub workers_active: u64,
}

impl JobStatus {
    /// Snapshots a running job's live progress counters.
    #[must_use]
    pub fn snapshot(job: &str, progress: &JobProgress) -> JobStatus {
        JobStatus {
            job: job.to_string(),
            chunks_total: progress.chunks_total.load(Ordering::Relaxed),
            chunks_done: progress.chunks_done.load(Ordering::Relaxed),
            chunks_leased: progress.chunks_leased.load(Ordering::Relaxed),
            quarantined: progress.quarantined.load(Ordering::Relaxed),
            workers_active: progress.workers_active.load(Ordering::Relaxed),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("job".to_string(), Json::str(self.job.clone())),
            ("chunks_total".to_string(), Json::UInt(self.chunks_total)),
            ("chunks_done".to_string(), Json::UInt(self.chunks_done)),
            ("chunks_leased".to_string(), Json::UInt(self.chunks_leased)),
            ("quarantined".to_string(), Json::UInt(self.quarantined)),
            (
                "workers_active".to_string(),
                Json::UInt(self.workers_active),
            ),
        ])
    }

    fn from_json(value: &Json) -> Option<JobStatus> {
        let count = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        Some(JobStatus {
            job: value.get("job")?.as_str()?.to_string(),
            chunks_total: count("chunks_total"),
            chunks_done: count("chunks_done"),
            chunks_leased: count("chunks_leased"),
            quarantined: count("quarantined"),
            workers_active: count("workers_active"),
        })
    }
}

/// The daemon's one-line status report: aggregate counters, the drain
/// flag, and per-job progress detail.
#[must_use]
pub fn status_line(
    cache_entries: usize,
    jobs_running: usize,
    jobs_done: u64,
    draining: bool,
    jobs: &[JobStatus],
) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("status")),
        (
            "cache_entries".to_string(),
            Json::UInt(cache_entries as u64),
        ),
        ("jobs_running".to_string(), Json::UInt(jobs_running as u64)),
        ("jobs_done".to_string(), Json::UInt(jobs_done)),
        ("draining".to_string(), Json::Bool(draining)),
        (
            "jobs".to_string(),
            Json::Arr(jobs.iter().map(JobStatus::to_json).collect()),
        ),
    ])
    .render()
}

/// Parses the per-job detail array out of a status line. Tolerant of
/// older daemons: a missing `jobs` field yields an empty list.
#[must_use]
pub fn jobs_from_status(value: &Json) -> Vec<JobStatus> {
    value
        .get("jobs")
        .and_then(Json::as_arr)
        .map(|jobs| jobs.iter().filter_map(JobStatus::from_json).collect())
        .unwrap_or_default()
}

/// The `eval` op's single response line.
#[must_use]
pub fn evaluation_line(metrics: &PlanRunMetrics) -> String {
    Json::Obj(vec![
        ("type".to_string(), Json::str("evaluation")),
        (
            "outcome".to_string(),
            Json::str(recovery_token(metrics.outcome)),
        ),
        (
            "availability".to_string(),
            Json::Float(metrics.availability),
        ),
        ("freezes".to_string(), Json::UInt(metrics.freezes as u64)),
        ("restarts".to_string(), Json::UInt(metrics.restarts as u64)),
        (
            "interventions".to_string(),
            Json::UInt(metrics.interventions as u64),
        ),
    ])
    .render()
}

/// Parses an evaluation line back into [`PlanRunMetrics`].
///
/// # Errors
///
/// Returns a [`SpecError`] naming the missing/malformed field.
pub fn evaluation_from_json(value: &Json) -> Result<PlanRunMetrics, SpecError> {
    let counts = |key: &str| {
        value
            .get(key)
            .and_then(Json::as_u64)
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| bad(format!("evaluation needs integer \"{key}\"")))
    };
    Ok(PlanRunMetrics {
        outcome: crate::spec::parse_recovery(
            value
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("evaluation needs string \"outcome\""))?,
        )?,
        availability: value
            .get("availability")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("evaluation needs numeric \"availability\""))?,
        freezes: counts("freezes")?,
        restarts: counts("restarts")?,
        interventions: counts("interventions")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSource;
    use tta_sim::{RecoveryOutcome, Scenario};

    #[test]
    fn submit_request_round_trips() {
        let spec = JobSpec {
            trials: 7,
            ..JobSpec::new(ScenarioSource::Builtin(Scenario::Babbling))
        };
        let line = render_submit(&spec, Some(3));
        match parse_request(&line).unwrap() {
            Request::Submit {
                spec: parsed,
                workers,
            } => {
                assert_eq!(parsed, spec);
                assert_eq!(workers, Some(3));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn eval_request_round_trips_with_a_full_plan() {
        let plan = FaultPlan::none()
            .with_node_fault(NodeFault {
                node: NodeId::new(2),
                kind: NodeFaultKind::Sos {
                    domain: SosDomain::Value,
                    magnitude: 0.625,
                },
                from_slot: 10,
                to_slot: 50,
                persistence: FaultPersistence::Intermittent { period: 6, duty: 2 },
            })
            .with_node_fault(NodeFault {
                node: NodeId::new(0),
                kind: NodeFaultKind::MasqueradeColdStart { claimed_slot: 3 },
                from_slot: 0,
                to_slot: 30,
                persistence: FaultPersistence::Transient,
            })
            .with_coupler_fault(CouplerFaultEvent {
                channel: 1,
                mode: CouplerFaultMode::OutOfSlot,
                from_slot: 100,
                to_slot: 140,
                persistence: FaultPersistence::Transient,
            });
        let request = EvalRequest {
            nodes: 5,
            topology: Topology::Star,
            authority: CouplerAuthority::FullShifting,
            slots: 300,
            policy: RestartPolicy::Immediate,
            plan: plan.clone(),
        };
        let line = render_eval(&request);
        match parse_request(&line).unwrap() {
            Request::Eval(parsed) => {
                assert_eq!(parsed.nodes, 5);
                assert_eq!(parsed.authority, CouplerAuthority::FullShifting);
                assert_eq!(parsed.policy, RestartPolicy::Immediate);
                assert_eq!(parsed.plan, plan);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn hostile_plans_error_instead_of_panicking() {
        // Overlapping coupler windows on both channels (forbidden).
        let line = r#"{"op":"eval","nodes":4,"topology":"star","authority":"passive","slots":100,"policy":"never","plan":{"coupler_faults":[{"channel":0,"mode":"silence","from_slot":0,"to_slot":50,"persistence":"transient"},{"channel":1,"mode":"silence","from_slot":20,"to_slot":60,"persistence":"transient"}]}}"#;
        assert!(parse_request(line).is_err());
        // Empty window.
        let line = r#"{"op":"eval","nodes":4,"topology":"star","authority":"passive","slots":100,"policy":"never","plan":{"node_faults":[{"node":0,"kind":"mute","from_slot":5,"to_slot":5,"persistence":"transient"}]}}"#;
        assert!(parse_request(line).is_err());
        // Bad channel.
        let line = r#"{"op":"eval","nodes":4,"topology":"star","authority":"passive","slots":100,"policy":"never","plan":{"coupler_faults":[{"channel":2,"mode":"silence","from_slot":0,"to_slot":5,"persistence":"transient"}]}}"#;
        assert!(parse_request(line).is_err());
    }

    #[test]
    fn evaluation_lines_round_trip() {
        let metrics = PlanRunMetrics {
            outcome: RecoveryOutcome::DegradedStable,
            availability: 0.7321428571428571,
            freezes: 3,
            restarts: 17,
            interventions: 204,
        };
        let line = evaluation_line(&metrics);
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("type").and_then(Json::as_str), Some("evaluation"));
        let parsed = evaluation_from_json(&value).unwrap();
        assert_eq!(parsed.outcome, metrics.outcome);
        assert_eq!(parsed.availability, metrics.availability);
        assert_eq!(parsed.interventions, metrics.interventions);
    }

    #[test]
    fn quarantined_trial_lines_are_deterministic_and_parse_back() {
        use crate::runner::{QuarantineReason, QuarantinedTrial};
        let verdict = TrialVerdict::Quarantined(QuarantinedTrial {
            index: 12,
            seed: 0xDEAD_BEEF,
            reason: QuarantineReason::Timeout,
        });
        let line = trial_line(&verdict);
        assert_eq!(
            line,
            r#"{"type":"trial","index":12,"seed":3735928559,"quarantined":"timeout"}"#
        );
        let value = Json::parse(&line).unwrap();
        let parsed = crate::spec::verdict_from_json(&value).unwrap();
        assert_eq!(parsed, verdict);
    }

    #[test]
    fn retryable_errors_are_flagged_plain_errors_are_not() {
        let value = Json::parse(&retryable_error_line("draining")).unwrap();
        assert_eq!(value.get("retryable").and_then(Json::as_bool), Some(true));
        let value = Json::parse(&error_line("no such scenario")).unwrap();
        assert!(value.get("retryable").is_none());
    }

    #[test]
    fn status_lines_carry_drain_state_and_job_detail() {
        let jobs = vec![JobStatus {
            job: "00000000deadbeef".to_string(),
            chunks_total: 8,
            chunks_done: 3,
            chunks_leased: 2,
            quarantined: 1,
            workers_active: 4,
        }];
        let line = status_line(100, 1, 7, true, &jobs);
        let value = Json::parse(&line).unwrap();
        assert_eq!(value.get("draining").and_then(Json::as_bool), Some(true));
        assert_eq!(jobs_from_status(&value), jobs);
        // Tolerates a status line with no jobs array (older daemon).
        let value = Json::parse(r#"{"type":"status","jobs_done":0}"#).unwrap();
        assert!(jobs_from_status(&value).is_empty());
    }

    #[test]
    fn stats_lines_round_trip_and_tolerate_missing_supervision_fields() {
        let stats = RunStats {
            cache_hits: 3,
            computed: 21,
            resumed_chunks: 1,
            resumed_trials: 8,
            quarantined: 2,
            panics_retried: 5,
            leases_reclaimed: 1,
        };
        let value = Json::parse(&stats_line(&stats)).unwrap();
        assert_eq!(stats_from_json(&value).unwrap(), stats);
        // A stats line from before supervision existed still parses.
        let old =
            r#"{"type":"stats","cache_hits":1,"computed":2,"resumed_chunks":0,"resumed_trials":0}"#;
        let parsed = stats_from_json(&Json::parse(old).unwrap()).unwrap();
        assert_eq!(parsed.quarantined, 0);
        assert_eq!(parsed.panics_retried, 0);
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"dance\"}").is_err());
        assert!(parse_request("{\"op\":\"submit\"}").is_err());
        let e = parse_request("{\"op\":\"submit\",\"spec\":{}}").unwrap_err();
        assert!(e.0.contains("scenario"), "{e}");
    }
}
