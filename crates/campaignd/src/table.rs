//! Campaign tables, golden-fixture comparison, and the experiment
//! binaries' shared CLI options.
//!
//! This lived in `tta-bench` while only the `exp_*` binaries emitted
//! campaign JSON; with the daemon in the picture, the same table shape
//! and comparator serve four consumers (`exp_fault_injection`,
//! `exp_recovery`, `exp_fuzz`, and the `tta_campaign` CLI), so the one
//! copy lives here and `tta-bench` re-exports it.

use std::path::{Path, PathBuf};

/// One cell of a campaign JSON table: a scenario × configuration
/// combination with its outcome counts and derived metrics.
///
/// The experiment binaries that emit machine-readable campaign results
/// (`exp_fault_injection`, `exp_recovery`) share this shape so CI can
/// diff them against golden fixtures with one comparator.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Scenario name (the campaign's `Display` form).
    pub scenario: String,
    /// Topology name.
    pub topology: String,
    /// Guardian authority name.
    pub authority: String,
    /// Restart policy, for recovery campaigns (omitted from the JSON
    /// when `None`).
    pub policy: Option<String>,
    /// Outcome counts in fixed report order.
    pub outcomes: Vec<(&'static str, u64)>,
    /// Derived metrics in fixed report order; `None` renders as `null`.
    pub metrics: Vec<(&'static str, Option<f64>)>,
}

/// A full campaign table destined for JSON output.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJson {
    /// Experiment identifier ("E9", "E10", "E10-smoke").
    pub experiment: String,
    /// Trials per cell.
    pub trials: u32,
    /// All cells, in sweep order.
    pub cells: Vec<CampaignCell>,
}

impl CampaignJson {
    /// Renders the table as deterministic, line-oriented JSON: one cell
    /// per line, floats fixed to four decimals, keys in declaration
    /// order. Hand-rolled so the output is byte-stable for golden-file
    /// comparison (and because the vendored serde stubs don't serialize).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            json_string(&self.experiment)
        ));
        out.push_str(&format!("  \"trials\": {},\n", self.trials));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let mut fields = vec![
                format!("\"scenario\": {}", json_string(&cell.scenario)),
                format!("\"topology\": {}", json_string(&cell.topology)),
                format!("\"authority\": {}", json_string(&cell.authority)),
            ];
            if let Some(policy) = &cell.policy {
                fields.push(format!("\"policy\": {}", json_string(policy)));
            }
            let outcomes = cell
                .outcomes
                .iter()
                .map(|(k, v)| format!("{}: {v}", json_string(k)))
                .collect::<Vec<_>>()
                .join(", ");
            fields.push(format!("\"outcomes\": {{{outcomes}}}"));
            let metrics = cell
                .metrics
                .iter()
                .map(|(k, v)| {
                    let rendered = v.map_or_else(|| "null".to_string(), |x| format!("{x:.4}"));
                    format!("{}: {rendered}", json_string(k))
                })
                .collect::<Vec<_>>()
                .join(", ");
            fields.push(format!("\"metrics\": {{{metrics}}}"));
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!("    {{{}}}{comma}\n", fields.join(", ")));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Line-diffs rendered campaign JSON against a golden fixture. Returns
/// the first mismatch (line number, expected, actual) as a displayable
/// error so CI failures point at the drifted cell, not just "differs".
///
/// # Errors
///
/// Returns a description of the first differing line, or a length
/// mismatch if one output is a prefix of the other.
pub fn diff_campaign_json(golden: &str, actual: &str) -> Result<(), String> {
    let golden_lines: Vec<&str> = golden.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    for (i, (g, a)) in golden_lines.iter().zip(actual_lines.iter()).enumerate() {
        if g != a {
            return Err(format!("line {}:\n  golden: {g}\n  actual: {a}", i + 1));
        }
    }
    if golden_lines.len() != actual_lines.len() {
        return Err(format!(
            "line count differs: golden {} vs actual {}",
            golden_lines.len(),
            actual_lines.len()
        ));
    }
    Ok(())
}

/// Checks rendered campaign JSON against the golden fixture at `path`,
/// printing a verdict. Returns `false` (and prints the first diff) on
/// drift — callers exit nonzero so CI fails.
#[must_use]
pub fn check_against_golden(path: &Path, actual: &str) -> bool {
    match std::fs::read_to_string(path) {
        Err(e) => {
            eprintln!("error: cannot read golden fixture {}: {e}", path.display());
            false
        }
        Ok(golden) => match diff_campaign_json(&golden, actual) {
            Ok(()) => {
                println!("golden fixture {}: ok", path.display());
                true
            }
            Err(why) => {
                eprintln!("golden fixture {} drifted at {why}", path.display());
                false
            }
        },
    }
}

/// Command-line options shared by the campaign experiment binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignArgs {
    /// `--threads N`: pin the campaign worker count.
    pub threads: Option<usize>,
    /// `--json [PATH]`: emit the campaign JSON (to PATH, or stdout).
    pub json: bool,
    /// The PATH given to `--json`, if any.
    pub json_path: Option<PathBuf>,
    /// `--check GOLDEN`: diff the JSON against a golden fixture and
    /// exit nonzero on drift.
    pub check: Option<PathBuf>,
    /// `--smoke`: run the reduced deterministic sweep (only accepted
    /// when the binary offers one).
    pub smoke: bool,
    /// `--daemon [SOCKET]`: route the campaign through the
    /// `tta-campaignd` service instead of running trials inline. With a
    /// SOCKET, talk to the daemon listening there; without one, spin up
    /// a private in-process daemon on a temporary state directory and
    /// tear it down afterwards.
    pub daemon: bool,
    /// The SOCKET given to `--daemon`, if any.
    pub daemon_socket: Option<PathBuf>,
}

impl CampaignArgs {
    /// Parses `std::env::args`, exiting with the usage string on
    /// errors. `allow_smoke` gates the `--smoke` flag.
    #[must_use]
    pub fn parse(usage: &str, allow_smoke: bool) -> CampaignArgs {
        let mut args = CampaignArgs::default();
        let mut iter = std::env::args().skip(1).peekable();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                    Some(n) if n > 0 => args.threads = Some(n),
                    _ => die(usage, "--threads needs a positive integer"),
                },
                "--json" => {
                    args.json = true;
                    // An optional PATH: consume the next token unless it
                    // is another flag.
                    if let Some(next) = iter.peek() {
                        if !next.starts_with("--") {
                            args.json_path = Some(PathBuf::from(iter.next().expect("peeked")));
                        }
                    }
                }
                "--check" => match iter.next() {
                    Some(path) => args.check = Some(PathBuf::from(path)),
                    None => die(usage, "--check needs a fixture path"),
                },
                "--daemon" => {
                    args.daemon = true;
                    // Like --json: an optional operand.
                    if let Some(next) = iter.peek() {
                        if !next.starts_with("--") {
                            args.daemon_socket = Some(PathBuf::from(iter.next().expect("peeked")));
                        }
                    }
                }
                "--smoke" if allow_smoke => args.smoke = true,
                other => die(usage, &format!("unknown argument {other}")),
            }
        }
        args
    }
}

fn die(usage: &str, why: &str) -> ! {
    eprintln!("error: {why}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> CampaignJson {
        CampaignJson {
            experiment: "E10-smoke".to_string(),
            trials: 12,
            cells: vec![
                CampaignCell {
                    scenario: "SOS sender".to_string(),
                    topology: "star".to_string(),
                    authority: "passive".to_string(),
                    policy: Some("never".to_string()),
                    outcomes: vec![("contained", 12), ("recovered", 0)],
                    metrics: vec![("availability", Some(0.98765)), ("mean_ttr", None)],
                },
                CampaignCell {
                    scenario: "coupler replay (out-of-slot)".to_string(),
                    topology: "star".to_string(),
                    authority: "passive".to_string(),
                    policy: None,
                    outcomes: vec![("contained", 0)],
                    metrics: vec![],
                },
            ],
        }
    }

    #[test]
    fn campaign_json_is_line_oriented_and_stable() {
        let rendered = sample_json().render();
        assert!(rendered.contains("\"experiment\": \"E10-smoke\""));
        assert!(rendered.contains("\"policy\": \"never\""));
        // Floats pinned to four decimals, None to null.
        assert!(rendered.contains("\"availability\": 0.9877"));
        assert!(rendered.contains("\"mean_ttr\": null"));
        // The policy-free cell omits the key entirely.
        assert_eq!(rendered.matches("\"policy\"").count(), 1);
        // One cell per line keeps golden diffs cell-granular.
        assert_eq!(rendered.lines().count(), 4 + sample_json().cells.len() + 2);
    }

    #[test]
    fn diff_points_at_the_first_drifted_line() {
        let golden = sample_json().render();
        assert_eq!(diff_campaign_json(&golden, &golden), Ok(()));

        let mut drifted = sample_json();
        drifted.cells[1].outcomes[0].1 = 1;
        let err = diff_campaign_json(&golden, &drifted.render()).unwrap_err();
        assert!(err.contains("line 6"), "{err}");
        assert!(err.contains("\"contained\": 1"), "{err}");

        let mut truncated = sample_json();
        truncated.cells.pop();
        let err = diff_campaign_json(&golden, &truncated.render()).unwrap_err();
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn json_strings_escape_quotes_and_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
    }
}
