//! What a node sees on the two channels during one TDMA slot.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_types::FrameKind;

/// The content of one channel during one slot, as abstracted by the
/// paper's model: a frame kind plus the slot id the frame claims
/// (`id_on_bus`). Silence and bad frames claim no id (0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChannelObservation {
    /// Frame kind on the channel.
    pub kind: FrameKind,
    /// Slot id claimed by the frame; 0 when no id is carried
    /// ([`FrameKind::None`], [`FrameKind::Bad`]).
    pub id: u16,
}

impl ChannelObservation {
    /// Silence on the channel.
    #[must_use]
    pub fn silence() -> Self {
        ChannelObservation {
            kind: FrameKind::None,
            id: 0,
        }
    }

    /// A bad frame / noise on the channel.
    #[must_use]
    pub fn bad() -> Self {
        ChannelObservation {
            kind: FrameKind::Bad,
            id: 0,
        }
    }

    /// A frame of `kind` claiming slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if `kind` carries no id ([`FrameKind::None`],
    /// [`FrameKind::Bad`]) or if `id == 0` for a kind that carries one.
    #[must_use]
    pub fn frame(kind: FrameKind, id: u16) -> Self {
        assert!(
            matches!(
                kind,
                FrameKind::ColdStart | FrameKind::CState | FrameKind::Other
            ),
            "{kind} carries no slot id"
        );
        assert!(id != 0, "frame ids are one-based slot numbers");
        ChannelObservation { kind, id }
    }

    /// How a node whose slot counter reads `believed_slot` judges this
    /// observation.
    #[must_use]
    pub fn judge(self, believed_slot: u16) -> Judgment {
        match self.kind {
            FrameKind::None => Judgment::Null,
            FrameKind::Bad => Judgment::Invalid,
            FrameKind::ColdStart | FrameKind::CState | FrameKind::Other => {
                if self.id == believed_slot {
                    Judgment::Correct
                } else {
                    Judgment::Incorrect
                }
            }
        }
    }
}

impl fmt::Display for ChannelObservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FrameKind::None | FrameKind::Bad => write!(f, "{}", self.kind),
            _ => write!(f, "{}(id={})", self.kind, self.id),
        }
    }
}

/// The verdict a receiver reaches about one slot's traffic on one channel.
///
/// TTP/C distinguishes *null* (silence: neither invalid nor incorrect),
/// *invalid* (coding violations, collisions), *incorrect* (valid but
/// C-state/position disagrees with the receiver) and *correct* frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Judgment {
    /// No activity — does not affect the clique counters.
    Null,
    /// Syntactically bad traffic.
    Invalid,
    /// A valid frame whose claimed position disagrees with the receiver.
    Incorrect,
    /// A valid frame agreeing with the receiver's state.
    Correct,
}

impl Judgment {
    /// Whether this judgment increments the failed-slots counter.
    #[must_use]
    pub fn is_failure(self) -> bool {
        matches!(self, Judgment::Invalid | Judgment::Incorrect)
    }
}

/// Observations on both redundant channels during one slot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ChannelView {
    /// Channel 0 and channel 1 observations.
    pub channels: [ChannelObservation; 2],
}

impl ChannelView {
    /// Both channels silent.
    #[must_use]
    pub fn silent() -> Self {
        ChannelView::default()
    }

    /// Builds a view from two observations.
    #[must_use]
    pub fn new(ch0: ChannelObservation, ch1: ChannelObservation) -> Self {
        ChannelView {
            channels: [ch0, ch1],
        }
    }

    /// The same frame replicated on both channels (the fault-free case).
    #[must_use]
    pub fn both(obs: ChannelObservation) -> Self {
        ChannelView {
            channels: [obs, obs],
        }
    }

    /// Whether any channel carries a cold-start frame.
    #[must_use]
    pub fn has_cold_start(&self) -> bool {
        self.channels.iter().any(|c| c.kind == FrameKind::ColdStart)
    }

    /// Whether any channel carries an explicit-C-state frame.
    #[must_use]
    pub fn has_cstate(&self) -> bool {
        self.channels.iter().any(|c| c.kind == FrameKind::CState)
    }

    /// Whether any channel carries a regular (no-C-state) frame.
    #[must_use]
    pub fn has_other(&self) -> bool {
        self.channels.iter().any(|c| c.kind == FrameKind::Other)
    }

    /// Whether any channel carries traffic of any kind (including noise).
    #[must_use]
    pub fn has_traffic(&self) -> bool {
        self.channels.iter().any(|c| c.kind.is_traffic())
    }

    /// Frames a listening node may integrate on, in channel order
    /// (cold-start and explicit-C-state frames).
    #[must_use]
    pub fn integration_candidates(&self) -> Vec<ChannelObservation> {
        self.channels
            .iter()
            .copied()
            .filter(|c| c.kind.supports_integration())
            .collect()
    }

    /// Joint judgment over both channels for an integrated receiver: the
    /// slot counts *agreed* if either channel carries a correct frame,
    /// *failed* if there is traffic but no correct frame, and neither on
    /// silence.
    #[must_use]
    pub fn joint_judgment(&self, believed_slot: u16) -> Judgment {
        let j0 = self.channels[0].judge(believed_slot);
        let j1 = self.channels[1].judge(believed_slot);
        if j0 == Judgment::Correct || j1 == Judgment::Correct {
            Judgment::Correct
        } else if j0.is_failure() || j1.is_failure() {
            if j0 == Judgment::Incorrect || j1 == Judgment::Incorrect {
                Judgment::Incorrect
            } else {
                Judgment::Invalid
            }
        } else {
            Judgment::Null
        }
    }
}

impl fmt::Display for ChannelView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[ch0: {}, ch1: {}]", self.channels[0], self.channels[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_is_null() {
        assert_eq!(ChannelObservation::silence().judge(3), Judgment::Null);
    }

    #[test]
    fn bad_frames_are_invalid() {
        assert_eq!(ChannelObservation::bad().judge(3), Judgment::Invalid);
    }

    #[test]
    fn position_match_decides_correctness() {
        let obs = ChannelObservation::frame(FrameKind::CState, 3);
        assert_eq!(obs.judge(3), Judgment::Correct);
        assert_eq!(obs.judge(2), Judgment::Incorrect);
    }

    #[test]
    fn replayed_frame_is_incorrect_for_integrated_receiver() {
        // A frame buffered in slot 1 and replayed in slot 2 claims id 1.
        let replay = ChannelObservation::frame(FrameKind::ColdStart, 1);
        assert_eq!(replay.judge(2), Judgment::Incorrect);
    }

    #[test]
    #[should_panic(expected = "carries no slot id")]
    fn silence_cannot_claim_an_id() {
        let _ = ChannelObservation::frame(FrameKind::None, 1);
    }

    #[test]
    #[should_panic(expected = "one-based")]
    fn id_zero_is_rejected() {
        let _ = ChannelObservation::frame(FrameKind::CState, 0);
    }

    #[test]
    fn joint_judgment_prefers_correct_channel() {
        let good = ChannelObservation::frame(FrameKind::CState, 5);
        let view = ChannelView::new(ChannelObservation::bad(), good);
        assert_eq!(view.joint_judgment(5), Judgment::Correct);
    }

    #[test]
    fn joint_judgment_fails_on_traffic_without_correct_frame() {
        let stale = ChannelObservation::frame(FrameKind::CState, 4);
        let view = ChannelView::new(stale, ChannelObservation::silence());
        assert_eq!(view.joint_judgment(5), Judgment::Incorrect);
        let noisy = ChannelView::new(ChannelObservation::bad(), ChannelObservation::silence());
        assert_eq!(noisy.joint_judgment(5), Judgment::Invalid);
    }

    #[test]
    fn joint_judgment_is_null_on_double_silence() {
        assert_eq!(ChannelView::silent().joint_judgment(1), Judgment::Null);
    }

    #[test]
    fn integration_candidates_exclude_regular_and_bad_frames() {
        let view = ChannelView::new(
            ChannelObservation::frame(FrameKind::Other, 2),
            ChannelObservation::frame(FrameKind::ColdStart, 1),
        );
        let candidates = view.integration_candidates();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].kind, FrameKind::ColdStart);
    }

    #[test]
    fn predicates_cover_kinds() {
        let view = ChannelView::new(
            ChannelObservation::frame(FrameKind::ColdStart, 1),
            ChannelObservation::frame(FrameKind::CState, 2),
        );
        assert!(view.has_cold_start());
        assert!(view.has_cstate());
        assert!(!view.has_other());
        assert!(view.has_traffic());
        assert!(!ChannelView::silent().has_traffic());
    }

    #[test]
    fn display_is_compact() {
        let view = ChannelView::both(ChannelObservation::frame(FrameKind::CState, 2));
        assert_eq!(view.to_string(), "[ch0: c_state(id=2), ch1: c_state(id=2)]");
    }
}
