//! Host-side restart policies for frozen controllers.
//!
//! The paper treats `freeze` as absorbing: its propagation criterion is
//! "a healthy node froze", full stop. Real TTP/C deployments recover —
//! the host power-cycles the controller, which re-enters `init`, listens
//! and reintegrates. This module models that host-side loop:
//!
//! * [`RestartPolicy`] says *whether and when* the host restarts a
//!   controller that froze after having started. [`RestartPolicy::Never`]
//!   is the default and preserves the paper's absorbing-freeze semantics.
//! * [`RestartSupervisor`] is the per-node bookkeeping that turns a
//!   policy into concrete restart slots: it watches freeze entries,
//!   answers "is a restart due now?", and counts attempts (for the
//!   exponential backoff and for giving up).
//!
//! The supervisor deliberately governs only *re*-freezes. The initial
//! cold-start dwell in `freeze` belongs to the start-delay policy
//! ([`crate::DelayedStartPolicy`]); a watchdog therefore never fires
//! during cold start — there is nothing to restart before the node has
//! started once.

use serde::{Deserialize, Serialize};
use std::fmt;

/// When (if ever) a host restarts its frozen controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RestartPolicy {
    /// Never restart: `freeze` is absorbing, the paper's semantics and
    /// the default.
    #[default]
    Never,
    /// Restart on the first slot after the freeze.
    Immediate,
    /// Restart with exponential backoff: the *k*-th restart (counting
    /// from 1) comes `backoff_slots * 2^(k-1)` slots after the most
    /// recent freeze (saturating, and at least one slot). After
    /// `max_restarts` restarts the host gives up; `max_restarts = 0` is
    /// equivalent to [`RestartPolicy::Never`].
    BoundedRetry {
        /// Restarts before the host gives up.
        max_restarts: u32,
        /// Base backoff in slots; doubled per attempt.
        backoff_slots: u64,
    },
    /// Never give up: restart whenever the controller has been frozen
    /// for `silence_slots` slots (at least one).
    Watchdog {
        /// Frozen dwell before the watchdog fires.
        silence_slots: u64,
    },
}

impl RestartPolicy {
    /// Slots after the most recent freeze at which the next restart is
    /// due, given that `restarts_used` restarts already happened — or
    /// `None` if this policy never restarts again. Delays are at least
    /// one slot (a controller cannot restart within the slot it froze)
    /// and saturate instead of overflowing.
    #[must_use]
    pub fn restart_delay(&self, restarts_used: u32) -> Option<u64> {
        match *self {
            RestartPolicy::Never => None,
            RestartPolicy::Immediate => Some(1),
            RestartPolicy::BoundedRetry {
                max_restarts,
                backoff_slots,
            } => (restarts_used < max_restarts).then(|| {
                let factor = 1u64.checked_shl(restarts_used).unwrap_or(u64::MAX);
                backoff_slots.saturating_mul(factor).max(1)
            }),
            RestartPolicy::Watchdog { silence_slots } => Some(silence_slots.max(1)),
        }
    }

    /// Whether the policy has given up after `restarts_used` restarts —
    /// a node frozen at that point stays frozen forever.
    #[must_use]
    pub fn exhausted(&self, restarts_used: u32) -> bool {
        self.restart_delay(restarts_used).is_none()
    }
}

impl fmt::Display for RestartPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestartPolicy::Never => f.write_str("never"),
            RestartPolicy::Immediate => f.write_str("immediate"),
            RestartPolicy::BoundedRetry {
                max_restarts,
                backoff_slots,
            } => write!(f, "retry(max {max_restarts}, backoff {backoff_slots})"),
            RestartPolicy::Watchdog { silence_slots } => write!(f, "watchdog({silence_slots})"),
        }
    }
}

/// Per-node restart bookkeeping: tracks the current frozen dwell and the
/// restarts already spent, and schedules the next restart according to a
/// [`RestartPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartSupervisor {
    policy: RestartPolicy,
    frozen_since: Option<u64>,
    restarts: u32,
}

impl RestartSupervisor {
    /// A supervisor that has seen no freeze yet.
    #[must_use]
    pub fn new(policy: RestartPolicy) -> Self {
        RestartSupervisor {
            policy,
            frozen_since: None,
            restarts: 0,
        }
    }

    /// The configured policy.
    #[must_use]
    pub fn policy(&self) -> RestartPolicy {
        self.policy
    }

    /// Notes that the supervised controller froze at `slot`. Idempotent
    /// while the controller stays frozen.
    pub fn on_freeze(&mut self, slot: u64) {
        if self.frozen_since.is_none() {
            self.frozen_since = Some(slot);
        }
    }

    /// Whether a restart is due at slot `now`.
    #[must_use]
    pub fn restart_due(&self, now: u64) -> bool {
        let Some(frozen) = self.frozen_since else {
            return false;
        };
        self.policy
            .restart_delay(self.restarts)
            .is_some_and(|delay| now >= frozen.saturating_add(delay))
    }

    /// Notes that the host restarted the controller.
    pub fn on_restart(&mut self) {
        self.restarts += 1;
        self.frozen_since = None;
    }

    /// Restarts performed so far.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Slot of the freeze currently being supervised, if the controller
    /// is frozen.
    #[must_use]
    pub fn frozen_since(&self) -> Option<u64> {
        self.frozen_since
    }

    /// Whether the controller is frozen and the policy will never
    /// restart it again.
    #[must_use]
    pub fn gave_up(&self) -> bool {
        self.frozen_since.is_some() && self.policy.exhausted(self.restarts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_delay_table() {
        // (policy, restarts already used, expected delay after the freeze)
        let cases: [(RestartPolicy, u32, Option<u64>); 12] = [
            (RestartPolicy::Never, 0, None),
            (RestartPolicy::Never, 7, None),
            (RestartPolicy::Immediate, 0, Some(1)),
            (RestartPolicy::Immediate, 1000, Some(1)),
            // max_restarts = 0 never restarts: equivalent to Never.
            (bounded(0, 4), 0, None),
            // Exponential backoff: 4, 8, then give up.
            (bounded(2, 4), 0, Some(4)),
            (bounded(2, 4), 1, Some(8)),
            (bounded(2, 4), 2, None),
            // A zero base backoff still waits one slot.
            (bounded(3, 0), 2, Some(1)),
            (RestartPolicy::Watchdog { silence_slots: 6 }, 0, Some(6)),
            (RestartPolicy::Watchdog { silence_slots: 6 }, 99, Some(6)),
            (RestartPolicy::Watchdog { silence_slots: 0 }, 0, Some(1)),
        ];
        for (policy, used, expected) in cases {
            assert_eq!(
                policy.restart_delay(used),
                expected,
                "{policy} after {used} restarts"
            );
            assert_eq!(policy.exhausted(used), expected.is_none(), "{policy}");
        }
    }

    fn bounded(max_restarts: u32, backoff_slots: u64) -> RestartPolicy {
        RestartPolicy::BoundedRetry {
            max_restarts,
            backoff_slots,
        }
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = bounded(u32::MAX, u64::MAX / 2);
        assert_eq!(policy.restart_delay(0), Some(u64::MAX / 2));
        assert_eq!(policy.restart_delay(2), Some(u64::MAX));
        // Shift counts past the word size saturate too.
        assert_eq!(policy.restart_delay(64), Some(u64::MAX));
        assert_eq!(policy.restart_delay(u32::MAX - 1), Some(u64::MAX));
        let tiny = bounded(u32::MAX, 3);
        assert_eq!(tiny.restart_delay(63), Some(u64::MAX));
    }

    #[test]
    fn supervisor_walks_the_backoff_schedule() {
        let mut sup = RestartSupervisor::new(bounded(2, 4));
        assert!(!sup.restart_due(100), "nothing frozen yet");
        sup.on_freeze(10);
        sup.on_freeze(11); // idempotent while frozen
        assert_eq!(sup.frozen_since(), Some(10));
        assert!(!sup.restart_due(13));
        assert!(sup.restart_due(14), "first restart 4 slots after freeze");
        sup.on_restart();
        assert_eq!(sup.restarts(), 1);
        assert!(!sup.restart_due(100), "not frozen after the restart");
        sup.on_freeze(20);
        assert!(!sup.restart_due(27));
        assert!(sup.restart_due(28), "second restart backs off to 8");
        sup.on_restart();
        sup.on_freeze(30);
        assert!(!sup.restart_due(u64::MAX), "budget exhausted");
        assert!(sup.gave_up());
    }

    #[test]
    fn zero_max_restarts_matches_never() {
        let mut never = RestartSupervisor::new(RestartPolicy::Never);
        let mut zero = RestartSupervisor::new(bounded(0, 4));
        for sup in [&mut never, &mut zero] {
            sup.on_freeze(5);
            assert!(!sup.restart_due(5));
            assert!(!sup.restart_due(u64::MAX));
            assert!(sup.gave_up());
        }
    }

    #[test]
    fn watchdog_never_gives_up() {
        let mut sup = RestartSupervisor::new(RestartPolicy::Watchdog { silence_slots: 3 });
        for round in 0..50u64 {
            let freeze = 100 * round;
            sup.on_freeze(freeze);
            assert!(!sup.restart_due(freeze + 2));
            assert!(sup.restart_due(freeze + 3));
            assert!(!sup.gave_up());
            sup.on_restart();
        }
        assert_eq!(sup.restarts(), 50);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(RestartPolicy::Never.to_string(), "never");
        assert_eq!(RestartPolicy::Immediate.to_string(), "immediate");
        assert_eq!(bounded(3, 4).to_string(), "retry(max 3, backoff 4)");
        assert_eq!(
            RestartPolicy::Watchdog { silence_slots: 8 }.to_string(),
            "watchdog(8)"
        );
    }

    #[test]
    fn default_is_never() {
        assert_eq!(RestartPolicy::default(), RestartPolicy::Never);
    }
}
