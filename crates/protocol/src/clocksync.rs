//! Distributed clock synchronization (fault-tolerant average).
//!
//! TTP/C synchronizes node clocks by having every receiver measure the
//! deviation between a frame's *expected* and *actual* arrival time, then
//! periodically applying a fault-tolerant average (FTA) of the collected
//! measurements: the `k` largest and `k` smallest deviations are discarded
//! and the rest averaged. The simulator uses this service to model the
//! clock-rate differences (ρ) that drive the paper's Section 6 buffer
//! analysis; the formal model abstracts it away (one transition = one
//! slot).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Accumulates arrival-time deviation measurements over one round and
/// computes the FTA correction.
///
/// Deviations are in microticks (sub-slot clock units); positive values
/// mean the observed frame arrived later than expected (the local clock is
/// fast).
///
/// # Example
///
/// ```
/// use tta_protocol::clocksync::ClockSync;
///
/// let mut sync = ClockSync::new(1);
/// for d in [4, -2, 100, -90, 3] {
///     sync.record(d);
/// }
/// // 100 and -90 are discarded as the single largest/smallest outliers.
/// assert_eq!(sync.correction(), Some(1)); // avg(4, -2, 3) rounded toward zero
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockSync {
    discard: usize,
    deviations: Vec<i32>,
}

impl ClockSync {
    /// Creates a synchronizer that discards the `discard` largest and
    /// `discard` smallest measurements (the FTA's fault tolerance degree;
    /// `k = 1` tolerates one arbitrarily faulty clock).
    #[must_use]
    pub fn new(discard: usize) -> Self {
        ClockSync {
            discard,
            deviations: Vec::new(),
        }
    }

    /// Records one deviation measurement.
    pub fn record(&mut self, deviation_microticks: i32) {
        self.deviations.push(deviation_microticks);
    }

    /// Number of measurements collected so far.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.deviations.len()
    }

    /// The FTA correction: average of the measurements after discarding
    /// the `k` extremes on each side, rounded toward zero. `None` if not
    /// enough measurements survive the discard.
    #[must_use]
    pub fn correction(&self) -> Option<i32> {
        let surviving = self.deviations.len().checked_sub(2 * self.discard)?;
        if surviving == 0 {
            return None;
        }
        let mut sorted = self.deviations.clone();
        sorted.sort_unstable();
        let kept = &sorted[self.discard..self.discard + surviving];
        let sum: i64 = kept.iter().map(|d| i64::from(*d)).sum();
        Some((sum / kept.len() as i64) as i32)
    }

    /// Applies the correction and clears the window for the next round.
    /// Returns the correction applied (0 if none could be computed).
    pub fn resynchronize(&mut self) -> i32 {
        let correction = self.correction().unwrap_or(0);
        self.deviations.clear();
        correction
    }
}

impl fmt::Display for ClockSync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockSync(k={}, {} samples)",
            self.discard,
            self.deviations.len()
        )
    }
}

/// A drifting local clock, parameterized by a rate deviation in parts per
/// million. Used by the simulator to model the ρ of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingClock {
    rate_ppm: f64,
    local_microticks: f64,
}

impl DriftingClock {
    /// Creates a clock deviating from nominal by `rate_ppm` parts per
    /// million (positive = fast).
    #[must_use]
    pub fn new(rate_ppm: f64) -> Self {
        DriftingClock {
            rate_ppm,
            local_microticks: 0.0,
        }
    }

    /// The configured rate deviation.
    #[must_use]
    pub fn rate_ppm(&self) -> f64 {
        self.rate_ppm
    }

    /// Advances the clock by `nominal` microticks of true time.
    pub fn advance(&mut self, nominal: f64) {
        self.local_microticks += nominal * (1.0 + self.rate_ppm * 1e-6);
    }

    /// Local time in microticks.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.local_microticks
    }

    /// Applies a synchronization correction (subtracting the measured
    /// deviation).
    pub fn correct(&mut self, correction_microticks: i32) {
        self.local_microticks -= f64::from(correction_microticks);
    }

    /// Offset from true time after `nominal` microticks of true time have
    /// elapsed since the last correction, assuming the clock started
    /// aligned.
    #[must_use]
    pub fn offset_from(&self, true_microticks: f64) -> f64 {
        self.local_microticks - true_microticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fta_discards_extremes() {
        let mut s = ClockSync::new(1);
        for d in [10, -10, 1000, -1000] {
            s.record(d);
        }
        assert_eq!(s.correction(), Some(0));
    }

    #[test]
    fn fta_needs_enough_samples() {
        let mut s = ClockSync::new(2);
        s.record(5);
        s.record(5);
        s.record(5);
        s.record(5);
        assert_eq!(s.correction(), None);
        s.record(5);
        assert_eq!(s.correction(), Some(5));
    }

    #[test]
    fn zero_discard_is_plain_average() {
        let mut s = ClockSync::new(0);
        for d in [2, 4, 6] {
            s.record(d);
        }
        assert_eq!(s.correction(), Some(4));
    }

    #[test]
    fn resynchronize_clears_the_window() {
        let mut s = ClockSync::new(0);
        s.record(8);
        assert_eq!(s.resynchronize(), 8);
        assert_eq!(s.sample_count(), 0);
        assert_eq!(s.resynchronize(), 0);
    }

    #[test]
    fn faulty_clock_cannot_shift_the_average_past_the_correct_range() {
        // Classic FTA property: with k=1 and one arbitrary value among
        // otherwise close measurements, the correction stays within the
        // range of the correct measurements.
        let correct = [3, 5, 4];
        for byzantine in [i32::MIN / 2, -77, 0, 99, i32::MAX / 2] {
            let mut s = ClockSync::new(1);
            for d in correct {
                s.record(d);
            }
            s.record(byzantine);
            let corr = s.correction().unwrap();
            assert!((3..=5).contains(&corr), "byzantine {byzantine} gave {corr}");
        }
    }

    #[test]
    fn drifting_clock_accumulates_rate_error() {
        let mut fast = DriftingClock::new(100.0); // +100 ppm
        fast.advance(1_000_000.0);
        assert!((fast.offset_from(1_000_000.0) - 100.0).abs() < 1e-6);

        let mut slow = DriftingClock::new(-100.0);
        slow.advance(1_000_000.0);
        assert!((slow.offset_from(1_000_000.0) + 100.0).abs() < 1e-6);
    }

    #[test]
    fn correction_realigns_clock() {
        let mut c = DriftingClock::new(50.0);
        c.advance(1_000_000.0);
        let offset = c.offset_from(1_000_000.0);
        c.correct(offset.round() as i32);
        assert!(c.offset_from(1_000_000.0).abs() < 1.0);
    }

    #[test]
    fn display_mentions_configuration() {
        let s = ClockSync::new(2);
        assert!(s.to_string().contains("k=2"));
    }
}
