//! Host-side configuration and nondeterminism resolution.
//!
//! The paper's model resolves several choices nondeterministically (when a
//! node leaves `freeze`/`init`, whether a host shuts a node down, which
//! channel's frame an integrating node adopts). [`HostChoices`] selects
//! which of those choices the transition relation *enumerates* — the model
//! checker explores all of them — while a [`HostPolicy`] picks one at a
//! time for simulation.

use crate::controller::{Controller, Transition, TransitionCause};
use serde::{Deserialize, Serialize};
use tta_types::NodeId;

/// Which nondeterministic host behaviors the transition relation includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HostChoices {
    /// Nodes may linger in `freeze` and `init` arbitrarily long, creating
    /// the staggered startups the paper's traces rely on.
    pub staggered_startup: bool,
    /// Hosts may voluntarily shut down (`active → freeze`) or demote
    /// (`active → passive`) their node. The paper's property implicitly
    /// assumes they do not ("the nodes are modeled not to fail").
    pub allow_shutdown: bool,
    /// The host-service states `await` and `test` are reachable from
    /// `freeze`. They are absorbing in this model, so checking
    /// configurations exclude them.
    pub allow_await_test: bool,
}

impl HostChoices {
    /// The configuration the paper's verification runs use: staggered
    /// startup on, host failures off, inert service states off.
    #[must_use]
    pub fn checking() -> Self {
        HostChoices {
            staggered_startup: true,
            allow_shutdown: false,
            allow_await_test: false,
        }
    }

    /// Fully deterministic eager startup (no host nondeterminism at all);
    /// convenient for unit tests and simple simulations.
    #[must_use]
    pub fn eager() -> Self {
        HostChoices {
            staggered_startup: false,
            allow_shutdown: false,
            allow_await_test: false,
        }
    }

    /// Everything enabled — the full relation of the paper's Section 4.3,
    /// including host shutdowns and the inert service states.
    #[must_use]
    pub fn unrestricted() -> Self {
        HostChoices {
            staggered_startup: true,
            allow_shutdown: true,
            allow_await_test: true,
        }
    }
}

impl Default for HostChoices {
    fn default() -> Self {
        HostChoices::checking()
    }
}

/// Resolves nondeterministic choices during simulation.
///
/// `options` always contains at least one entry; implementations return an
/// index into it (clamped by the caller).
pub trait HostPolicy {
    /// Chooses among the enumerated transitions for `node`.
    fn choose(&mut self, node: &Controller, options: &[Transition]) -> usize;
}

/// Always progresses as fast as possible: prefers protocol transitions,
/// then the first host option that changes state.
#[derive(Debug, Clone, Copy, Default)]
pub struct EagerStartPolicy;

impl HostPolicy for EagerStartPolicy {
    fn choose(&mut self, node: &Controller, options: &[Transition]) -> usize {
        options
            .iter()
            .position(|t| t.cause == TransitionCause::Protocol)
            .or_else(|| options.iter().position(|t| t.next != *node))
            .unwrap_or(0)
    }
}

/// Holds each node in `freeze`/`init` for a per-node number of slots, then
/// progresses eagerly — the mechanism behind the staggered startups in the
/// paper's traces (node A starts first, then B, then C and D).
#[derive(Debug, Clone)]
pub struct DelayedStartPolicy {
    delays: Vec<u32>,
    elapsed: Vec<u32>,
}

impl DelayedStartPolicy {
    /// Creates a policy where node *i* begins initialization after
    /// `delays[i]` slots.
    #[must_use]
    pub fn new(delays: Vec<u32>) -> Self {
        let n = delays.len();
        DelayedStartPolicy {
            delays,
            elapsed: vec![0; n],
        }
    }

    /// Remaining delay for `node`, zero when the node may progress.
    #[must_use]
    pub fn remaining(&self, node: NodeId) -> u32 {
        let i = node.as_usize();
        self.delays.get(i).map_or(0, |d| {
            d.saturating_sub(self.elapsed.get(i).copied().unwrap_or(0))
        })
    }
}

impl HostPolicy for DelayedStartPolicy {
    fn choose(&mut self, node: &Controller, options: &[Transition]) -> usize {
        let i = node.node_id().as_usize();
        let elapsed = self.elapsed.get(i).copied().unwrap_or(u32::MAX);
        let delay = self.delays.get(i).copied().unwrap_or(0);
        if elapsed < delay {
            if let Some(e) = self.elapsed.get_mut(i) {
                *e += 1;
            }
            // Prefer staying put while the delay runs.
            if let Some(stay) = options.iter().position(|t| t.next == *node) {
                return stay;
            }
        }
        EagerStartPolicy.choose(node, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChannelView, ProtocolState};

    #[test]
    fn checking_config_matches_paper_assumptions() {
        let c = HostChoices::checking();
        assert!(c.staggered_startup);
        assert!(!c.allow_shutdown);
        assert!(!c.allow_await_test);
        assert_eq!(HostChoices::default(), c);
    }

    #[test]
    fn eager_policy_progresses_through_startup() {
        let mut policy = EagerStartPolicy;
        let mut c = Controller::new(NodeId::new(0), 4);
        let choices = HostChoices::checking();
        for _ in 0..2 {
            c = c.step(&ChannelView::silent(), &choices, &mut policy);
        }
        assert_eq!(c.protocol_state(), ProtocolState::Listen);
    }

    #[test]
    fn delayed_policy_holds_then_releases() {
        let mut policy = DelayedStartPolicy::new(vec![3]);
        let mut c = Controller::new(NodeId::new(0), 4);
        let choices = HostChoices::checking();
        for _ in 0..3 {
            c = c.step(&ChannelView::silent(), &choices, &mut policy);
            assert_eq!(c.protocol_state(), ProtocolState::Freeze);
        }
        c = c.step(&ChannelView::silent(), &choices, &mut policy);
        assert_eq!(c.protocol_state(), ProtocolState::Init);
        assert_eq!(policy.remaining(NodeId::new(0)), 0);
    }

    #[test]
    fn delayed_policy_defaults_missing_nodes_to_eager() {
        let mut policy = DelayedStartPolicy::new(vec![]);
        let mut c = Controller::new(NodeId::new(2), 4);
        let choices = HostChoices::checking();
        c = c.step(&ChannelView::silent(), &choices, &mut policy);
        assert_eq!(c.protocol_state(), ProtocolState::Init);
    }

    #[test]
    fn remaining_counts_down() {
        let mut policy = DelayedStartPolicy::new(vec![2, 5]);
        let c = Controller::new(NodeId::new(1), 4);
        assert_eq!(policy.remaining(NodeId::new(1)), 5);
        let choices = HostChoices::checking();
        let _ = c.step(&ChannelView::silent(), &choices, &mut policy);
        assert_eq!(policy.remaining(NodeId::new(1)), 4);
        assert_eq!(policy.remaining(NodeId::new(0)), 2);
    }
}
