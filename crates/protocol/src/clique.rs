//! Clique-avoidance bookkeeping.
//!
//! Each node counts, per TDMA round, the slots in which it received a
//! correct frame (`agreed_slots_counter`) and the slots with traffic it
//! judged invalid or incorrect (`failed_slots_counter`). At the start of
//! its own slot the node runs the clique-avoidance test; nodes finding
//! themselves in a minority clique must freeze. This mechanism — correct
//! in itself — is what the paper's out-of-slot coupler fault weaponizes
//! against healthy nodes.

use crate::Judgment;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Saturating per-round frame counters (the paper's
/// `agreed_slots_counter` / `failed_slots_counter`).
///
/// Counters saturate at 15, far above any per-round count in the modeled
/// clusters, keeping the packed state small for the model checker.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CliqueCounters {
    agreed: u8,
    failed: u8,
}

/// Saturation bound for each counter.
pub const COUNTER_MAX: u8 = 15;

impl CliqueCounters {
    /// Fresh counters (both zero).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs counters from raw counts — the inverse of
    /// `agreed()`/`failed()`, used by state codecs that bit-pack
    /// controller states for the model checker's visited set.
    ///
    /// # Panics
    ///
    /// Panics if either count exceeds [`COUNTER_MAX`] (such a value can
    /// never come from recording, so it indicates a codec bug).
    #[must_use]
    pub fn from_counts(agreed: u8, failed: u8) -> Self {
        assert!(
            agreed <= COUNTER_MAX && failed <= COUNTER_MAX,
            "counters saturate at {COUNTER_MAX}: agreed={agreed} failed={failed}"
        );
        CliqueCounters { agreed, failed }
    }

    /// Agreed-slots count.
    #[must_use]
    pub fn agreed(self) -> u8 {
        self.agreed
    }

    /// Failed-slots count.
    #[must_use]
    pub fn failed(self) -> u8 {
        self.failed
    }

    /// Records the joint judgment of one slot.
    ///
    /// Only *incorrect* frames — syntactically valid frames whose claimed
    /// position disagrees with the receiver — count as failed slots.
    /// *Invalid* traffic (noise, collisions) is indistinguishable from
    /// channel disturbance and counts as neither agreed nor failed: clique
    /// avoidance resolves *disagreement between nodes about frame
    /// correctness*, not channel noise. (This also matches the paper's
    /// verification outcome: a coupler that only drops or corrupts frames
    /// — passive faults — can never freeze an integrated node, whereas a
    /// replayed frame, being valid but stale, can.)
    #[must_use]
    pub fn record(mut self, judgment: Judgment) -> Self {
        match judgment {
            Judgment::Correct => self.agreed = (self.agreed + 1).min(COUNTER_MAX),
            Judgment::Incorrect => self.failed = (self.failed + 1).min(COUNTER_MAX),
            Judgment::Null | Judgment::Invalid => {}
        }
        self
    }

    /// Records the node's own successful transmission, which TTP/C counts
    /// as an agreed slot.
    #[must_use]
    pub fn record_own_send(mut self) -> Self {
        self.agreed = (self.agreed + 1).min(COUNTER_MAX);
        self
    }

    /// Whether any traffic was recorded this round.
    #[must_use]
    pub fn saw_traffic(self) -> bool {
        self.agreed > 0 || self.failed > 0
    }

    /// The clique-avoidance test for an integrated node: the node may stay
    /// up only if it agreed with a strict majority of the traffic it saw.
    #[must_use]
    pub fn integrated_verdict(self) -> CliqueVerdict {
        if !self.saw_traffic() {
            CliqueVerdict::NoTraffic
        } else if self.agreed > self.failed {
            CliqueVerdict::Majority
        } else {
            CliqueVerdict::Minority
        }
    }

    /// The cold-start variant of the test (paper Section 4.3,
    /// `COLD START`): with at most the node's own frame seen and no
    /// failures, the cold start simply repeats; a majority brings the node
    /// up; anything else sends it back to listen.
    #[must_use]
    pub fn cold_start_verdict(self) -> CliqueVerdict {
        if self.agreed <= 1 && self.failed == 0 {
            CliqueVerdict::NoTraffic
        } else if self.agreed > self.failed {
            CliqueVerdict::Majority
        } else {
            CliqueVerdict::Minority
        }
    }
}

impl fmt::Display for CliqueCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agreed={}, failed={}", self.agreed, self.failed)
    }
}

/// Outcome of a clique-avoidance test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CliqueVerdict {
    /// No (other) traffic was observed; keep waiting / keep cold-starting.
    NoTraffic,
    /// The node agrees with the majority clique and may operate.
    Majority,
    /// The node is in a minority clique and must freeze (integrated) or
    /// fall back to listen (cold start).
    Minority,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_updates_the_right_counter() {
        let c = CliqueCounters::new()
            .record(Judgment::Correct)
            .record(Judgment::Incorrect)
            .record(Judgment::Null);
        assert_eq!(c.agreed(), 1);
        assert_eq!(c.failed(), 1);
    }

    #[test]
    fn invalid_traffic_is_not_a_failed_slot() {
        // Noise and collisions are channel disturbance, not clique
        // disagreement; they must not push a node toward a freeze.
        let c = CliqueCounters::new().record(Judgment::Invalid);
        assert_eq!(c.agreed(), 0);
        assert_eq!(c.failed(), 0);
        assert!(!c.saw_traffic());
    }

    #[test]
    fn counters_saturate() {
        let mut c = CliqueCounters::new();
        for _ in 0..100 {
            c = c.record(Judgment::Correct).record(Judgment::Incorrect);
        }
        assert_eq!(c.agreed(), COUNTER_MAX);
        assert_eq!(c.failed(), COUNTER_MAX);
    }

    #[test]
    fn own_send_counts_as_agreed() {
        let c = CliqueCounters::new().record_own_send();
        assert_eq!(c.agreed(), 1);
        assert!(c.saw_traffic());
    }

    #[test]
    fn integrated_test_requires_strict_majority() {
        let majority = CliqueCounters::new()
            .record(Judgment::Correct)
            .record(Judgment::Correct)
            .record(Judgment::Incorrect);
        assert_eq!(majority.integrated_verdict(), CliqueVerdict::Majority);

        let tie = CliqueCounters::new()
            .record(Judgment::Correct)
            .record(Judgment::Incorrect);
        assert_eq!(tie.integrated_verdict(), CliqueVerdict::Minority);

        let minority = CliqueCounters::new()
            .record(Judgment::Incorrect)
            .record(Judgment::Incorrect);
        assert_eq!(minority.integrated_verdict(), CliqueVerdict::Minority);
    }

    #[test]
    fn integrated_test_tolerates_silence() {
        assert_eq!(
            CliqueCounters::new().integrated_verdict(),
            CliqueVerdict::NoTraffic
        );
    }

    #[test]
    fn cold_start_test_matches_paper() {
        // agreed <= 1 && failed == 0 → keep cold-starting.
        let own_only = CliqueCounters::new().record_own_send();
        assert_eq!(own_only.cold_start_verdict(), CliqueVerdict::NoTraffic);
        assert_eq!(
            CliqueCounters::new().cold_start_verdict(),
            CliqueVerdict::NoTraffic
        );

        // agreed > failed → active.
        let joined = CliqueCounters::new()
            .record_own_send()
            .record(Judgment::Correct);
        assert_eq!(joined.cold_start_verdict(), CliqueVerdict::Majority);

        // otherwise → back to listen.
        let contested = CliqueCounters::new()
            .record_own_send()
            .record(Judgment::Incorrect);
        assert_eq!(contested.cold_start_verdict(), CliqueVerdict::Minority);
    }

    #[test]
    fn display_shows_both_counters() {
        let c = CliqueCounters::new().record(Judgment::Correct);
        assert_eq!(c.to_string(), "agreed=1, failed=0");
    }
}
