//! # tta-protocol
//!
//! The TTP/C protocol controller, modeled at TDMA-slot granularity exactly
//! as in Section 4.3 of *Fault Tolerance Tradeoffs in Moving from
//! Decentralized to Centralized Embedded Systems* (DSN 2004).
//!
//! A [`Controller`] is a small, hashable value type: one controller
//! instance is the per-node state vector of the paper's formal model
//! (protocol state, slot counter, clique-avoidance counters, big-bang
//! flag, listen timeout). Its transition relation is exposed two ways:
//!
//! * [`Controller::successors`] enumerates *all* possible next states for
//!   a given channel observation — this is what the model checker
//!   explores;
//! * [`Controller::step`] resolves the nondeterminism through a
//!   [`HostPolicy`] — this is what the simulator executes.
//!
//! The crate also carries the richer protocol services the simulator
//! exercises: fault-tolerant-average clock synchronization ([`clocksync`])
//! and membership bookkeeping ([`membership`]).
//!
//! # Example
//!
//! ```
//! use tta_protocol::{ChannelView, Controller, HostChoices, ProtocolState};
//!
//! let node = Controller::new(tta_types::NodeId::new(0), 4);
//! assert_eq!(node.protocol_state(), ProtocolState::Freeze);
//!
//! // From freeze, with staggered startup allowed, a node may stay frozen
//! // or begin initialization — both successors exist for the checker.
//! let next = node.successors(&ChannelView::silent(), &HostChoices::checking());
//! assert_eq!(next.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod ack;
pub mod clique;
pub mod clocksync;
mod controller;
pub mod host;
pub mod membership;
mod observation;
pub mod restart;
mod state;

pub use clique::{CliqueCounters, CliqueVerdict};
pub use controller::{
    Controller, ProtocolEvent, SendIntent, Transition, TransitionCause, MAX_COLD_START_ROUNDS,
};
pub use host::{DelayedStartPolicy, EagerStartPolicy, HostChoices, HostPolicy};
pub use observation::{ChannelObservation, ChannelView, Judgment};
pub use restart::{RestartPolicy, RestartSupervisor};
pub use state::ProtocolState;
