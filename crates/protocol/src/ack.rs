//! Implicit acknowledgment (the first/second-successor algorithm).
//!
//! TTP/C senders get no explicit acknowledgments. Instead, after sending,
//! a node watches the membership bit *about itself* in the frames of the
//! next senders (its *successors*): a successor whose frame shows the
//! sender in its membership received the frame correctly. Because the
//! first successor may itself be faulty, a negative or missing first
//! verdict defers to the *second* successor, which arbitrates:
//!
//! * first successor acknowledges → **acknowledged**;
//! * first denies/missing but second acknowledges (and shows the first as
//!   failed) → the first successor was the faulty one — **acknowledged**;
//! * both deny → the sender's own transmission failed — the node must
//!   assume a send fault and freeze (fail-silence enforcement).
//!
//! This is the membership mechanism whose divergence under SOS faults
//! feeds the clique-avoidance shutdowns the paper studies; the simulator
//! models the divergence at the frame level, while this module gives the
//! sender-side state machine a downstream user would expect in a TTP/C
//! library.

use serde::{Deserialize, Serialize};
use std::fmt;
use tta_types::{MembershipVector, NodeId};

/// Verdict of the acknowledgment algorithm for one sent frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AckOutcome {
    /// The first successor saw the frame correctly.
    Acknowledged,
    /// The first successor denied/missed it, but the second successor
    /// acknowledged — the first successor is judged faulty.
    AcknowledgedBySecond,
    /// Both successors deny: the node's own transmission failed.
    SendFault,
}

impl AckOutcome {
    /// Whether the frame is considered delivered.
    #[must_use]
    pub fn is_acknowledged(self) -> bool {
        !matches!(self, AckOutcome::SendFault)
    }
}

impl fmt::Display for AckOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AckOutcome::Acknowledged => "acknowledged by first successor",
            AckOutcome::AcknowledgedBySecond => "acknowledged by second successor",
            AckOutcome::SendFault => "send fault (both successors deny)",
        })
    }
}

/// One successor observation: whether a valid frame arrived in the
/// successor's slot and, if so, the membership it carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuccessorFrame {
    /// No valid frame in the successor's slot.
    Missing,
    /// A valid frame carrying this membership view.
    Valid(MembershipVector),
}

/// Tracks acknowledgment of one sent frame across up to two successors.
///
/// # Example
///
/// ```
/// use tta_protocol::ack::{AckOutcome, AckTracker, SuccessorFrame};
/// use tta_types::{MembershipVector, NodeId};
///
/// let me = NodeId::new(1);
/// let mut tracker = AckTracker::new(me);
/// // The next sender's frame includes me in its membership: delivered.
/// let sees_me = MembershipVector::with_members([0, 1, 2]);
/// assert_eq!(tracker.observe(SuccessorFrame::Valid(sees_me)), Some(AckOutcome::Acknowledged));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckTracker {
    me: NodeId,
    first_verdict: Option<bool>,
    outcome: Option<AckOutcome>,
}

impl AckTracker {
    /// Starts tracking acknowledgment for a frame just sent by `me`.
    #[must_use]
    pub fn new(me: NodeId) -> Self {
        AckTracker {
            me,
            first_verdict: None,
            outcome: None,
        }
    }

    /// Feeds the next successor observation. Returns the final outcome
    /// once it is decided (and keeps returning it thereafter).
    pub fn observe(&mut self, frame: SuccessorFrame) -> Option<AckOutcome> {
        if self.outcome.is_some() {
            return self.outcome;
        }
        let acked = match frame {
            SuccessorFrame::Missing => false,
            SuccessorFrame::Valid(members) => members.contains(self.me),
        };
        match self.first_verdict {
            None if acked => {
                self.outcome = Some(AckOutcome::Acknowledged);
            }
            None => {
                // Defer to the second successor.
                self.first_verdict = Some(false);
            }
            Some(_) => {
                self.outcome = Some(if acked {
                    AckOutcome::AcknowledgedBySecond
                } else {
                    AckOutcome::SendFault
                });
            }
        }
        self.outcome
    }

    /// The decided outcome, if any.
    #[must_use]
    pub fn outcome(&self) -> Option<AckOutcome> {
        self.outcome
    }

    /// Whether the algorithm still waits for successor frames.
    #[must_use]
    pub fn is_pending(&self) -> bool {
        self.outcome.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(ids: &[u8]) -> SuccessorFrame {
        SuccessorFrame::Valid(MembershipVector::with_members(ids.iter().copied()))
    }

    #[test]
    fn first_successor_acknowledges() {
        let mut t = AckTracker::new(NodeId::new(1));
        assert!(t.is_pending());
        assert_eq!(t.observe(members(&[0, 1])), Some(AckOutcome::Acknowledged));
        assert!(!t.is_pending());
    }

    #[test]
    fn second_successor_overrules_a_faulty_first() {
        let mut t = AckTracker::new(NodeId::new(1));
        // First successor's frame does not list me (it missed my frame —
        // or it is faulty).
        assert_eq!(t.observe(members(&[0, 2])), None);
        assert!(t.is_pending());
        // Second successor saw me: the first was the odd one out.
        assert_eq!(
            t.observe(members(&[0, 1, 3])),
            Some(AckOutcome::AcknowledgedBySecond)
        );
    }

    #[test]
    fn missing_first_frame_defers_to_second() {
        let mut t = AckTracker::new(NodeId::new(2));
        assert_eq!(t.observe(SuccessorFrame::Missing), None);
        assert_eq!(
            t.observe(members(&[2])),
            Some(AckOutcome::AcknowledgedBySecond)
        );
    }

    #[test]
    fn double_denial_is_a_send_fault() {
        let mut t = AckTracker::new(NodeId::new(3));
        assert_eq!(t.observe(members(&[0, 1])), None);
        assert_eq!(
            t.observe(SuccessorFrame::Missing),
            Some(AckOutcome::SendFault)
        );
        assert!(!t.outcome().unwrap().is_acknowledged());
    }

    #[test]
    fn outcome_is_sticky() {
        let mut t = AckTracker::new(NodeId::new(0));
        assert_eq!(t.observe(members(&[0])), Some(AckOutcome::Acknowledged));
        // Further observations cannot change a decided outcome.
        assert_eq!(
            t.observe(SuccessorFrame::Missing),
            Some(AckOutcome::Acknowledged)
        );
        assert_eq!(t.outcome(), Some(AckOutcome::Acknowledged));
    }

    #[test]
    fn outcomes_classify_delivery() {
        assert!(AckOutcome::Acknowledged.is_acknowledged());
        assert!(AckOutcome::AcknowledgedBySecond.is_acknowledged());
        assert!(!AckOutcome::SendFault.is_acknowledged());
    }

    #[test]
    fn display_is_informative() {
        assert!(AckOutcome::SendFault.to_string().contains("send fault"));
    }
}
