//! The TTP/C controller transition relation (paper Section 4.3).
//!
//! One [`Controller`] value is the complete per-node state vector of the
//! formal model. One call to [`Controller::successors`] is one TDMA-slot
//! transition: the node observes the two channels, updates its clique
//! counters, big-bang flag, listen timeout and slot counter, and moves
//! through the protocol state machine. All nondeterministic choices the
//! paper models (staggered startup, choice of integration frame, host
//! shutdown) are enumerated; [`Controller::step`] resolves them through a
//! [`HostPolicy`] for simulation.
//!
//! ## Modeling notes (kept faithful to the paper, documented where the
//! paper is silent)
//!
//! * **Slot-position abstraction.** Frames carry the slot id of their
//!   sender (`id_on_bus`); an integrated receiver judges a frame correct
//!   iff that id matches its own slot counter. This is the abstraction of
//!   C-state agreement the paper uses: a replayed frame carries a stale
//!   position and is therefore *incorrect* for integrated receivers but
//!   indistinguishable from a good frame for integrating ones.
//! * **Own slot counts as agreed.** A transmitting node records its own
//!   send as an agreed slot (TTP/C behavior; it makes the paper's
//!   cold-start test `agreed ≤ 1 ∧ failed = 0` read "only my own frame").
//! * **Passive promotion.** The paper's model leaves `passive`
//!   underconstrained. Here a passive node promotes to `active` when the
//!   clique test passes at its own slot, stays passive through silent
//!   rounds, and freezes on a minority verdict — the behavior its traces
//!   exhibit (integrating nodes start sending a round later; node B/D
//!   freeze "due to a clique avoidance error" while passive).
//! * **Protocol vs host freezes.** The paper both allows `active →
//!   freeze` nondeterministically *and* checks that integrated nodes never
//!   freeze. We reconcile this the only consistent way: voluntary host
//!   transitions are tagged [`TransitionCause::Host`] and disabled in
//!   checking configurations ("the nodes are modeled not to fail"); the
//!   checked property watches only [`TransitionCause::Protocol`] freezes.

use crate::clique::{CliqueCounters, CliqueVerdict};
use crate::host::{HostChoices, HostPolicy};
use crate::observation::ChannelView;
use crate::state::ProtocolState;
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_types::{NodeId, SlotIndex};

/// What a node puts on the bus during the current slot, as a function of
/// its current state (the paper's `frame_sent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SendIntent {
    /// The node does not transmit.
    Silent,
    /// A cold-start frame claiming slot `id`.
    ColdStart {
        /// Claimed slot id (the sender's own slot).
        id: u16,
    },
    /// An explicit-C-state frame claiming slot `id`.
    CStateFrame {
        /// Claimed slot id (the sender's own slot).
        id: u16,
    },
}

impl SendIntent {
    /// Whether the node transmits at all.
    #[must_use]
    pub fn is_sending(self) -> bool {
        !matches!(self, SendIntent::Silent)
    }
}

/// Why a transition happened: forced by the protocol rules, or chosen by
/// the (modeled) host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionCause {
    /// The protocol rules force this transition (deterministic
    /// consequences of the channel observation).
    Protocol,
    /// A host decision resolved nondeterminism (startup staggering,
    /// voluntary shutdown, choice of integration frame).
    Host,
}

/// One enumerated successor of a controller.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transition {
    /// The successor state.
    pub next: Controller,
    /// Whether the protocol forced it or the host chose it.
    pub cause: TransitionCause,
}

/// Noteworthy things that happened during one transition, derived by
/// comparing predecessor and successor. Used by trace narration and the
/// simulator's logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolEvent {
    /// The node left `init` and started listening.
    StartedListening,
    /// The listen timeout expired; the node will cold-start.
    ListenTimeoutExpired,
    /// The node observed a first cold-start frame and armed the big-bang
    /// filter.
    ArmedBigBang,
    /// The node integrated on a cold-start frame and adopted slot `id`+1.
    IntegratedOnColdStart {
        /// Id observed on the bus.
        id: u16,
    },
    /// The node integrated on an explicit-C-state frame.
    IntegratedOnCState {
        /// Id observed on the bus.
        id: u16,
    },
    /// The node sent a cold-start frame this slot.
    SentColdStart,
    /// The node sent an explicit-C-state frame this slot.
    SentCState,
    /// A clique test passed; the node (re)enters active operation.
    CliqueTestPassed,
    /// A clique test failed; the integrated node froze.
    FrozeOnCliqueError,
    /// A cold-start clique test failed; the node fell back to listen.
    ColdStartAbandoned,
    /// The host shut the node down or demoted it.
    HostIntervention,
}

/// The per-node state vector of the paper's formal model.
///
/// Controllers are cheap to copy and hash; the model checker stores
/// millions of them. Fields that are meaningless in the current protocol
/// state are kept at canonical values so that semantically identical
/// states collide in the visited set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Controller {
    node_id: NodeId,
    slots_per_round: u16,
    state: ProtocolState,
    /// Current slot in the TDMA schedule (1-based); canonical 1 outside
    /// slot-keeping states.
    slot: u16,
    counters: CliqueCounters,
    big_bang: bool,
    listen_timeout: u16,
    /// Unsuccessful (no-traffic) cold-start rounds so far; canonical 0
    /// outside `cold_start`. See [`MAX_COLD_START_ROUNDS`].
    cold_start_rounds: u8,
}

/// Maximum consecutive no-traffic cold-start rounds before a node
/// abandons its attempt and returns to `listen` (TTP/C's bounded
/// cold-start entries). Bounding the retries is what resolves persistent
/// cold-start contention: two nodes whose timeouts expired in the same
/// slot collide round after round (their frames merge into noise), but
/// after this many fruitless rounds both fall back to `listen`, where the
/// node-unique listen timeouts break the symmetry.
pub const MAX_COLD_START_ROUNDS: u8 = 3;

impl Controller {
    /// Creates a controller in the initial `freeze` state.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_round == 0` or the node's slot lies outside
    /// the round.
    #[must_use]
    pub fn new(node_id: NodeId, slots_per_round: u16) -> Self {
        assert!(slots_per_round > 0, "a round needs at least one slot");
        assert!(
            u16::from(node_id.index()) < slots_per_round,
            "node {node_id} has no slot in a round of {slots_per_round}"
        );
        Controller {
            node_id,
            slots_per_round,
            state: ProtocolState::Freeze,
            slot: 1,
            counters: CliqueCounters::new(),
            big_bang: false,
            listen_timeout: 0,
            cold_start_rounds: 0,
        }
    }

    /// Reassembles a controller from its accessor-visible parts — the
    /// inverse of the accessors, used by state codecs that bit-pack
    /// controller states for the model checker's visited set.
    ///
    /// `slot` is the raw slot-counter value; pass the canonical `1` for
    /// states that keep no slot counter (what the accessor reports as
    /// `None`). Likewise `listen_timeout` and `cold_start_rounds` must be
    /// at their canonical `0` outside `listen` / `cold_start`.
    ///
    /// # Panics
    ///
    /// Panics on values no reachable controller can hold (an out-of-round
    /// slot, a timeout beyond `listen_timeout_init`, retry counts at or
    /// past [`MAX_COLD_START_ROUNDS`]) — any such input indicates a codec
    /// bug, not a model state.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        node_id: NodeId,
        slots_per_round: u16,
        state: ProtocolState,
        slot: u16,
        counters: CliqueCounters,
        big_bang: bool,
        listen_timeout: u16,
        cold_start_rounds: u8,
    ) -> Self {
        let template = Controller::new(node_id, slots_per_round);
        assert!(
            slot >= 1 && slot <= slots_per_round,
            "slot {slot} outside round of {slots_per_round}"
        );
        assert!(
            listen_timeout <= template.listen_timeout_init(),
            "listen timeout {listen_timeout} beyond its initial value"
        );
        assert!(
            cold_start_rounds < MAX_COLD_START_ROUNDS,
            "{cold_start_rounds} cold-start rounds would already have reset to listen"
        );
        Controller {
            node_id,
            slots_per_round,
            state,
            slot,
            counters,
            big_bang,
            listen_timeout,
            cold_start_rounds,
        }
    }

    /// The node this controller belongs to.
    #[must_use]
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// Slots per TDMA round.
    #[must_use]
    pub fn slots_per_round(&self) -> u16 {
        self.slots_per_round
    }

    /// Current protocol state.
    #[must_use]
    pub fn protocol_state(&self) -> ProtocolState {
        self.state
    }

    /// Current slot counter, if the state keeps one.
    #[must_use]
    pub fn slot(&self) -> Option<SlotIndex> {
        self.state
            .keeps_slot_counter()
            .then(|| SlotIndex::new(self.slot))
    }

    /// Clique counters accumulated this round.
    #[must_use]
    pub fn counters(&self) -> CliqueCounters {
        self.counters
    }

    /// Whether the big-bang filter is armed (a first cold-start frame has
    /// been seen in `listen`).
    #[must_use]
    pub fn big_bang_armed(&self) -> bool {
        self.big_bang
    }

    /// Remaining listen timeout in slots (0 outside `listen`).
    #[must_use]
    pub fn listen_timeout(&self) -> u16 {
        self.listen_timeout
    }

    /// Fruitless cold-start rounds so far (0 outside `cold_start`).
    #[must_use]
    pub fn cold_start_rounds(&self) -> u8 {
        self.cold_start_rounds
    }

    /// Whether the node is integrated (`active` or `passive`).
    #[must_use]
    pub fn is_integrated(&self) -> bool {
        self.state.is_integrated()
    }

    /// The node's statically assigned slot number (identity schedule:
    /// node *i* owns slot *i + 1*).
    #[must_use]
    pub fn own_slot(&self) -> u16 {
        u16::from(self.node_id.index()) + 1
    }

    /// Initial listen-timeout value: one full round plus the node's own
    /// slot number (paper: "initialized with the number of slots plus the
    /// number of the slot that is assigned to the node").
    #[must_use]
    pub fn listen_timeout_init(&self) -> u16 {
        self.slots_per_round + self.own_slot()
    }

    /// What the node transmits during the *current* slot — a pure function
    /// of the current state (the paper's `frame_sent`).
    #[must_use]
    pub fn send_intent(&self) -> SendIntent {
        match self.state {
            ProtocolState::Active if self.slot == self.own_slot() => {
                SendIntent::CStateFrame { id: self.slot }
            }
            ProtocolState::ColdStart if self.slot == self.own_slot() => {
                SendIntent::ColdStart { id: self.slot }
            }
            _ => SendIntent::Silent,
        }
    }

    /// Enumerates every possible next state for the given channel view —
    /// the transition relation `R` restricted to this node.
    ///
    /// Successors are deduplicated; protocol-forced successors come before
    /// host alternatives for the same source state.
    #[must_use]
    pub fn successors(&self, view: &ChannelView, choices: &HostChoices) -> Vec<Transition> {
        let mut out = Vec::with_capacity(4);
        match self.state {
            ProtocolState::Freeze => {
                // freeze → {freeze, init} (+ await/test when enabled).
                self.push(
                    &mut out,
                    self.reset_to(ProtocolState::Init),
                    TransitionCause::Host,
                );
                if choices.staggered_startup {
                    self.push(&mut out, *self, TransitionCause::Host);
                }
                if choices.allow_await_test {
                    self.push(
                        &mut out,
                        self.reset_to(ProtocolState::Await),
                        TransitionCause::Host,
                    );
                    self.push(
                        &mut out,
                        self.reset_to(ProtocolState::Test),
                        TransitionCause::Host,
                    );
                }
            }
            ProtocolState::Init => {
                // init → {init, listen} (+ freeze when shutdown allowed).
                self.push(&mut out, self.enter_listen(), TransitionCause::Host);
                if choices.staggered_startup {
                    self.push(&mut out, *self, TransitionCause::Host);
                }
                if choices.allow_shutdown {
                    self.push(
                        &mut out,
                        self.reset_to(ProtocolState::Freeze),
                        TransitionCause::Host,
                    );
                }
            }
            ProtocolState::Listen => self.listen_successors(view, &mut out),
            ProtocolState::ColdStart => {
                self.push(
                    &mut out,
                    self.integrated_step(view, true),
                    TransitionCause::Protocol,
                );
            }
            ProtocolState::Active => {
                self.push(
                    &mut out,
                    self.integrated_step(view, false),
                    TransitionCause::Protocol,
                );
                if choices.allow_shutdown {
                    self.push(
                        &mut out,
                        self.reset_to(ProtocolState::Freeze),
                        TransitionCause::Host,
                    );
                    let mut demoted = *self;
                    demoted.state = ProtocolState::Passive;
                    self.push(&mut out, demoted.advanced(view), TransitionCause::Host);
                }
            }
            ProtocolState::Passive => {
                self.push(
                    &mut out,
                    self.integrated_step(view, false),
                    TransitionCause::Protocol,
                );
            }
            ProtocolState::Await | ProtocolState::Test | ProtocolState::Download => {
                // Inert host-service states: unconstrained in the paper,
                // modeled as absorbing.
                self.push(&mut out, *self, TransitionCause::Host);
            }
        }
        out
    }

    /// Executes one slot, letting `policy` resolve the nondeterminism.
    #[must_use]
    pub fn step<P: HostPolicy + ?Sized>(
        &self,
        view: &ChannelView,
        choices: &HostChoices,
        policy: &mut P,
    ) -> Controller {
        let options = self.successors(view, choices);
        debug_assert!(!options.is_empty(), "transition relation is total");
        if options.len() == 1 {
            return options[0].next;
        }
        let pick = policy.choose(self, &options).min(options.len() - 1);
        options[pick].next
    }

    fn push(&self, out: &mut Vec<Transition>, next: Controller, cause: TransitionCause) {
        if !out.iter().any(|t| t.next == next) {
            out.push(Transition { next, cause });
        }
    }

    /// A controller reset to `state` with all auxiliary variables at
    /// canonical values.
    fn reset_to(&self, state: ProtocolState) -> Controller {
        Controller {
            node_id: self.node_id,
            slots_per_round: self.slots_per_round,
            state,
            slot: 1,
            counters: CliqueCounters::new(),
            big_bang: false,
            listen_timeout: 0,
            cold_start_rounds: 0,
        }
    }

    fn enter_listen(&self) -> Controller {
        let mut c = self.reset_to(ProtocolState::Listen);
        c.listen_timeout = self.listen_timeout_init();
        c
    }

    fn enter_cold_start(&self) -> Controller {
        let mut c = self.reset_to(ProtocolState::ColdStart);
        c.slot = self.own_slot();
        c
    }

    /// LISTEN-state successors (paper Section 4.3, `LISTEN`).
    fn listen_successors(&self, view: &ChannelView, out: &mut Vec<Transition>) {
        let candidates = view.integration_candidates();
        let integratable: Vec<_> = candidates
            .iter()
            .filter(|obs| match obs.kind {
                tta_types::FrameKind::ColdStart => self.big_bang,
                _ => true, // explicit C-state integrates immediately
            })
            .copied()
            .collect();

        if !integratable.is_empty() {
            // Integrating: adopt id_on_bus + 1 and go passive. If the two
            // channels offer frames with *different* ids, each choice is a
            // distinct successor (resolved nondeterministically).
            let mut targets: Vec<Controller> = Vec::with_capacity(2);
            for obs in integratable {
                let mut c = self.reset_to(ProtocolState::Passive);
                c.slot = SlotIndex::new(obs.id)
                    .integration_successor(self.slots_per_round)
                    .get();
                if !targets.contains(&c) {
                    targets.push(c);
                }
            }
            let cause = if targets.len() > 1 {
                TransitionCause::Host
            } else {
                TransitionCause::Protocol
            };
            for c in targets {
                self.push(out, c, cause);
            }
            return;
        }

        // Not integrating: maintain big_bang and the timeout.
        let mut c = *self;
        if view.has_cold_start() {
            c.big_bang = true;
        }
        if view.has_cold_start() || view.has_other() {
            c.listen_timeout = self.listen_timeout_init();
        } else {
            c.listen_timeout = c.listen_timeout.saturating_sub(1);
        }

        // An unconsumed cold-start frame keeps the node listening even at
        // timeout zero; otherwise timeout expiry begins a cold start.
        let next = if view.has_cold_start() {
            c
        } else if self.listen_timeout == 0 {
            self.enter_cold_start()
        } else {
            c
        };
        self.push(out, next, TransitionCause::Protocol);
    }

    /// Common transition for slot-keeping states (`cold_start`, `active`,
    /// `passive`): count the slot's traffic, advance the slot counter, and
    /// run the clique test when the node's own slot comes up again.
    fn integrated_step(&self, view: &ChannelView, cold_start: bool) -> Controller {
        let mut c = *self;

        // Count this slot. A transmitting node counts its own send and
        // does not judge the bus (it is driving it); receivers judge the
        // joint channel view.
        if self.send_intent().is_sending() {
            c.counters = c.counters.record_own_send();
        } else {
            c.counters = c.counters.record(view.joint_judgment(self.slot));
        }

        // Advance the slot counter (the paper's next_slot).
        let next_slot = SlotIndex::new(self.slot).next(self.slots_per_round).get();
        c.slot = next_slot;

        // Clique test on re-entering the own slot.
        if next_slot == self.own_slot() {
            let verdict = if cold_start {
                c.counters.cold_start_verdict()
            } else {
                c.counters.integrated_verdict()
            };
            match (cold_start, verdict) {
                (true, CliqueVerdict::NoTraffic) => {
                    // Keep cold-starting (slot already points at the own
                    // slot) — but only for a bounded number of fruitless
                    // rounds; then fall back to listen so that persistent
                    // cold-start collisions resolve.
                    c.cold_start_rounds = self.cold_start_rounds.saturating_add(1);
                    if c.cold_start_rounds >= MAX_COLD_START_ROUNDS {
                        return self.enter_listen();
                    }
                    c.counters = CliqueCounters::new();
                }
                (true, CliqueVerdict::Majority) => {
                    c.state = ProtocolState::Active;
                    c.counters = CliqueCounters::new();
                }
                (true, CliqueVerdict::Minority) => {
                    return self.enter_listen();
                }
                (false, CliqueVerdict::NoTraffic) => {
                    // Reachable only when passive (an active node's own
                    // sends keep agreed ≥ 1). A freshly integrated node
                    // must start transmitting at its own slot even through
                    // silence — TTP/C integrators acquire their slot and
                    // let the subsequent clique tests police them; a node
                    // that stayed mute would strand a lone cold-starter
                    // (which gives up after MAX_COLD_START_ROUNDS).
                    c.state = ProtocolState::Active;
                    c.counters = CliqueCounters::new();
                }
                (false, CliqueVerdict::Majority) => {
                    c.state = ProtocolState::Active;
                    c.counters = CliqueCounters::new();
                }
                (false, CliqueVerdict::Minority) => {
                    return self.reset_to(ProtocolState::Freeze);
                }
            }
        }
        c
    }

    /// Advances only the slot counter (used for host-demoted nodes so the
    /// demotion does not skip a slot).
    fn advanced(&self, view: &ChannelView) -> Controller {
        let mut c = *self;
        c.counters = c.counters.record(view.joint_judgment(self.slot));
        c.slot = SlotIndex::new(self.slot).next(self.slots_per_round).get();
        c
    }

    /// Derives the noteworthy events of a transition `self → next` under
    /// `view`, for narration and logging.
    #[must_use]
    pub fn events(&self, view: &ChannelView, next: &Controller) -> Vec<ProtocolEvent> {
        let mut events = Vec::new();
        match self.send_intent() {
            SendIntent::ColdStart { .. } => events.push(ProtocolEvent::SentColdStart),
            SendIntent::CStateFrame { .. } => events.push(ProtocolEvent::SentCState),
            SendIntent::Silent => {}
        }
        match (self.state, next.state) {
            (ProtocolState::Init, ProtocolState::Listen) => {
                events.push(ProtocolEvent::StartedListening);
            }
            (ProtocolState::Listen, ProtocolState::ColdStart) => {
                events.push(ProtocolEvent::ListenTimeoutExpired);
            }
            (ProtocolState::Listen, ProtocolState::Passive) => {
                let id = next
                    .slot
                    .checked_sub(1)
                    .filter(|s| *s >= 1)
                    .unwrap_or(self.slots_per_round);
                if view.has_cold_start() && self.big_bang {
                    events.push(ProtocolEvent::IntegratedOnColdStart { id });
                } else {
                    events.push(ProtocolEvent::IntegratedOnCState { id });
                }
            }
            (ProtocolState::Listen, ProtocolState::Listen) if !self.big_bang && next.big_bang => {
                events.push(ProtocolEvent::ArmedBigBang);
            }
            (ProtocolState::ColdStart, ProtocolState::Active)
            | (ProtocolState::Passive, ProtocolState::Active) => {
                events.push(ProtocolEvent::CliqueTestPassed);
            }
            (ProtocolState::ColdStart, ProtocolState::Listen) => {
                events.push(ProtocolEvent::ColdStartAbandoned);
            }
            (ProtocolState::Active, ProtocolState::Freeze)
            | (ProtocolState::Passive, ProtocolState::Freeze) => {
                events.push(ProtocolEvent::FrozeOnCliqueError);
            }
            (ProtocolState::Active, ProtocolState::Passive) => {
                events.push(ProtocolEvent::HostIntervention);
            }
            _ => {}
        }
        events
    }
}

impl fmt::Display for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}", self.node_id, self.state)?;
        if self.state.keeps_slot_counter() {
            write!(f, " slot={}", self.slot)?;
            write!(f, " {}", self.counters)?;
        }
        if self.state == ProtocolState::Listen {
            write!(
                f,
                " timeout={} big_bang={}",
                self.listen_timeout, self.big_bang
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ChannelObservation;
    use tta_types::FrameKind;

    const SLOTS: u16 = 4;

    fn node(i: u8) -> Controller {
        Controller::new(NodeId::new(i), SLOTS)
    }

    fn silent() -> ChannelView {
        ChannelView::silent()
    }

    fn cold_start_frame(id: u16) -> ChannelView {
        ChannelView::both(ChannelObservation::frame(FrameKind::ColdStart, id))
    }

    fn cstate_frame(id: u16) -> ChannelView {
        ChannelView::both(ChannelObservation::frame(FrameKind::CState, id))
    }

    /// Drives a node through its deterministic protocol transitions.
    fn advance(mut c: Controller, views: &[ChannelView]) -> Controller {
        let choices = HostChoices::checking();
        for v in views {
            let succ = c.successors(v, &choices);
            let protocol: Vec<_> = succ
                .iter()
                .filter(|t| t.cause == TransitionCause::Protocol)
                .collect();
            assert_eq!(protocol.len(), 1, "expected deterministic step from {c}");
            c = protocol[0].next;
        }
        c
    }

    /// Bring a node to cold_start by eager startup and timeout expiry.
    fn to_cold_start(i: u8) -> Controller {
        let choices = HostChoices::eager();
        let mut c = node(i);
        // freeze → init → listen
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        assert_eq!(c.protocol_state(), ProtocolState::Listen);
        // count the timeout down
        let timeout = c.listen_timeout();
        for _ in 0..=timeout {
            c = c.successors(&silent(), &choices)[0].next;
        }
        assert_eq!(c.protocol_state(), ProtocolState::ColdStart);
        c
    }

    #[test]
    fn initial_state_is_freeze() {
        let c = node(0);
        assert_eq!(c.protocol_state(), ProtocolState::Freeze);
        assert_eq!(c.slot(), None);
        assert_eq!(c.send_intent(), SendIntent::Silent);
    }

    #[test]
    fn freeze_offers_staggering_when_enabled() {
        let c = node(0);
        let succ = c.successors(&silent(), &HostChoices::checking());
        assert_eq!(succ.len(), 2);
        assert!(succ
            .iter()
            .any(|t| t.next.protocol_state() == ProtocolState::Init));
        assert!(succ
            .iter()
            .any(|t| t.next.protocol_state() == ProtocolState::Freeze));
        let eager = c.successors(&silent(), &HostChoices::eager());
        assert_eq!(eager.len(), 1);
        assert_eq!(eager[0].next.protocol_state(), ProtocolState::Init);
    }

    #[test]
    fn await_and_test_reachable_only_when_enabled() {
        let c = node(0);
        let with = c.successors(
            &silent(),
            &HostChoices {
                allow_await_test: true,
                ..HostChoices::checking()
            },
        );
        assert!(with
            .iter()
            .any(|t| t.next.protocol_state() == ProtocolState::Await));
        assert!(with
            .iter()
            .any(|t| t.next.protocol_state() == ProtocolState::Test));
        let without = c.successors(&silent(), &HostChoices::checking());
        assert!(without.iter().all(|t| !t.next.protocol_state().is_inert()));
    }

    #[test]
    fn listen_timeout_is_slots_plus_own_slot() {
        let choices = HostChoices::eager();
        let mut c = node(2);
        c = c.successors(&silent(), &choices)[0].next; // init
        c = c.successors(&silent(), &choices)[0].next; // listen
        assert_eq!(c.listen_timeout(), SLOTS + 3);
    }

    #[test]
    fn timeout_expiry_starts_cold_start_in_own_slot() {
        let c = to_cold_start(0);
        assert_eq!(c.slot(), Some(SlotIndex::new(1)));
        assert_eq!(c.send_intent(), SendIntent::ColdStart { id: 1 });
    }

    #[test]
    fn traffic_resets_listen_timeout() {
        let choices = HostChoices::eager();
        let mut c = node(0);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        let initial = c.listen_timeout();
        c = advance(c, &[silent(), silent()]);
        assert_eq!(c.listen_timeout(), initial - 2);
        // A regular frame resets the countdown.
        let other = ChannelView::both(ChannelObservation::frame(FrameKind::Other, 2));
        c = advance(c, &[other]);
        assert_eq!(c.listen_timeout(), initial);
    }

    #[test]
    fn first_cold_start_frame_arms_big_bang_only() {
        let c0 = node(1);
        let choices = HostChoices::eager();
        let mut c = c0.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        assert!(!c.big_bang_armed());
        let c = advance(c, &[cold_start_frame(1)]);
        assert_eq!(c.protocol_state(), ProtocolState::Listen);
        assert!(c.big_bang_armed());
    }

    #[test]
    fn second_cold_start_frame_integrates() {
        let choices = HostChoices::eager();
        let mut c = node(1);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        let c = advance(c, &[cold_start_frame(1), cold_start_frame(1)]);
        assert_eq!(c.protocol_state(), ProtocolState::Passive);
        // Adopted id_on_bus + 1.
        assert_eq!(c.slot(), Some(SlotIndex::new(2)));
    }

    #[test]
    fn cstate_frame_integrates_immediately() {
        let choices = HostChoices::eager();
        let mut c = node(2);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        let c = advance(c, &[cstate_frame(4)]);
        assert_eq!(c.protocol_state(), ProtocolState::Passive);
        // id 4 is the last slot; wraps to 1.
        assert_eq!(c.slot(), Some(SlotIndex::new(1)));
    }

    #[test]
    fn integration_choice_is_nondeterministic_across_channels() {
        let choices = HostChoices::checking();
        let mut c = node(1);
        c = c.successors(&silent(), &HostChoices::eager())[0]
            .next
            .successors(&silent(), &HostChoices::eager())[0]
            .next;
        let view = ChannelView::new(
            ChannelObservation::frame(FrameKind::CState, 2),
            ChannelObservation::frame(FrameKind::CState, 3),
        );
        let succ = c.successors(&view, &choices);
        let slots: std::collections::HashSet<_> =
            succ.iter().filter_map(|t| t.next.slot()).collect();
        assert_eq!(slots.len(), 2, "both integration targets enumerated");
    }

    #[test]
    fn unconsumed_cold_start_frame_keeps_node_listening() {
        // Even with timeout at zero, a cold-start frame on the bus (not
        // usable because big_bang is not armed) keeps the node in listen.
        let choices = HostChoices::eager();
        let mut c = node(0);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        let timeout = c.listen_timeout();
        for _ in 0..timeout {
            c = advance(c, &[silent()]);
        }
        assert_eq!(c.listen_timeout(), 0);
        assert_eq!(c.protocol_state(), ProtocolState::Listen);
        // big_bang gets armed by this frame but the node must stay.
        let c2 = advance(c, &[cold_start_frame(1)]);
        assert_eq!(c2.protocol_state(), ProtocolState::Listen);
    }

    #[test]
    fn lone_cold_starter_resends_then_gives_up() {
        let mut c = to_cold_start(0);
        // Fruitless rounds keep the node cold-starting (own send counts
        // agreed = 1) until the bounded retry limit sends it back to
        // listen, where its unique timeout breaks cold-start contention.
        for round in 1..=u16::from(crate::MAX_COLD_START_ROUNDS) {
            for _ in 0..SLOTS {
                c = advance(c, &[silent()]);
            }
            if round < u16::from(crate::MAX_COLD_START_ROUNDS) {
                assert_eq!(
                    c.protocol_state(),
                    ProtocolState::ColdStart,
                    "round {round}"
                );
                assert_eq!(c.cold_start_rounds(), round as u8);
                assert_eq!(c.send_intent(), SendIntent::ColdStart { id: 1 });
            }
        }
        assert_eq!(c.protocol_state(), ProtocolState::Listen);
        assert_eq!(c.listen_timeout(), c.listen_timeout_init());
    }

    #[test]
    fn cold_starter_goes_active_when_joined() {
        let mut c = to_cold_start(0);
        // Own send in slot 1, then a correct C-state frame in slot 3.
        c = advance(c, &[silent()]); // slot 1 → 2
        c = advance(c, &[silent()]); // slot 2 → 3
        c = advance(c, &[cstate_frame(3)]); // slot 3 → 4
        c = advance(c, &[silent()]); // slot 4 → 1, test
        assert_eq!(c.protocol_state(), ProtocolState::Active);
        assert_eq!(c.send_intent(), SendIntent::CStateFrame { id: 1 });
    }

    #[test]
    fn cold_starter_contested_falls_back_to_listen() {
        let mut c = to_cold_start(0);
        c = advance(c, &[silent()]); // own send
        c = advance(c, &[cstate_frame(1)]); // wrong position → failed
        c = advance(c, &[cstate_frame(1)]); // failed again
        c = advance(c, &[silent()]); // round ends, test: 1 agreed vs 2 failed
        assert_eq!(c.protocol_state(), ProtocolState::Listen);
        assert_eq!(c.listen_timeout(), c.listen_timeout_init());
    }

    #[test]
    fn passive_node_promotes_on_majority() {
        // Node B integrates with slot 2, then sees correct traffic.
        let choices = HostChoices::eager();
        let mut c = node(1);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        c = advance(c, &[cold_start_frame(1), cold_start_frame(1)]);
        assert_eq!(c.slot(), Some(SlotIndex::new(2)));
        // Own slot is 2: first test fires immediately with no traffic —
        // node must stay passive, not freeze.
        c = advance(c, &[silent()]); // slot 2 → 3 (own slot is 2; test ran at entry? no: test runs when slot' == own)
                                     // Correct frames in slots 3, 4, 1 → majority at next test.
        c = advance(c, &[cstate_frame(3)]);
        c = advance(c, &[cstate_frame(4)]);
        c = advance(c, &[cstate_frame(1)]); // slot' == 2 → test
        assert_eq!(c.protocol_state(), ProtocolState::Active);
    }

    #[test]
    fn passive_node_acquires_its_slot_even_in_silence() {
        // A freshly integrated node must begin transmitting at its own
        // slot — otherwise a lone cold-starter never hears a response,
        // exhausts its bounded retries and restarts on a fresh phase,
        // stranding the integrator.
        let choices = HostChoices::eager();
        let mut c = node(1);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        c = advance(c, &[cold_start_frame(1), cold_start_frame(1)]);
        assert_eq!(c.protocol_state(), ProtocolState::Passive);
        let mut promoted = false;
        for _ in 0..SLOTS {
            c = advance(c, &[silent()]);
            if c.protocol_state() == ProtocolState::Active {
                promoted = true;
                break;
            }
        }
        assert!(promoted, "integrator must acquire its slot within a round");
        assert_eq!(c.slot(), Some(SlotIndex::new(c.own_slot())));
    }

    #[test]
    fn passive_node_freezes_in_minority() {
        let choices = HostChoices::eager();
        let mut c = node(1);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        c = advance(c, &[cold_start_frame(1), cold_start_frame(1)]);
        assert_eq!(c.slot(), Some(SlotIndex::new(2)));
        // Frames whose position disagrees with B's counter, all round.
        c = advance(c, &[cstate_frame(4)]); // believed 2 → failed
        c = advance(c, &[cstate_frame(4)]); // believed 3 → failed
        c = advance(c, &[cstate_frame(1)]); // believed 4 → failed
        c = advance(c, &[cstate_frame(4)]); // believed 1 → failed, slot'=2 → test
        assert_eq!(c.protocol_state(), ProtocolState::Freeze);
    }

    #[test]
    fn active_node_survives_on_own_sends() {
        let mut c = to_cold_start(0);
        c = advance(c, &[silent()]);
        c = advance(c, &[silent()]);
        c = advance(c, &[cstate_frame(3)]);
        c = advance(c, &[silent()]);
        assert_eq!(c.protocol_state(), ProtocolState::Active);
        // Alone on the bus: own send keeps agreed at 1 > 0 failed.
        for _ in 0..3 * SLOTS {
            c = advance(c, &[silent()]);
        }
        assert_eq!(c.protocol_state(), ProtocolState::Active);
    }

    #[test]
    fn active_node_freezes_when_outvoted() {
        let mut c = to_cold_start(0);
        c = advance(c, &[silent()]);
        c = advance(c, &[silent()]);
        c = advance(c, &[cstate_frame(3)]);
        c = advance(c, &[silent()]);
        assert_eq!(c.protocol_state(), ProtocolState::Active);
        // A round where everything it hears disagrees: own send (agreed=1)
        // plus three incorrect frames (failed=3).
        c = advance(c, &[silent()]); // own slot 1
        c = advance(c, &[cstate_frame(1)]); // believed 2 → failed
        c = advance(c, &[cstate_frame(1)]); // believed 3 → failed
        c = advance(c, &[cstate_frame(1)]); // believed 4 → failed; test at wrap
        assert_eq!(c.protocol_state(), ProtocolState::Freeze);
    }

    #[test]
    fn host_shutdown_is_gated_and_tagged() {
        let mut c = to_cold_start(0);
        for _ in 0..SLOTS {
            c = advance(c, &[silent()]);
        }
        let c = {
            let mut x = c;
            x = advance(x, &[silent()]);
            x = advance(x, &[silent()]);
            x = advance(x, &[cstate_frame(3)]);
            advance(x, &[silent()])
        };
        assert_eq!(c.protocol_state(), ProtocolState::Active);
        let gated = c.successors(&silent(), &HostChoices::checking());
        assert!(gated
            .iter()
            .all(|t| t.next.protocol_state() != ProtocolState::Freeze));
        let open = c.successors(
            &silent(),
            &HostChoices {
                allow_shutdown: true,
                ..HostChoices::checking()
            },
        );
        let host_freeze = open
            .iter()
            .find(|t| t.next.protocol_state() == ProtocolState::Freeze)
            .expect("host shutdown enumerated");
        assert_eq!(host_freeze.cause, TransitionCause::Host);
    }

    #[test]
    fn events_describe_integration() {
        let choices = HostChoices::eager();
        let mut c = node(1);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        let armed = advance(c, &[cold_start_frame(1)]);
        assert!(c
            .events(&cold_start_frame(1), &armed)
            .contains(&ProtocolEvent::ArmedBigBang));
        let integrated = advance(armed, &[cold_start_frame(1)]);
        assert!(armed
            .events(&cold_start_frame(1), &integrated)
            .contains(&ProtocolEvent::IntegratedOnColdStart { id: 1 }));
    }

    #[test]
    fn events_describe_freeze() {
        let choices = HostChoices::eager();
        let mut c = node(1);
        c = c.successors(&silent(), &choices)[0].next;
        c = c.successors(&silent(), &choices)[0].next;
        c = advance(c, &[cold_start_frame(1), cold_start_frame(1)]);
        let mut prev = c;
        for _ in 0..4 {
            let next = advance(prev, &[cstate_frame(4)]);
            if next.protocolstate_is_freeze() {
                assert!(prev
                    .events(&cstate_frame(4), &next)
                    .contains(&ProtocolEvent::FrozeOnCliqueError));
                return;
            }
            prev = next;
        }
        panic!("node never froze");
    }

    #[test]
    fn display_is_informative() {
        let c = to_cold_start(0);
        let s = c.to_string();
        assert!(s.contains("cold_start") && s.contains("slot=1"));
    }

    #[test]
    #[should_panic(expected = "no slot")]
    fn node_outside_round_is_rejected() {
        let _ = Controller::new(NodeId::new(4), 4);
    }

    impl Controller {
        fn protocolstate_is_freeze(&self) -> bool {
            self.protocol_state() == ProtocolState::Freeze
        }
    }
}
