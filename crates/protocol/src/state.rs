//! The nine protocol states of a TTP/C controller.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The TTP/C controller state machine states (TTP/C High-Level
/// Specification; paper Section 4.3).
///
/// The paper's model gives transition rules for `freeze`, `init`,
/// `listen`, `cold_start`, `active` and `passive`; `await`, `test` and
/// `download` are reachable only by explicit host command and are inert in
/// the model (as in the paper, which leaves them unconstrained).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ProtocolState {
    /// Controller halted; requires host intervention to restart. Initial
    /// state of every node, and the state entered on a clique error.
    #[default]
    Freeze,
    /// Controller initializing (loading the MEDL, self tests).
    Init,
    /// Watching the channels for frames to integrate on.
    Listen,
    /// Attempting to start the cluster by sending cold-start frames.
    ColdStart,
    /// Fully integrated; sends in its own slot.
    Active,
    /// Integrated but silent; receives and keeps time, does not send.
    Passive,
    /// Awaiting host download of configuration (inert here).
    Await,
    /// Built-in self test (inert here).
    Test,
    /// MEDL download in progress (inert here).
    Download,
}

impl ProtocolState {
    /// Whether the node is integrated into the cluster — the antecedent of
    /// the paper's checked property (`state=active ∨ state=passive`).
    #[must_use]
    pub fn is_integrated(self) -> bool {
        matches!(self, ProtocolState::Active | ProtocolState::Passive)
    }

    /// Whether the node maintains a slot counter in this state.
    #[must_use]
    pub fn keeps_slot_counter(self) -> bool {
        matches!(
            self,
            ProtocolState::ColdStart | ProtocolState::Active | ProtocolState::Passive
        )
    }

    /// Whether the node may transmit on the bus in this state.
    #[must_use]
    pub fn may_transmit(self) -> bool {
        matches!(self, ProtocolState::ColdStart | ProtocolState::Active)
    }

    /// Whether the state is one of the host-service states the model keeps
    /// inert (`await`, `test`, `download`).
    #[must_use]
    pub fn is_inert(self) -> bool {
        matches!(
            self,
            ProtocolState::Await | ProtocolState::Test | ProtocolState::Download
        )
    }

    /// All nine states, for exhaustive enumeration in tests.
    #[must_use]
    pub fn all() -> [ProtocolState; 9] {
        [
            ProtocolState::Freeze,
            ProtocolState::Init,
            ProtocolState::Listen,
            ProtocolState::ColdStart,
            ProtocolState::Active,
            ProtocolState::Passive,
            ProtocolState::Await,
            ProtocolState::Test,
            ProtocolState::Download,
        ]
    }
}

impl fmt::Display for ProtocolState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProtocolState::Freeze => "freeze",
            ProtocolState::Init => "init",
            ProtocolState::Listen => "listen",
            ProtocolState::ColdStart => "cold_start",
            ProtocolState::Active => "active",
            ProtocolState::Passive => "passive",
            ProtocolState::Await => "await",
            ProtocolState::Test => "test",
            ProtocolState::Download => "download",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_has_nine_states() {
        let all = ProtocolState::all();
        assert_eq!(all.len(), 9);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn integration_matches_paper_property_antecedent() {
        for s in ProtocolState::all() {
            let expected = matches!(s, ProtocolState::Active | ProtocolState::Passive);
            assert_eq!(s.is_integrated(), expected, "{s}");
        }
    }

    #[test]
    fn only_cold_start_and_active_transmit() {
        let transmitting: Vec<_> = ProtocolState::all()
            .into_iter()
            .filter(|s| s.may_transmit())
            .collect();
        assert_eq!(
            transmitting,
            [ProtocolState::ColdStart, ProtocolState::Active]
        );
    }

    #[test]
    fn slot_counter_states() {
        assert!(ProtocolState::ColdStart.keeps_slot_counter());
        assert!(ProtocolState::Active.keeps_slot_counter());
        assert!(ProtocolState::Passive.keeps_slot_counter());
        assert!(!ProtocolState::Listen.keeps_slot_counter());
        assert!(!ProtocolState::Freeze.keeps_slot_counter());
    }

    #[test]
    fn inert_states_are_host_services() {
        let inert: Vec<_> = ProtocolState::all()
            .into_iter()
            .filter(|s| s.is_inert())
            .collect();
        assert_eq!(
            inert,
            [
                ProtocolState::Await,
                ProtocolState::Test,
                ProtocolState::Download
            ]
        );
    }

    #[test]
    fn default_is_freeze() {
        assert_eq!(ProtocolState::default(), ProtocolState::Freeze);
    }

    #[test]
    fn display_uses_paper_spelling() {
        assert_eq!(ProtocolState::ColdStart.to_string(), "cold_start");
        assert_eq!(ProtocolState::Freeze.to_string(), "freeze");
    }
}
