//! Membership service bookkeeping.
//!
//! Every node maintains a membership vector recording which peers sent
//! correct frames recently. The service exists so host applications can
//! monitor peer health; the paper cares about it because *disagreement*
//! about membership — seeded, e.g., by an SOS frame that only some
//! receivers accept — is what the clique-avoidance mechanism turns into
//! node shutdowns. The simulator uses this module; the formal model
//! abstracts membership into the slot-position check.

use crate::Judgment;
use serde::{Deserialize, Serialize};
use std::fmt;
use tta_types::{MembershipVector, NodeId};

/// Per-node membership bookkeeping.
///
/// A sender is (re)admitted on a correct frame and expelled after
/// `expel_after` consecutive failed slots of its own.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipService {
    members: MembershipVector,
    consecutive_failures: Vec<u8>,
    expel_after: u8,
}

impl MembershipService {
    /// Creates a service for a cluster of `nodes` nodes; every node starts
    /// outside the membership until it is heard from, and is expelled
    /// after `expel_after` consecutive failures (TTP/C expels after the
    /// first failed own slot; pass 1 for that behavior).
    ///
    /// # Panics
    ///
    /// Panics if `expel_after == 0` or `nodes > 64`.
    #[must_use]
    pub fn new(nodes: usize, expel_after: u8) -> Self {
        assert!(expel_after > 0, "expel_after must be at least one slot");
        assert!(nodes <= 64, "cluster size {nodes} exceeds membership width");
        MembershipService {
            members: MembershipVector::new(),
            consecutive_failures: vec![0; nodes],
            expel_after,
        }
    }

    /// Current membership view.
    #[must_use]
    pub fn members(&self) -> MembershipVector {
        self.members
    }

    /// Records the judgment of `sender`'s slot.
    pub fn record(&mut self, sender: NodeId, judgment: Judgment) {
        let i = sender.as_usize();
        if i >= self.consecutive_failures.len() {
            return;
        }
        match judgment {
            Judgment::Correct => {
                self.consecutive_failures[i] = 0;
                self.members.insert(sender);
            }
            Judgment::Invalid | Judgment::Incorrect => {
                self.consecutive_failures[i] = self.consecutive_failures[i].saturating_add(1);
                if self.consecutive_failures[i] >= self.expel_after {
                    self.members.remove(sender);
                }
            }
            Judgment::Null => {
                // Silence in a sender's slot also counts against it once
                // the sender was a member (a member is expected to send).
                if self.members.contains(sender) {
                    self.consecutive_failures[i] = self.consecutive_failures[i].saturating_add(1);
                    if self.consecutive_failures[i] >= self.expel_after {
                        self.members.remove(sender);
                    }
                }
            }
        }
    }

    /// Whether two nodes' membership views agree — the condition whose
    /// violation clique detection exists to resolve.
    #[must_use]
    pub fn agrees_with(&self, other: &MembershipService) -> bool {
        self.members == other.members
    }
}

impl fmt::Display for MembershipService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "members {}", self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: u8) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn correct_frames_admit_members() {
        let mut m = MembershipService::new(4, 1);
        m.record(node(2), Judgment::Correct);
        assert!(m.members().contains(node(2)));
        assert_eq!(m.members().len(), 1);
    }

    #[test]
    fn failures_expel_after_threshold() {
        let mut m = MembershipService::new(4, 2);
        m.record(node(1), Judgment::Correct);
        m.record(node(1), Judgment::Incorrect);
        assert!(m.members().contains(node(1)), "one failure below threshold");
        m.record(node(1), Judgment::Invalid);
        assert!(!m.members().contains(node(1)), "expelled at threshold");
    }

    #[test]
    fn correct_frame_resets_failure_streak() {
        let mut m = MembershipService::new(4, 2);
        m.record(node(0), Judgment::Correct);
        m.record(node(0), Judgment::Incorrect);
        m.record(node(0), Judgment::Correct);
        m.record(node(0), Judgment::Incorrect);
        assert!(m.members().contains(node(0)));
    }

    #[test]
    fn silence_counts_against_members_only() {
        let mut m = MembershipService::new(4, 1);
        m.record(node(3), Judgment::Null);
        assert!(
            !m.members().contains(node(3)),
            "non-member unaffected by silence"
        );
        m.record(node(3), Judgment::Correct);
        m.record(node(3), Judgment::Null);
        assert!(
            !m.members().contains(node(3)),
            "member expelled after silent slot"
        );
    }

    #[test]
    fn disagreement_is_detectable() {
        let mut a = MembershipService::new(4, 1);
        let mut b = MembershipService::new(4, 1);
        a.record(node(0), Judgment::Correct);
        b.record(node(0), Judgment::Correct);
        assert!(a.agrees_with(&b));
        // An SOS frame: A judges it correct, B judges it incorrect.
        a.record(node(1), Judgment::Correct);
        b.record(node(1), Judgment::Incorrect);
        assert!(!a.agrees_with(&b));
    }

    #[test]
    fn out_of_range_senders_are_ignored() {
        let mut m = MembershipService::new(2, 1);
        m.record(node(7), Judgment::Correct);
        assert!(!m.members().contains(node(7)));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_threshold_is_rejected() {
        let _ = MembershipService::new(4, 0);
    }
}
