//! Property-based tests on the controller transition relation.

use proptest::prelude::*;
use tta_protocol::{
    ChannelObservation, ChannelView, Controller, HostChoices, ProtocolState, TransitionCause,
};
use tta_types::{FrameKind, NodeId};

const SLOTS: u16 = 4;

fn arb_observation() -> impl Strategy<Value = ChannelObservation> {
    prop_oneof![
        Just(ChannelObservation::silence()),
        Just(ChannelObservation::bad()),
        (1u16..=SLOTS).prop_map(|id| ChannelObservation::frame(FrameKind::ColdStart, id)),
        (1u16..=SLOTS).prop_map(|id| ChannelObservation::frame(FrameKind::CState, id)),
        (1u16..=SLOTS).prop_map(|id| ChannelObservation::frame(FrameKind::Other, id)),
    ]
}

fn arb_view() -> impl Strategy<Value = ChannelView> {
    (arb_observation(), arb_observation()).prop_map(|(a, b)| ChannelView::new(a, b))
}

fn arb_choices() -> impl Strategy<Value = HostChoices> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(s, h, a)| HostChoices {
        staggered_startup: s,
        allow_shutdown: h,
        allow_await_test: a,
    })
}

/// Walks a random path through the transition relation and returns every
/// state visited.
fn random_walk(
    node: u8,
    views: &[ChannelView],
    picks: &[usize],
    choices: &HostChoices,
) -> Vec<Controller> {
    let mut c = Controller::new(NodeId::new(node), SLOTS);
    let mut visited = vec![c];
    for (view, pick) in views.iter().zip(picks) {
        let succ = c.successors(view, choices);
        c = succ[pick % succ.len()].next;
        visited.push(c);
    }
    visited
}

proptest! {
    /// The transition relation is total: every reachable state has at
    /// least one successor for every channel view.
    #[test]
    fn relation_is_total(
        node in 0u8..4,
        views in prop::collection::vec(arb_view(), 1..40),
        picks in prop::collection::vec(any::<usize>(), 40),
        choices in arb_choices(),
    ) {
        for state in random_walk(node, &views, &picks, &choices) {
            for view in &views {
                prop_assert!(!state.successors(view, &choices).is_empty());
            }
        }
    }

    /// Successor lists never contain duplicate states.
    #[test]
    fn successors_are_deduplicated(
        node in 0u8..4,
        views in prop::collection::vec(arb_view(), 1..30),
        picks in prop::collection::vec(any::<usize>(), 30),
        choices in arb_choices(),
    ) {
        for state in random_walk(node, &views, &picks, &choices) {
            for view in &views {
                let succ = state.successors(view, &choices);
                for i in 0..succ.len() {
                    for j in (i + 1)..succ.len() {
                        prop_assert_ne!(&succ[i].next, &succ[j].next);
                    }
                }
            }
        }
    }

    /// State-vector canonicalization: auxiliary variables are at their
    /// canonical values whenever the protocol state does not use them, so
    /// semantically identical states hash identically in the checker.
    #[test]
    fn reachable_states_are_canonical(
        node in 0u8..4,
        views in prop::collection::vec(arb_view(), 1..60),
        picks in prop::collection::vec(any::<usize>(), 60),
        choices in arb_choices(),
    ) {
        for state in random_walk(node, &views, &picks, &choices) {
            let ps = state.protocol_state();
            if !ps.keeps_slot_counter() {
                prop_assert_eq!(state.slot(), None);
                prop_assert_eq!(state.counters().agreed(), 0);
                prop_assert_eq!(state.counters().failed(), 0);
            }
            if ps != ProtocolState::Listen {
                prop_assert!(!state.big_bang_armed());
                prop_assert_eq!(state.listen_timeout(), 0);
            }
            if let Some(slot) = state.slot() {
                prop_assert!(slot.get() >= 1 && slot.get() <= SLOTS);
            }
        }
    }

    /// With host failures disabled, an integrated node only ever freezes
    /// through the protocol (clique error) — the precondition for the
    /// paper's property monitor.
    #[test]
    fn freezes_without_shutdown_are_protocol_caused(
        node in 0u8..4,
        views in prop::collection::vec(arb_view(), 1..60),
        picks in prop::collection::vec(any::<usize>(), 60),
    ) {
        let choices = HostChoices::checking();
        for state in random_walk(node, &views, &picks, &choices) {
            if !state.is_integrated() {
                continue;
            }
            for view in &views {
                for t in state.successors(view, &choices) {
                    if t.next.protocol_state() == ProtocolState::Freeze {
                        prop_assert_eq!(t.cause, TransitionCause::Protocol);
                    }
                }
            }
        }
    }

    /// A node never transmits outside its own slot (fail-silence in the
    /// time domain — the property TTP/C assumes of non-faulty nodes).
    #[test]
    fn nodes_send_only_in_their_own_slot(
        node in 0u8..4,
        views in prop::collection::vec(arb_view(), 1..80),
        picks in prop::collection::vec(any::<usize>(), 80),
        choices in arb_choices(),
    ) {
        for state in random_walk(node, &views, &picks, &choices) {
            match state.send_intent() {
                tta_protocol::SendIntent::Silent => {}
                tta_protocol::SendIntent::ColdStart { id }
                | tta_protocol::SendIntent::CStateFrame { id } => {
                    prop_assert_eq!(id, state.own_slot());
                    prop_assert_eq!(state.slot().map(tta_types::SlotIndex::get), Some(id));
                    prop_assert!(state.protocol_state().may_transmit());
                }
            }
        }
    }

    /// Without host intervention, passive and cold-start nodes never jump
    /// straight to active without a passing clique test; equivalently, a
    /// node entering active from cold start has seen a majority.
    #[test]
    fn big_bang_requires_two_cold_start_frames(
        node in 0u8..4,
        id in 1u16..=SLOTS,
    ) {
        // Fresh listener: a single cold-start frame must never integrate.
        let choices = HostChoices::eager();
        let mut c = Controller::new(NodeId::new(node), SLOTS);
        c = c.successors(&ChannelView::silent(), &choices)[0].next; // init
        c = c.successors(&ChannelView::silent(), &choices)[0].next; // listen
        let view = ChannelView::both(ChannelObservation::frame(FrameKind::ColdStart, id));
        let after_first = c.successors(&view, &choices);
        for t in &after_first {
            prop_assert_eq!(t.next.protocol_state(), ProtocolState::Listen);
            prop_assert!(t.next.big_bang_armed());
        }
        // The second one integrates, adopting id+1.
        let armed = after_first[0].next;
        let after_second = armed.successors(&view, &choices);
        for t in &after_second {
            prop_assert_eq!(t.next.protocol_state(), ProtocolState::Passive);
            let expected = if id == SLOTS { 1 } else { id + 1 };
            prop_assert_eq!(t.next.slot().map(tta_types::SlotIndex::get), Some(expected));
        }
    }

    /// The listen timeout is monotone under silence and always bounded by
    /// its initialization value.
    #[test]
    fn listen_timeout_counts_down_under_silence(node in 0u8..4) {
        let choices = HostChoices::eager();
        let mut c = Controller::new(NodeId::new(node), SLOTS);
        c = c.successors(&ChannelView::silent(), &choices)[0].next;
        c = c.successors(&ChannelView::silent(), &choices)[0].next;
        let mut last = c.listen_timeout();
        prop_assert_eq!(last, c.listen_timeout_init());
        while c.protocol_state() == ProtocolState::Listen {
            c = c.successors(&ChannelView::silent(), &choices)[0].next;
            if c.protocol_state() == ProtocolState::Listen {
                prop_assert!(c.listen_timeout() < last || last == 0);
                last = c.listen_timeout();
            }
        }
        prop_assert_eq!(c.protocol_state(), ProtocolState::ColdStart);
    }
}
