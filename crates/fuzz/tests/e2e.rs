//! End-to-end acceptance: `seed 7` deterministically rediscovers the
//! seeded availability cliff, shrinks it to a tiny plan, and emits a
//! scenario that passes the lint gate and replays to the same recovery
//! outcome in the conformance runner — the exact pipeline CI's
//! fuzz-smoke job exercises through the `tta_fuzz` binary.

use std::path::Path;
use std::time::{Duration, Instant};

use tta_conformance::{run_scenario, Scenario};
use tta_fuzz::{fuzz, FindKind, FuzzConfig};
use tta_modellint::{lint_scenario, AnalysisOptions, Severity};
use tta_sim::RecoveryOutcome;

#[test]
fn seed_seven_rediscovers_shrinks_and_pins_a_cliff() {
    let cfg = FuzzConfig {
        seed: 7,
        max_finds: 3,
        deadline: Some(Instant::now() + Duration::from_secs(60)),
        ..FuzzConfig::default()
    };
    let outcome = fuzz(&cfg);

    // The seeded cliff is rediscovered: some find is an availability
    // cliff of at least the configured delta.
    let cliff = outcome
        .finds
        .iter()
        .find(|f| matches!(f.kind, FindKind::Cliff { .. }))
        .expect("seed 7 finds an availability cliff");
    if let FindKind::Cliff {
        parent_availability,
        availability,
        ..
    } = cliff.kind
    {
        assert!(
            parent_availability - availability >= cfg.delta,
            "cliff too shallow: {parent_availability} -> {availability}"
        );
    }

    // Shrunk to a tiny plan.
    assert!(
        cliff.input.events.len() <= 3,
        "shrunk plan has {} events",
        cliff.input.events.len()
    );

    // The emitted scenario parses, lints clean at the deny-warnings
    // bar, and replays through the full conformance runner to the same
    // pinned recovery outcome.
    let scenario = Scenario::parse(&cliff.emitted.toml, Path::new("scenarios"))
        .expect("emitted scenario parses");
    let (diags, _) = lint_scenario(&cliff.emitted.name, &scenario, &AnalysisOptions::default());
    for diag in &diags {
        assert_eq!(
            diag.severity,
            Severity::Note,
            "emitted scenario must lint clean: {} {}",
            diag.code.id,
            diag.message
        );
    }
    let replay = run_scenario(&scenario);
    assert!(
        replay.passed,
        "conformance replay failed:\n{}",
        replay.report
    );
    let report = scenario.sim_builder().build().run();
    assert_eq!(
        RecoveryOutcome::classify(&report),
        cliff.emitted.expected_outcome,
        "replayed recovery outcome drifted from the pinned one"
    );

    // Rerun-and-thread determinism of the same pipeline is pinned
    // separately (and more cheaply) by tests/determinism.rs.
}
