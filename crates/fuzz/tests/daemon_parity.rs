//! Evaluator parity: a fuzzing run routed through the campaign
//! service's `eval` op is bit-identical to the in-process run — the
//! daemon only changes *where* the pure evaluation function executes,
//! never what it computes.

use tta_campaignd::client::Client;
use tta_campaignd::server::{Server, ServerConfig};
use tta_fuzz::{fuzz, fuzz_with, DaemonEvaluator, FuzzConfig, FuzzOutcome};

fn short_cfg() -> FuzzConfig {
    FuzzConfig {
        rounds: 2,
        batch: 8,
        max_finds: 2,
        ..FuzzConfig::default()
    }
}

fn daemon_run(cfg: &FuzzConfig) -> FuzzOutcome {
    let state_dir =
        std::env::temp_dir().join(format!("campaignd-fuzz-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let handle = Server::spawn(ServerConfig::at(&state_dir)).expect("daemon spawns");
    let evaluator = DaemonEvaluator::new(Client::new(handle.socket()));
    let outcome = fuzz_with(cfg, &evaluator);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&state_dir);
    outcome
}

#[test]
fn daemon_evaluation_is_bit_identical_to_local() {
    let cfg = short_cfg();
    let local = fuzz(&cfg);
    let daemon = daemon_run(&cfg);
    assert_eq!(local.journal, daemon.journal);
    assert_eq!(local.finds.len(), daemon.finds.len());
    for (l, d) in local.finds.iter().zip(&daemon.finds) {
        assert_eq!(l.emitted.toml, d.emitted.toml);
        assert_eq!(l.emitted.name, d.emitted.name);
    }
    assert_eq!(local.corpus_size, daemon.corpus_size);
}
