//! Shrinker correctness: property tests over pure predicates, plus
//! real re-executed cliff/flip finds.
//!
//! The contract under test: `shrink(input, keeps)` returns an input
//! that (a) still satisfies `keeps` — for a real find, *re-executing
//! the simulator* still exhibits the cliff or flip — and (b) is
//! 1-minimal: removing any single remaining event, or narrowing any
//! remaining window by one slot from either end, makes the predicate
//! disappear. [`is_one_minimal`] checks (b) by brute force,
//! independently of the shrinker's own fixpoint argument.

use proptest::prelude::*;

use tta_fuzz::{
    evaluate_under, is_one_minimal, shrink, EvalContext, FuzzEvent, FuzzEventKind, FuzzInput,
};
use tta_guardian::sos::SosDomain;
use tta_guardian::{CouplerAuthority, CouplerFaultMode};
use tta_sim::{FaultPersistence, NodeFaultKind, RecoveryOutcome};

fn arb_event() -> impl Strategy<Value = FuzzEvent> {
    let kind = prop_oneof![
        (
            0usize..2,
            prop::sample::select(vec![CouplerFaultMode::Silence, CouplerFaultMode::BadFrame,])
        )
            .prop_map(|(channel, mode)| FuzzEventKind::Coupler { channel, mode }),
        (
            0u8..4,
            prop::sample::select(vec![
                NodeFaultKind::Babbling,
                NodeFaultKind::Mute,
                NodeFaultKind::Sos {
                    domain: SosDomain::Time,
                    magnitude: 0.5,
                },
            ])
        )
            .prop_map(|(node, kind)| FuzzEventKind::Node { node, kind }),
    ];
    let persistence = prop_oneof![
        Just(FaultPersistence::Transient),
        Just(FaultPersistence::Permanent),
        (2u64..8, 1u64..4).prop_map(|(period, duty)| FaultPersistence::Intermittent {
            period,
            duty: duty.min(period - 1),
        }),
    ];
    (kind, 1u64..300, 1u64..80, persistence).prop_map(|(kind, from, width, persistence)| {
        FuzzEvent {
            kind,
            from_slot: from,
            to_slot: from + width,
            persistence,
        }
    })
}

fn arb_input() -> impl Strategy<Value = FuzzInput> {
    prop::collection::vec(arb_event(), 1..5).prop_map(|events| FuzzInput { events })
}

proptest! {
    /// Predicate: "some event covers the first event's start slot".
    /// Always true of the original, so shrinking must preserve it and
    /// land on a 1-minimal input (typically one single-slot event).
    #[test]
    fn shrinking_a_covering_predicate_is_one_minimal(input in arb_input()) {
        let target = input.events[0].from_slot;
        let keeps = |candidate: &FuzzInput| {
            candidate
                .events
                .iter()
                .any(|e| (e.from_slot..e.to_slot).contains(&target))
        };
        let shrunk = shrink(&input, keeps);
        prop_assert!(keeps(&shrunk), "shrunk input lost the predicate");
        prop_assert!(is_one_minimal(&shrunk, keeps));
        prop_assert_eq!(shrunk.events.len(), 1);
        prop_assert_eq!(
            (shrunk.events[0].from_slot, shrunk.events[0].to_slot),
            (target, target + 1)
        );
    }

    /// Predicate: "still has every original event" (by count). Nothing
    /// can be dropped, so minimality must come entirely from window
    /// narrowing and persistence simplification.
    #[test]
    fn shrinking_narrows_what_it_cannot_drop(input in arb_input()) {
        let required = input.events.len();
        let keeps = move |candidate: &FuzzInput| candidate.events.len() >= required;
        let shrunk = shrink(&input, keeps);
        prop_assert!(is_one_minimal(&shrunk, keeps));
        prop_assert_eq!(shrunk.events.len(), required);
        for event in &shrunk.events {
            prop_assert_eq!(event.to_slot - event.from_slot, 1);
            prop_assert_eq!(event.persistence, FaultPersistence::Transient);
        }
    }
}

/// The real thing, cliff edition: pad a known quorum-breaking SOS
/// sender with two bystander events, shrink against the re-executed
/// simulator, and check the cliff survives while the padding does not.
#[test]
fn a_real_availability_cliff_shrinks_to_its_load_bearing_event() {
    let ctx = EvalContext::default();
    let parent_availability =
        evaluate_under(&FuzzInput::empty(), &ctx, CouplerAuthority::Passive).availability;
    let padded = FuzzInput {
        events: vec![
            FuzzEvent {
                kind: FuzzEventKind::Node {
                    node: 0,
                    kind: NodeFaultKind::Sos {
                        domain: SosDomain::Time,
                        magnitude: 0.5,
                    },
                },
                from_slot: 60,
                to_slot: 120,
                persistence: FaultPersistence::Transient,
            },
            // Bystanders are coupler faults on purpose: a second *node*
            // fault would shrink the healthy-quorum denominator and
            // mask the cliff instead of padding it.
            FuzzEvent {
                kind: FuzzEventKind::Coupler {
                    channel: 0,
                    mode: CouplerFaultMode::BadFrame,
                },
                from_slot: 200,
                to_slot: 250,
                persistence: FaultPersistence::Transient,
            },
            FuzzEvent {
                kind: FuzzEventKind::Coupler {
                    channel: 1,
                    mode: CouplerFaultMode::Silence,
                },
                from_slot: 300,
                to_slot: 340,
                persistence: FaultPersistence::Transient,
            },
        ],
    };
    let threshold = parent_availability - 0.3;
    let keeps = |candidate: &FuzzInput| {
        evaluate_under(candidate, &ctx, CouplerAuthority::Passive).availability <= threshold
    };
    assert!(keeps(&padded), "the padded input must start as a cliff");

    let shrunk = shrink(&padded, keeps);
    // Re-execute: the shrunk plan still exhibits the original cliff.
    assert!(keeps(&shrunk));
    // The bystanders are gone and only the SOS sender remains.
    assert_eq!(shrunk.events.len(), 1);
    assert!(matches!(
        shrunk.events[0].kind,
        FuzzEventKind::Node {
            node: 0,
            kind: NodeFaultKind::Sos { .. }
        }
    ));
    // 1-minimality against the real, re-executing predicate: removing
    // the event or narrowing its window by one slot loses the cliff.
    assert!(is_one_minimal(&shrunk, keeps));
}

/// The real thing, flip edition: the same fault family classifies as
/// permanent loss under time windows but contained under small
/// shifting. Shrinking must preserve *both* pinned outcomes.
#[test]
fn a_real_outcome_flip_survives_shrinking_with_both_outcomes_pinned() {
    let ctx = EvalContext::default();
    let padded = FuzzInput {
        events: vec![
            FuzzEvent {
                kind: FuzzEventKind::Node {
                    node: 1,
                    kind: NodeFaultKind::Sos {
                        domain: SosDomain::Time,
                        magnitude: 0.5,
                    },
                },
                from_slot: 60,
                to_slot: 120,
                persistence: FaultPersistence::Transient,
            },
            FuzzEvent {
                kind: FuzzEventKind::Coupler {
                    channel: 0,
                    mode: CouplerFaultMode::BadFrame,
                },
                from_slot: 150,
                to_slot: 200,
                persistence: FaultPersistence::Transient,
            },
        ],
    };
    let keeps = |candidate: &FuzzInput| {
        evaluate_under(candidate, &ctx, CouplerAuthority::TimeWindows).outcome
            == RecoveryOutcome::PermanentLoss
            && evaluate_under(candidate, &ctx, CouplerAuthority::SmallShifting).outcome
                == RecoveryOutcome::Contained
    };
    assert!(keeps(&padded), "the padded input must start as a flip");

    let shrunk = shrink(&padded, keeps);
    assert!(keeps(&shrunk), "re-executed flip must survive shrinking");
    assert_eq!(shrunk.events.len(), 1);
    assert!(is_one_minimal(&shrunk, keeps));
}
