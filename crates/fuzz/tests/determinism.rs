//! Determinism: identical seed + corpus produce byte-identical
//! journals and emitted scenarios at any thread count.
//!
//! The engine executes candidates on a worker pool but merges results
//! single-threadedly in index order, and the journal carries no
//! timestamps — so `--threads 1`, `--threads 4`, and `--threads 0`
//! (available parallelism) must be indistinguishable from the output.

use tta_fuzz::{fuzz, FuzzConfig, FuzzOutcome};

fn short_config(threads: usize) -> FuzzConfig {
    FuzzConfig {
        rounds: 3,
        batch: 16,
        max_finds: 2,
        threads,
        ..FuzzConfig::default()
    }
}

fn fingerprint(outcome: &FuzzOutcome) -> (String, Vec<(String, String)>) {
    (
        outcome.journal.clone(),
        outcome
            .finds
            .iter()
            .map(|f| (f.emitted.file_name.clone(), f.emitted.toml.clone()))
            .collect(),
    )
}

#[test]
fn thread_count_never_leaks_into_the_output() {
    let single = fuzz(&short_config(1));
    let four = fuzz(&short_config(4));
    let auto = fuzz(&short_config(0));

    // The runs did something nontrivial.
    assert!(single.rounds_run > 0);
    assert!(single.corpus_size > 1);

    // Journals are byte-identical...
    assert_eq!(fingerprint(&single).0, fingerprint(&four).0);
    assert_eq!(fingerprint(&single).0, fingerprint(&auto).0);
    // ...and so is every emitted scenario, name and content.
    assert_eq!(fingerprint(&single).1, fingerprint(&four).1);
    assert_eq!(fingerprint(&single).1, fingerprint(&auto).1);
}

#[test]
fn reruns_with_the_same_seed_are_byte_identical() {
    let a = fuzz(&short_config(0));
    let b = fuzz(&short_config(0));
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seeds_diverge() {
    let a = fuzz(&short_config(1));
    let b = fuzz(&FuzzConfig {
        seed: 8,
        ..short_config(1)
    });
    assert_ne!(
        a.journal, b.journal,
        "seed must steer the run (journals agreed)"
    );
}
