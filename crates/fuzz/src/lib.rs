//! # tta-fuzz
//!
//! Coverage-guided fault-plan fuzzing for the DSN 2004 reproduction:
//! search the fault-plan space instead of curating it.
//!
//! The paper's tradeoff claim — centralizing guardian authority trades
//! fault-tolerance coverage for cost — was probed by hand-written
//! scenarios. This crate hunts the interesting plans automatically,
//! following the search-based line of Cheng et al. (game-theoretic
//! synthesis of fault-tolerant systems) and Abdi et al. (restart-based
//! fault tolerance):
//!
//! * **Mutation engine** ([`Mutator`]) — deterministic, seed-driven
//!   operators over [`FuzzInput`]s: shift/grow/shrink windows, cycle
//!   [`tta_sim::FaultPersistence`], retarget channels and nodes, swap
//!   fault kinds, add/remove events, and splice events between corpus
//!   entries. Out-of-slot coupler faults are offered only when the
//!   modellint coverage probe shows some authority level actually
//!   admits replay steps.
//! * **Coverage signal** ([`EvalSet`]) — every candidate runs through
//!   the real simulator under all four authority levels; the corpus
//!   admits signatures over `(RecoveryOutcome class, availability
//!   bucket, log2 event counts)` per authority.
//! * **Finds** — availability cliffs (a mutant loses ≥ `delta`
//!   availability against its parent under one authority) and outcome
//!   flips (adjacent authority levels classify one plan differently).
//! * **Shrinking** ([`shrink`]) — delta-debugging over events and
//!   window widths to a 1-minimal plan, re-executing the predicate at
//!   every step.
//! * **Emission** ([`emit_scenario`]) — each find becomes a scenario
//!   TOML with *measured* `expect` blocks, self-checked in process
//!   against the lint gate and the conformance runner before it is
//!   allowed to exist.
//! * **Synthesis** ([`synthesize`]) — inverse mode: the cheapest
//!   [`tta_protocol::RestartPolicy`] (fewest restarts, then least
//!   aggressive timing) keeping worst-case availability above a
//!   threshold across a fault corpus.
//!
//! Everything is deterministic by construction: per-candidate RNGs
//! derived from `(seed, round, index)`, order-preserving parallel
//! execution, and a journal with no timestamps. `tta_fuzz --seed 7`
//! produces byte-identical output at any `--threads` value.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod corpus;
mod emit;
mod engine;
mod eval;
mod input;
mod mutate;
mod rng;
mod shrink;
mod synth;

pub use corpus::{Corpus, CorpusEntry};
pub use emit::{authority_token, emit_scenario, EmitRequest, Emitted};
pub use engine::{describe, fuzz, fuzz_with, Find, FindKind, FuzzConfig, FuzzOutcome};
pub use eval::{
    admissible_plan, evaluate, evaluate_under, DaemonEvaluator, EvalContext, EvalSet, Evaluation,
    Evaluator, LocalEvaluator,
};
pub use input::{coupler_mode_name, node_kind_token, FuzzEvent, FuzzEventKind, FuzzInput};
pub use mutate::Mutator;
pub use rng::{fnv1a, mix, FuzzRng};
pub use shrink::{is_one_minimal, shrink};
pub use synth::{candidate_policies, synthesize, worst_availability, SynthOutcome};
