//! Regression-scenario emission: turns a shrunk find into a
//! lint-clean scenario TOML with pinned `expect` blocks.
//!
//! Expectations are *measured, never guessed*: the emitter builds the
//! scenario body, parses it through the real DSL, runs the checker for
//! the verdict and the simulator for disturbance and recovery class,
//! and only then writes the `[expect]` section. The finished text is
//! then self-checked in process — re-parsed, linted at the same
//! deny-warnings bar CI applies, and replayed through the full
//! conformance runner — so a file only ever reaches `scenarios/` if it
//! will pass both `tta_lint --deny warnings` and the scenario sweep.

use std::fmt::Write as _;
use std::path::Path;

use tta_core::{verify_cluster, Verdict};
use tta_guardian::CouplerAuthority;
use tta_modellint::{lint_scenario, AnalysisOptions, Severity};
use tta_protocol::RestartPolicy;
use tta_sim::{FaultPersistence, NodeFaultKind, RecoveryOutcome, Topology};

use crate::eval::EvalContext;
use crate::input::{coupler_mode_name, FuzzEventKind, FuzzInput};
use crate::rng::fnv1a;

/// What the emitter needs to know about a find.
#[derive(Debug)]
pub struct EmitRequest<'a> {
    /// The shrunk input.
    pub input: &'a FuzzInput,
    /// Authority level the scenario pins (the one the find concerns).
    pub authority: CouplerAuthority,
    /// `"cliff"` or `"flip"` — becomes part of the scenario name.
    pub kind_word: &'static str,
    /// Deterministic human-readable description of the find.
    pub description: String,
    /// Cluster shape the fuzzer ran against.
    pub ctx: &'a EvalContext,
}

/// A finished, self-checked regression scenario.
#[derive(Debug, Clone)]
pub struct Emitted {
    /// Scenario name (also embedded in the TOML).
    pub name: String,
    /// Suggested file name under `scenarios/`.
    pub file_name: String,
    /// The complete TOML text.
    pub toml: String,
    /// The recovery outcome the scenario pins.
    pub expected_outcome: RecoveryOutcome,
}

/// The DSL spelling of an authority level (underscored, unlike the
/// type's spaced `Display`).
#[must_use]
pub fn authority_token(authority: CouplerAuthority) -> &'static str {
    match authority {
        CouplerAuthority::Passive => "passive",
        CouplerAuthority::TimeWindows => "time_windows",
        CouplerAuthority::SmallShifting => "small_shifting",
        CouplerAuthority::FullShifting => "full_shifting",
    }
}

/// Emits one scenario, or a reason the find cannot be pinned (e.g. it
/// lints dirty — those finds are dropped, not written).
pub fn emit_scenario(req: &EmitRequest<'_>) -> Result<Emitted, String> {
    let tag = format!("{}\n{}", req.input.render(), authority_token(req.authority));
    let hash = fnv1a(tag.as_bytes()) as u32;
    let name = format!(
        "fuzzed-{}-{}-{hash:08x}",
        req.kind_word,
        authority_token(req.authority).replace('_', "-")
    );
    let file_name = format!("{}.toml", name.replace('-', "_"));

    let body = render_body(req, &name)?;
    let scenario = tta_conformance::Scenario::parse(&body, Path::new("scenarios"))
        .map_err(|e| format!("emitted body does not parse: {e}"))?;
    scenario
        .sim_applicable()
        .map_err(|why| format!("emitted plan is not simulable: {why}"))?;

    // Measure the expectations.
    let verdict = verify_cluster(&scenario.checker_config()).verdict;
    let report = scenario.sim_builder().build().run();
    let disturbed = !report.healthy_frozen().is_empty() || !report.cluster_started();
    let outcome = RecoveryOutcome::classify(&report);

    let mut toml = body;
    toml.push_str("\n[expect]\n");
    match verdict {
        Verdict::Holds => toml.push_str("verdict = \"holds\"\n"),
        Verdict::Violated => toml.push_str("verdict = \"violated\"\n"),
        // A truncated exploration pins nothing.
        Verdict::BudgetExhausted => {}
    }
    let _ = writeln!(toml, "sim_disturbed = {disturbed}");
    let _ = writeln!(toml, "recovery_outcome = \"{outcome}\"");

    // Self-check: the finished file must survive everything CI throws
    // at scenarios/ — the lint gate and the conformance sweep.
    let finished = tta_conformance::Scenario::parse(&toml, Path::new("scenarios"))
        .map_err(|e| format!("finished scenario does not parse: {e}"))?;
    let (diags, _) = lint_scenario(&name, &finished, &AnalysisOptions::default());
    if let Some(diag) = diags.iter().find(|d| d.severity != Severity::Note) {
        return Err(format!(
            "scenario lints dirty: {} {}",
            diag.code.id, diag.message
        ));
    }
    let outcome_check = tta_conformance::run_scenario(&finished);
    if !outcome_check.passed {
        return Err(format!(
            "scenario does not replay cleanly:\n{}",
            outcome_check.report
        ));
    }

    Ok(Emitted {
        name,
        file_name,
        toml,
        expected_outcome: outcome,
    })
}

/// Renders everything up to (not including) the `[expect]` section.
fn render_body(req: &EmitRequest<'_>, name: &str) -> Result<String, String> {
    let mut out = String::new();
    out.push_str(
        "# Fuzzer-discovered regression scenario, shrunk to a 1-minimal plan\n\
         # and pinned with measured expectations. Regenerate with tta_fuzz\n\
         # using the seed recorded in the description.\n\n",
    );
    out.push_str("[scenario]\n");
    let _ = writeln!(out, "name = \"{name}\"");
    let _ = writeln!(out, "description = \"{}\"", req.description);
    out.push_str("\n[cluster]\n");
    let _ = writeln!(out, "nodes = {}", req.ctx.nodes);
    let topology = match req.ctx.topology {
        Topology::Star => "star",
        Topology::Bus => "bus",
    };
    let _ = writeln!(out, "topology = \"{topology}\"");
    let _ = writeln!(out, "authority = \"{}\"", authority_token(req.authority));
    if req.authority == CouplerAuthority::FullShifting {
        // An unbudgeted full-shifting space is the paper's huge one;
        // one replay suffices to expose the violation and keeps the
        // checker phase (and the lint gate) fast.
        out.push_str("\n[model]\nout_of_slot_budget = 1\n");
    }
    out.push_str("\n[sim]\n");
    let _ = writeln!(out, "slots = {}", req.ctx.slots);
    render_policy(&mut out, req.ctx.policy);

    for event in &req.input.events {
        match event.kind {
            FuzzEventKind::Coupler { channel, mode } => {
                out.push_str("\n[[fault.coupler]]\n");
                let _ = writeln!(out, "channel = {channel}");
                let _ = writeln!(out, "mode = \"{}\"", coupler_mode_name(mode));
                let _ = writeln!(out, "from_slot = {}", event.from_slot);
                let _ = writeln!(out, "to_slot = {}", event.to_slot);
            }
            FuzzEventKind::Node { node, kind } => {
                out.push_str("\n[[fault.node]]\n");
                let _ = writeln!(out, "node = {node}");
                render_node_kind(&mut out, kind)?;
                let _ = writeln!(out, "from_slot = {}", event.from_slot);
                let _ = writeln!(out, "to_slot = {}", event.to_slot);
            }
        }
        render_persistence(&mut out, event.persistence);
    }
    Ok(out)
}

fn render_node_kind(out: &mut String, kind: NodeFaultKind) -> Result<(), String> {
    match kind {
        NodeFaultKind::Sos { domain, magnitude } => {
            out.push_str("kind = \"sos\"\n");
            let domain = match domain {
                tta_guardian::sos::SosDomain::Time => "time",
                tta_guardian::sos::SosDomain::Value => "value",
            };
            let _ = writeln!(out, "domain = \"{domain}\"");
            // The mutator's magnitude palette renders exactly; reject
            // anything that would not round-trip through TOML.
            if format!("{magnitude}").parse::<f64>() != Ok(magnitude) {
                return Err(format!("magnitude {magnitude} does not round-trip"));
            }
            let _ = writeln!(out, "magnitude = {magnitude}");
        }
        NodeFaultKind::MasqueradeColdStart { claimed_slot } => {
            out.push_str("kind = \"masquerade_cold_start\"\n");
            let _ = writeln!(out, "claimed_slot = {claimed_slot}");
        }
        NodeFaultKind::InvalidCState { claimed_slot } => {
            out.push_str("kind = \"invalid_cstate\"\n");
            let _ = writeln!(out, "claimed_slot = {claimed_slot}");
        }
        NodeFaultKind::Babbling => out.push_str("kind = \"babbling\"\n"),
        NodeFaultKind::Mute => out.push_str("kind = \"mute\"\n"),
    }
    Ok(())
}

fn render_persistence(out: &mut String, persistence: FaultPersistence) {
    match persistence {
        // Transient is the DSL default; omitting it keeps files tight.
        FaultPersistence::Transient => {}
        FaultPersistence::Permanent => out.push_str("persistence = \"permanent\"\n"),
        FaultPersistence::Intermittent { period, duty } => {
            out.push_str("persistence = \"intermittent\"\n");
            let _ = writeln!(out, "period = {period}");
            let _ = writeln!(out, "duty = {duty}");
        }
    }
}

fn render_policy(out: &mut String, policy: RestartPolicy) {
    match policy {
        // Never is the DSL default.
        RestartPolicy::Never => {}
        RestartPolicy::Immediate => out.push_str("restart_policy = \"immediate\"\n"),
        RestartPolicy::BoundedRetry {
            max_restarts,
            backoff_slots,
        } => {
            out.push_str("restart_policy = \"bounded_retry\"\n");
            let _ = writeln!(out, "max_restarts = {max_restarts}");
            let _ = writeln!(out, "backoff_slots = {backoff_slots}");
        }
        RestartPolicy::Watchdog { silence_slots } => {
            out.push_str("restart_policy = \"watchdog\"\n");
            let _ = writeln!(out, "silence_slots = {silence_slots}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::FuzzEvent;

    #[test]
    fn a_simple_sos_find_emits_a_self_checked_scenario() {
        let input = FuzzInput {
            events: vec![FuzzEvent {
                kind: FuzzEventKind::Node {
                    node: 1,
                    kind: NodeFaultKind::Sos {
                        domain: tta_guardian::sos::SosDomain::Time,
                        magnitude: 0.5,
                    },
                },
                from_slot: 60,
                to_slot: 61,
                persistence: FaultPersistence::Transient,
            }],
        };
        let ctx = EvalContext::default();
        let emitted = emit_scenario(&EmitRequest {
            input: &input,
            authority: CouplerAuthority::Passive,
            kind_word: "cliff",
            description: "unit-test emission".to_string(),
            ctx: &ctx,
        })
        .expect("emission succeeds");
        assert!(emitted.toml.contains("[[fault.node]]"));
        assert!(emitted.toml.contains("recovery_outcome"));
        assert!(emitted.file_name.starts_with("fuzzed_cliff_passive_"));
        // Emission is deterministic.
        let again = emit_scenario(&EmitRequest {
            input: &input,
            authority: CouplerAuthority::Passive,
            kind_word: "cliff",
            description: "unit-test emission".to_string(),
            ctx: &ctx,
        })
        .expect("emission succeeds twice");
        assert_eq!(emitted.toml, again.toml);
    }
}
