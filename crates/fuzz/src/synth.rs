//! Inverse mode: synthesize the cheapest [`RestartPolicy`] that keeps
//! availability above a threshold across a fault corpus.
//!
//! "Cheapest" follows Abdi et al.'s restart-based fault-tolerance
//! framing: restarts are the resource. Candidates are ordered by
//! restart budget first (none, then bounded budgets ascending, then
//! unlimited), and within a budget by *least aggressive* restarting
//! (longer backoff / silence windows first), so the first candidate
//! whose **worst-case** availability over the whole corpus clears the
//! threshold is the cheapest one that works. When none clears it, the
//! best-scoring candidate is reported instead so the E11 table always
//! has a row.

use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;

use crate::eval::{evaluate_under, EvalContext};
use crate::input::FuzzInput;

/// One synthesis verdict: the chosen policy and how it scored.
#[derive(Debug, Clone, Copy)]
pub struct SynthOutcome {
    /// The cheapest policy clearing the threshold (or the best scorer
    /// when none does).
    pub policy: RestartPolicy,
    /// Worst-case availability across the corpus under that policy.
    pub worst_availability: f64,
    /// Whether the threshold was actually met.
    pub met: bool,
    /// Number of candidate policies evaluated before stopping.
    pub candidates_tried: usize,
}

/// The fixed candidate ladder, cheapest first.
#[must_use]
pub fn candidate_policies() -> Vec<RestartPolicy> {
    let mut out = vec![RestartPolicy::Never];
    for max_restarts in [1, 2, 3] {
        for backoff_slots in [8, 4, 2, 1] {
            out.push(RestartPolicy::BoundedRetry {
                max_restarts,
                backoff_slots,
            });
        }
    }
    for silence_slots in [16, 8, 4, 2, 1] {
        out.push(RestartPolicy::Watchdog { silence_slots });
    }
    out.push(RestartPolicy::Immediate);
    out
}

/// Worst-case availability of `policy` across the corpus under one
/// authority level.
#[must_use]
pub fn worst_availability(
    corpus: &[FuzzInput],
    ctx: &EvalContext,
    authority: CouplerAuthority,
    policy: RestartPolicy,
) -> f64 {
    let ctx = EvalContext { policy, ..*ctx };
    corpus
        .iter()
        .map(|input| evaluate_under(input, &ctx, authority).availability)
        .fold(f64::INFINITY, f64::min)
        .min(1.0)
}

/// Walks the candidate ladder and returns the first policy whose
/// worst-case availability clears `threshold` (or the best scorer).
#[must_use]
pub fn synthesize(
    corpus: &[FuzzInput],
    ctx: &EvalContext,
    authority: CouplerAuthority,
    threshold: f64,
) -> SynthOutcome {
    let mut best: Option<SynthOutcome> = None;
    for (tried, policy) in candidate_policies().into_iter().enumerate() {
        let worst = worst_availability(corpus, ctx, authority, policy);
        let outcome = SynthOutcome {
            policy,
            worst_availability: worst,
            met: worst >= threshold,
            candidates_tried: tried + 1,
        };
        if outcome.met {
            return outcome;
        }
        if best.is_none_or(|b| worst > b.worst_availability) {
            best = Some(outcome);
        }
    }
    best.expect("candidate ladder is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{FuzzEvent, FuzzEventKind};
    use tta_guardian::sos::SosDomain;
    use tta_sim::{FaultPersistence, NodeFaultKind};

    fn sos_corpus() -> Vec<FuzzInput> {
        // Node 0 is the cluster's least tolerant receiver, so as an SOS
        // *sender* at magnitude 0.5 its marginal frames split the other
        // receivers badly enough to freeze two healthy peers — the
        // quorum-breaking cliff the fuzzer hunts.
        vec![
            FuzzInput::empty(),
            FuzzInput {
                events: vec![FuzzEvent {
                    kind: FuzzEventKind::Node {
                        node: 0,
                        kind: NodeFaultKind::Sos {
                            domain: SosDomain::Time,
                            magnitude: 0.5,
                        },
                    },
                    from_slot: 60,
                    to_slot: 120,
                    persistence: FaultPersistence::Transient,
                }],
            },
        ]
    }

    #[test]
    fn an_easy_threshold_is_met_by_never() {
        let outcome = synthesize(
            &sos_corpus(),
            &EvalContext::default(),
            CouplerAuthority::SmallShifting,
            0.1,
        );
        assert!(outcome.met);
        assert_eq!(outcome.policy, RestartPolicy::Never);
        assert_eq!(outcome.candidates_tried, 1);
    }

    #[test]
    fn a_hard_threshold_under_weak_authority_needs_restarts() {
        // Passive authority lets the SOS sender freeze healthy peers,
        // so under `never` the freeze is absorbing and availability
        // stays low; unlimited restarting recovers it. A threshold
        // between the two (both include the startup transient, which
        // caps availability for *every* policy) must therefore select
        // a restarting policy.
        let corpus = sos_corpus();
        let ctx = EvalContext::default();
        let never = worst_availability(
            &corpus,
            &ctx,
            CouplerAuthority::Passive,
            RestartPolicy::Never,
        );
        let immediate = worst_availability(
            &corpus,
            &ctx,
            CouplerAuthority::Passive,
            RestartPolicy::Immediate,
        );
        assert!(
            immediate > never + 0.05,
            "restarting must help under passive authority: never {never}, immediate {immediate}"
        );
        let outcome = synthesize(
            &corpus,
            &ctx,
            CouplerAuthority::Passive,
            (never + immediate) / 2.0,
        );
        assert!(outcome.met, "midpoint threshold is satisfiable");
        assert_ne!(outcome.policy, RestartPolicy::Never);
    }
}
