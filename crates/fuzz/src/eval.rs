//! Candidate execution and the coverage signal.
//!
//! Every candidate plan runs through the real simulator once per
//! authority level (the paper's four-step spectrum), and the four runs
//! collapse into an [`EvalSet`]. Its [`EvalSet::signature`] is the
//! corpus admission key: a candidate is *novel* when some authority
//! reached a new [`RecoveryOutcome`] class, a new availability bucket,
//! or a new order of magnitude of freezes / restarts / guardian
//! interventions. Buckets, not raw floats, so the corpus saturates
//! instead of admitting every availability wiggle.

use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{RecoveryOutcome, SimBuilder, TimeSeries, Topology};

use crate::input::FuzzInput;
use crate::rng::fnv1a;

/// The fixed cluster every candidate runs against.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext {
    /// Cluster size.
    pub nodes: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Simulation horizon in slots.
    pub slots: u64,
    /// Host restart policy.
    pub policy: RestartPolicy,
}

impl Default for EvalContext {
    /// The paper's 4-node star over a 400-slot horizon with absorbing
    /// freezes — the same baseline the scenario DSL defaults to.
    fn default() -> Self {
        EvalContext {
            nodes: 4,
            topology: Topology::Star,
            slots: 400,
            policy: RestartPolicy::Never,
        }
    }
}

/// What one simulated run contributed to the coverage signal.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// Authority level the run used.
    pub authority: CouplerAuthority,
    /// Recovery classification of the run.
    pub outcome: RecoveryOutcome,
    /// `1 - unavailability` at quorum = healthy-node count.
    pub availability: f64,
    /// Slots at which some node entered freeze.
    pub freezes: usize,
    /// Slots at which a host restarted a frozen controller.
    pub restarts: usize,
    /// Slots at which a central guardian blocked or reshaped a frame.
    pub interventions: usize,
}

/// One candidate's runs across the full authority spectrum, in
/// [`CouplerAuthority::all`] order.
#[derive(Debug, Clone, Copy)]
pub struct EvalSet {
    /// Per-authority evaluations.
    pub evals: [Evaluation; 4],
}

impl EvalSet {
    /// The evaluation under one authority level.
    #[must_use]
    pub fn under(&self, authority: CouplerAuthority) -> &Evaluation {
        self.evals
            .iter()
            .find(|e| e.authority == authority)
            .expect("every authority evaluated")
    }

    /// The corpus admission key: FNV over each authority's outcome
    /// class, availability bucket (5% granularity), and log2 buckets of
    /// the event counts.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut bytes = Vec::with_capacity(4 * 5);
        for eval in &self.evals {
            bytes.push(outcome_tag(eval.outcome));
            bytes.push(availability_bucket(eval.availability));
            bytes.push(log2_bucket(eval.freezes));
            bytes.push(log2_bucket(eval.restarts));
            bytes.push(log2_bucket(eval.interventions));
        }
        fnv1a(&bytes)
    }
}

/// Stable small tag per outcome class (order of the taxonomy).
fn outcome_tag(outcome: RecoveryOutcome) -> u8 {
    match outcome {
        RecoveryOutcome::Contained => 0,
        RecoveryOutcome::Recovered => 1,
        RecoveryOutcome::DegradedStable => 2,
        RecoveryOutcome::PermanentLoss => 3,
    }
}

/// Availability quantized to 5% buckets (0..=20).
fn availability_bucket(availability: f64) -> u8 {
    ((availability * 20.0).floor() as i64).clamp(0, 20) as u8
}

/// Order-of-magnitude bucket of an event count.
fn log2_bucket(n: usize) -> u8 {
    (usize::BITS - n.leading_zeros()) as u8
}

/// Runs the candidate under one authority level.
///
/// Mirrors the simulator's physical applicability rule the way the
/// campaign layer does for its replay scenario: an out-of-slot coupler
/// fault *requires* full-frame buffering, so under any lesser
/// authority those events simply do not exist (rather than panicking
/// the simulator). That asymmetry is the paper's point — full shifting
/// is the only level that adds the replay fault to the fault space.
#[must_use]
pub fn evaluate_under(
    input: &FuzzInput,
    ctx: &EvalContext,
    authority: CouplerAuthority,
) -> Evaluation {
    let replay_possible = ctx.topology.is_central() && authority.can_buffer_full_frames();
    let plan = if replay_possible {
        input.plan()
    } else {
        let admissible = FuzzInput {
            events: input
                .events
                .iter()
                .copied()
                .filter(|e| {
                    !matches!(
                        e.kind,
                        crate::input::FuzzEventKind::Coupler {
                            mode: tta_guardian::CouplerFaultMode::OutOfSlot,
                            ..
                        }
                    )
                })
                .collect(),
        };
        admissible.plan()
    };
    let report = SimBuilder::new(ctx.nodes)
        .topology(ctx.topology)
        .authority(authority)
        .slots(ctx.slots)
        .restart_policy(ctx.policy)
        .plan(plan)
        .build()
        .run();
    let faulty = report.faulty_nodes().len();
    let quorum = ctx.nodes.saturating_sub(faulty).max(1) as u32;
    let availability = 1.0 - report.unavailability(quorum);
    let outcome = RecoveryOutcome::classify(&report);
    let series = TimeSeries::from_log(report.log(), ctx.nodes, report.slots_run())
        .expect("simulator log stays within its own horizon");
    Evaluation {
        authority,
        outcome,
        availability,
        freezes: series.freeze_slots().len(),
        restarts: series.restart_slots().len(),
        interventions: series.guardian_intervention_slots().len(),
    }
}

/// Runs the candidate across the full authority spectrum.
#[must_use]
pub fn evaluate(input: &FuzzInput, ctx: &EvalContext) -> EvalSet {
    let all = CouplerAuthority::all();
    EvalSet {
        evals: [
            evaluate_under(input, ctx, all[0]),
            evaluate_under(input, ctx, all[1]),
            evaluate_under(input, ctx, all[2]),
            evaluate_under(input, ctx, all[3]),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{FuzzEvent, FuzzEventKind};
    use tta_guardian::sos::SosDomain;
    use tta_sim::{FaultPersistence, NodeFaultKind};

    #[test]
    fn the_empty_plan_is_contained_and_fully_available() {
        let set = evaluate(&FuzzInput::empty(), &EvalContext::default());
        for eval in &set.evals {
            assert_eq!(eval.outcome, RecoveryOutcome::Contained);
            assert!(eval.availability > 0.9, "{}", eval.availability);
            assert_eq!(eval.freezes, 0);
        }
    }

    #[test]
    fn signatures_separate_benign_from_catastrophic() {
        let ctx = EvalContext::default();
        let benign = evaluate(&FuzzInput::empty(), &ctx);
        // An SOS sender after startup: under weak authority its
        // slightly-off-spec frames freeze healthy receivers.
        let nasty = FuzzInput {
            events: vec![FuzzEvent {
                kind: FuzzEventKind::Node {
                    node: 1,
                    kind: NodeFaultKind::Sos {
                        domain: SosDomain::Time,
                        magnitude: 0.5,
                    },
                },
                from_slot: 60,
                to_slot: 120,
                persistence: FaultPersistence::Transient,
            }],
        };
        let nasty = evaluate(&nasty, &ctx);
        assert_ne!(benign.signature(), nasty.signature());
        // And identical inputs hash identically.
        assert_eq!(
            evaluate(&FuzzInput::empty(), &ctx).signature(),
            benign.signature()
        );
    }
}
