//! Candidate execution and the coverage signal.
//!
//! Every candidate plan runs through the real simulator once per
//! authority level (the paper's four-step spectrum), and the four runs
//! collapse into an [`EvalSet`]. Its [`EvalSet::signature`] is the
//! corpus admission key: a candidate is *novel* when some authority
//! reached a new [`RecoveryOutcome`] class, a new availability bucket,
//! or a new order of magnitude of freezes / restarts / guardian
//! interventions. Buckets, not raw floats, so the corpus saturates
//! instead of admitting every availability wiggle.

use tta_guardian::CouplerAuthority;
use tta_protocol::RestartPolicy;
use tta_sim::{RecoveryOutcome, SimBuilder, Topology};

use crate::input::FuzzInput;
use crate::rng::fnv1a;

/// The fixed cluster every candidate runs against.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext {
    /// Cluster size.
    pub nodes: usize,
    /// Interconnect topology.
    pub topology: Topology,
    /// Simulation horizon in slots.
    pub slots: u64,
    /// Host restart policy.
    pub policy: RestartPolicy,
}

impl Default for EvalContext {
    /// The paper's 4-node star over a 400-slot horizon with absorbing
    /// freezes — the same baseline the scenario DSL defaults to.
    fn default() -> Self {
        EvalContext {
            nodes: 4,
            topology: Topology::Star,
            slots: 400,
            policy: RestartPolicy::Never,
        }
    }
}

/// What one simulated run contributed to the coverage signal.
#[derive(Debug, Clone, Copy)]
pub struct Evaluation {
    /// Authority level the run used.
    pub authority: CouplerAuthority,
    /// Recovery classification of the run.
    pub outcome: RecoveryOutcome,
    /// `1 - unavailability` at quorum = healthy-node count.
    pub availability: f64,
    /// Slots at which some node entered freeze.
    pub freezes: usize,
    /// Slots at which a host restarted a frozen controller.
    pub restarts: usize,
    /// Slots at which a central guardian blocked or reshaped a frame.
    pub interventions: usize,
}

/// One candidate's runs across the full authority spectrum, in
/// [`CouplerAuthority::all`] order.
#[derive(Debug, Clone, Copy)]
pub struct EvalSet {
    /// Per-authority evaluations.
    pub evals: [Evaluation; 4],
}

impl EvalSet {
    /// The evaluation under one authority level.
    #[must_use]
    pub fn under(&self, authority: CouplerAuthority) -> &Evaluation {
        self.evals
            .iter()
            .find(|e| e.authority == authority)
            .expect("every authority evaluated")
    }

    /// The corpus admission key: FNV over each authority's outcome
    /// class, availability bucket (5% granularity), and log2 buckets of
    /// the event counts.
    #[must_use]
    pub fn signature(&self) -> u64 {
        let mut bytes = Vec::with_capacity(4 * 5);
        for eval in &self.evals {
            bytes.push(outcome_tag(eval.outcome));
            bytes.push(availability_bucket(eval.availability));
            bytes.push(log2_bucket(eval.freezes));
            bytes.push(log2_bucket(eval.restarts));
            bytes.push(log2_bucket(eval.interventions));
        }
        fnv1a(&bytes)
    }
}

/// Stable small tag per outcome class (order of the taxonomy).
fn outcome_tag(outcome: RecoveryOutcome) -> u8 {
    match outcome {
        RecoveryOutcome::Contained => 0,
        RecoveryOutcome::Recovered => 1,
        RecoveryOutcome::DegradedStable => 2,
        RecoveryOutcome::PermanentLoss => 3,
    }
}

/// Availability quantized to 5% buckets (0..=20).
fn availability_bucket(availability: f64) -> u8 {
    ((availability * 20.0).floor() as i64).clamp(0, 20) as u8
}

/// Order-of-magnitude bucket of an event count.
fn log2_bucket(n: usize) -> u8 {
    (usize::BITS - n.leading_zeros()) as u8
}

/// The candidate's fault plan with physically inadmissible events
/// dropped, mirroring the simulator's applicability rule the way the
/// campaign layer does for its replay scenario: an out-of-slot coupler
/// fault *requires* full-frame buffering, so under any lesser
/// authority those events simply do not exist (rather than panicking
/// the simulator). That asymmetry is the paper's point — full shifting
/// is the only level that adds the replay fault to the fault space.
///
/// Both evaluators share this filter — it runs client-side even for
/// the daemon path, so the daemon only ever sees admissible plans.
#[must_use]
pub fn admissible_plan(
    input: &FuzzInput,
    ctx: &EvalContext,
    authority: CouplerAuthority,
) -> tta_sim::FaultPlan {
    let replay_possible = ctx.topology.is_central() && authority.can_buffer_full_frames();
    if replay_possible {
        return input.plan();
    }
    let admissible = FuzzInput {
        events: input
            .events
            .iter()
            .copied()
            .filter(|e| {
                !matches!(
                    e.kind,
                    crate::input::FuzzEventKind::Coupler {
                        mode: tta_guardian::CouplerFaultMode::OutOfSlot,
                        ..
                    }
                )
            })
            .collect(),
    };
    admissible.plan()
}

/// Runs the candidate under one authority level, in-process.
#[must_use]
pub fn evaluate_under(
    input: &FuzzInput,
    ctx: &EvalContext,
    authority: CouplerAuthority,
) -> Evaluation {
    let report = SimBuilder::new(ctx.nodes)
        .topology(ctx.topology)
        .authority(authority)
        .slots(ctx.slots)
        .restart_policy(ctx.policy)
        .plan(admissible_plan(input, ctx, authority))
        .build()
        .run();
    let metrics = tta_sim::PlanRunMetrics::from_report(&report, ctx.nodes);
    from_metrics(authority, &metrics)
}

/// Runs the candidate across the full authority spectrum, in-process.
#[must_use]
pub fn evaluate(input: &FuzzInput, ctx: &EvalContext) -> EvalSet {
    LocalEvaluator.evaluate(input, ctx)
}

fn from_metrics(authority: CouplerAuthority, metrics: &tta_sim::PlanRunMetrics) -> Evaluation {
    Evaluation {
        authority,
        outcome: metrics.outcome,
        availability: metrics.availability,
        freezes: metrics.freezes,
        restarts: metrics.restarts,
        interventions: metrics.interventions,
    }
}

/// How the engine executes candidate plans: in-process (the default)
/// or over the campaign service. `Sync` because the engine's batch
/// evaluation shares one evaluator across its scoped worker threads.
pub trait Evaluator: Sync {
    /// Runs the candidate under one authority level.
    fn evaluate_under(
        &self,
        input: &FuzzInput,
        ctx: &EvalContext,
        authority: CouplerAuthority,
    ) -> Evaluation;

    /// Runs the candidate across the full authority spectrum, in
    /// [`CouplerAuthority::all`] order.
    fn evaluate(&self, input: &FuzzInput, ctx: &EvalContext) -> EvalSet {
        let all = CouplerAuthority::all();
        EvalSet {
            evals: [
                self.evaluate_under(input, ctx, all[0]),
                self.evaluate_under(input, ctx, all[1]),
                self.evaluate_under(input, ctx, all[2]),
                self.evaluate_under(input, ctx, all[3]),
            ],
        }
    }
}

/// The in-process evaluator: runs the simulator directly.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalEvaluator;

impl Evaluator for LocalEvaluator {
    fn evaluate_under(
        &self,
        input: &FuzzInput,
        ctx: &EvalContext,
        authority: CouplerAuthority,
    ) -> Evaluation {
        evaluate_under(input, ctx, authority)
    }
}

/// Evaluation over the campaign service's `eval` op: each run becomes
/// one request to `tta-campaignd`, which executes the identical
/// simulator build and returns [`tta_sim::PlanRunMetrics`]. Because
/// both sides compute the same pure function, a fuzzing run routed
/// through the daemon is bit-identical to a local one — the parity
/// test pins that.
///
/// The admissibility filter ([`admissible_plan`]) runs client-side, so
/// the daemon never sees an out-of-slot event under an authority that
/// cannot buffer full frames.
#[derive(Debug, Clone)]
pub struct DaemonEvaluator {
    client: tta_campaignd::client::Client,
}

impl DaemonEvaluator {
    /// An evaluator sending every run to the daemon behind `client`.
    #[must_use]
    pub fn new(client: tta_campaignd::client::Client) -> DaemonEvaluator {
        DaemonEvaluator { client }
    }
}

impl Evaluator for DaemonEvaluator {
    /// # Panics
    ///
    /// Panics if the daemon stays unreachable past the retry budget —
    /// the engine has no partial-result path, and a daemon that never
    /// comes back is operator intervention, not fuzz-campaign data.
    /// Transient failures (a dropped connection, a daemon restart, a
    /// drain-and-relaunch) are retried with the client's standard
    /// backoff, since `eval` is a pure function and re-asking is free.
    fn evaluate_under(
        &self,
        input: &FuzzInput,
        ctx: &EvalContext,
        authority: CouplerAuthority,
    ) -> Evaluation {
        let request = tta_campaignd::protocol::EvalRequest {
            nodes: ctx.nodes,
            topology: ctx.topology,
            authority,
            slots: ctx.slots,
            policy: ctx.policy,
            plan: admissible_plan(input, ctx, authority),
        };
        let policy = tta_campaignd::client::ReconnectPolicy::default();
        let mut attempt = 0u32;
        loop {
            match self.client.eval(&request) {
                Ok(metrics) => return from_metrics(authority, &metrics),
                Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                    attempt += 1;
                    std::thread::sleep(policy.backoff(attempt));
                }
                Err(e) => panic!(
                    "campaign daemon on {} failed mid-fuzz: {e}",
                    self.client.socket().display()
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{FuzzEvent, FuzzEventKind};
    use tta_guardian::sos::SosDomain;
    use tta_sim::{FaultPersistence, NodeFaultKind};

    #[test]
    fn the_empty_plan_is_contained_and_fully_available() {
        let set = evaluate(&FuzzInput::empty(), &EvalContext::default());
        for eval in &set.evals {
            assert_eq!(eval.outcome, RecoveryOutcome::Contained);
            assert!(eval.availability > 0.9, "{}", eval.availability);
            assert_eq!(eval.freezes, 0);
        }
    }

    #[test]
    fn signatures_separate_benign_from_catastrophic() {
        let ctx = EvalContext::default();
        let benign = evaluate(&FuzzInput::empty(), &ctx);
        // An SOS sender after startup: under weak authority its
        // slightly-off-spec frames freeze healthy receivers.
        let nasty = FuzzInput {
            events: vec![FuzzEvent {
                kind: FuzzEventKind::Node {
                    node: 1,
                    kind: NodeFaultKind::Sos {
                        domain: SosDomain::Time,
                        magnitude: 0.5,
                    },
                },
                from_slot: 60,
                to_slot: 120,
                persistence: FaultPersistence::Transient,
            }],
        };
        let nasty = evaluate(&nasty, &ctx);
        assert_ne!(benign.signature(), nasty.signature());
        // And identical inputs hash identically.
        assert_eq!(
            evaluate(&FuzzInput::empty(), &ctx).signature(),
            benign.signature()
        );
    }
}
