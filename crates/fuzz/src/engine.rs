//! The fuzzing loop: deterministic rounds of mutate → execute →
//! admit → detect → shrink → emit.
//!
//! # Determinism
//!
//! The engine reuses the campaign layer's recipe: every candidate in
//! round `r` at batch index `i` gets its own RNG seeded by
//! `mix(seed ^ mix(r << 32 | i))`, candidates are *executed* on a
//! scoped worker pool in contiguous index chunks, and results are
//! *merged* single-threadedly in index order. The journal, the corpus,
//! and every emitted scenario are therefore byte-identical for every
//! `--threads` value — the differential tests pin exactly that. The
//! journal carries no timestamps; a wall-clock budget only decides how
//! many rounds run (checked at round boundaries), never what a round
//! contains.
//!
//! # The coverage signal
//!
//! Admission is signature novelty ([`crate::eval::EvalSet`]); finds are
//! either **availability cliffs** (a mutant loses at least `delta`
//! availability against its parent under one authority level) or
//! **outcome flips** (adjacent authority levels classify the same plan
//! into different [`RecoveryOutcome`] classes — the paper's
//! decentralized-vs-centralized tradeoff made concrete). At startup a
//! modellint coverage probe ([`tta_modellint::config_coverage`])
//! records each authority's reachable-space evidence in the journal
//! and gates the out-of-slot mutation on replay steps actually being
//! admissible somewhere.

use std::fmt::Write as _;
use std::time::Instant;

use tta_core::ClusterConfig;
use tta_guardian::CouplerAuthority;
use tta_modellint::{config_coverage, AnalysisOptions};
use tta_sim::RecoveryOutcome;

use crate::corpus::Corpus;
use crate::emit::{authority_token, emit_scenario, EmitRequest, Emitted};
use crate::eval::{evaluate_under, EvalContext, EvalSet, Evaluator, LocalEvaluator};
use crate::input::FuzzInput;
use crate::mutate::Mutator;
use crate::rng::{mix, FuzzRng};
use crate::shrink::shrink;

/// Everything a fuzzing run is parameterized by.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; the entire run is a pure function of it (plus the
    /// other fields).
    pub seed: u64,
    /// Maximum rounds to run.
    pub rounds: usize,
    /// Candidates per round.
    pub batch: usize,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Availability-cliff threshold: a mutant dropping at least this
    /// much against its parent under some authority is a find.
    pub delta: f64,
    /// Stop after this many emitted finds.
    pub max_finds: usize,
    /// Corpus capacity.
    pub corpus_cap: usize,
    /// Cluster shape candidates run against.
    pub ctx: EvalContext,
    /// Optional wall-clock deadline, checked at round boundaries only
    /// (so it can cut the run short but never change a round's
    /// content).
    pub deadline: Option<Instant>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 7,
            rounds: 16,
            batch: 32,
            threads: 0,
            delta: 0.3,
            max_finds: 8,
            corpus_cap: 256,
            ctx: EvalContext::default(),
            deadline: None,
        }
    }
}

/// Why a find is interesting.
#[derive(Debug, Clone, Copy)]
pub enum FindKind {
    /// The mutant lost `parent_availability - availability >= delta`
    /// under `authority` relative to its corpus parent.
    Cliff {
        /// Authority level where the drop happened.
        authority: CouplerAuthority,
        /// Parent's availability there.
        parent_availability: f64,
        /// Mutant's availability there (after shrinking).
        availability: f64,
    },
    /// Adjacent authority levels disagree about the recovery class.
    Flip {
        /// The weaker (more decentralized) level.
        lo: CouplerAuthority,
        /// Its recovery class.
        lo_outcome: RecoveryOutcome,
        /// The stronger (more centralized) level.
        hi: CouplerAuthority,
        /// Its recovery class.
        hi_outcome: RecoveryOutcome,
    },
}

/// One shrunk, emitted find.
#[derive(Debug, Clone)]
pub struct Find {
    /// Why it is interesting.
    pub kind: FindKind,
    /// The 1-minimal input.
    pub input: FuzzInput,
    /// Event count before shrinking.
    pub original_events: usize,
    /// The emitted regression scenario.
    pub emitted: Emitted,
}

/// The complete result of a fuzzing run.
#[derive(Debug)]
pub struct FuzzOutcome {
    /// The deterministic run journal.
    pub journal: String,
    /// Emitted finds, in discovery order.
    pub finds: Vec<Find>,
    /// Rounds actually executed.
    pub rounds_run: usize,
    /// Final corpus size.
    pub corpus_size: usize,
    /// The final corpus inputs (feed for `--synth`).
    pub corpus: Vec<FuzzInput>,
    /// Total simulator executions (4 per evaluated candidate).
    pub executions: usize,
}

/// Runs the fuzzer to completion, evaluating candidates in-process.
#[must_use]
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    fuzz_with(cfg, &LocalEvaluator)
}

/// Runs the fuzzer to completion with an explicit [`Evaluator`] —
/// [`LocalEvaluator`] for in-process execution, or
/// [`crate::eval::DaemonEvaluator`] to route every candidate run
/// through the campaign service. Both produce bit-identical journals
/// and finds: the evaluator only changes *where* the pure evaluation
/// function executes. The shrinker deliberately stays in-process
/// either way — it is a sequential search over many tiny candidates,
/// where per-run daemon round-trips would dominate, and locality
/// cannot change its result.
#[must_use]
pub fn fuzz_with(cfg: &FuzzConfig, evaluator: &dyn Evaluator) -> FuzzOutcome {
    let mut journal = String::new();
    let _ = writeln!(journal, "tta_fuzz journal");
    let _ = writeln!(
        journal,
        "seed {} rounds {} batch {} delta {:.2} nodes {} slots {} topology {} policy {}",
        cfg.seed,
        cfg.rounds,
        cfg.batch,
        cfg.delta,
        cfg.ctx.nodes,
        cfg.ctx.slots,
        match cfg.ctx.topology {
            tta_sim::Topology::Star => "star",
            tta_sim::Topology::Bus => "bus",
        },
        cfg.ctx.policy,
    );

    // Coverage probe: per-authority reachable-space evidence. The
    // truncation budget is deliberately small — the probe informs the
    // journal and the out-of-slot gate, it is not a verification run.
    let probe = AnalysisOptions {
        max_states: 1 << 14,
    };
    let mut replay_admissible = false;
    for authority in CouplerAuthority::all() {
        let evidence = config_coverage(
            &format!("fuzz:{}", authority_token(authority)),
            &ClusterConfig::paper(authority),
            &probe,
        );
        let out_of_slot_steps = evidence.fault_steps[3];
        replay_admissible |= out_of_slot_steps > 0;
        let _ = writeln!(
            journal,
            "coverage {}: states={} truncated={} out_of_slot_steps={}",
            authority_token(authority),
            evidence.states,
            evidence.truncated,
            out_of_slot_steps
        );
    }

    let mutator = Mutator {
        nodes: cfg.ctx.nodes,
        slots: cfg.ctx.slots,
        allow_out_of_slot: replay_admissible,
    };

    let mut executions = 0usize;
    let mut corpus = Corpus::new(cfg.corpus_cap);
    let seeds = mutator.seed_corpus();
    let seed_evals = evaluate_batch(&seeds, &cfg.ctx, cfg.threads, evaluator);
    executions += seeds.len() * 4;
    for (input, evals) in seeds.into_iter().zip(seed_evals) {
        corpus.admit(input, evals);
    }
    let _ = writeln!(journal, "seed corpus: {} entries", corpus.len());

    let mut finds: Vec<Find> = Vec::new();
    let mut emitted_names: Vec<String> = Vec::new();
    let mut rounds_run = 0usize;

    for round in 0..cfg.rounds {
        if finds.len() >= cfg.max_finds {
            let _ = writeln!(journal, "stopping: find budget reached");
            break;
        }
        // detlint: allow(DL02) reason=wall-clock fuzz budget; bounds exploration time, findings remain seed-deterministic
        if cfg.deadline.is_some_and(|d| Instant::now() >= d) {
            let _ = writeln!(journal, "stopping: wall-clock budget exhausted");
            break;
        }
        rounds_run = round + 1;

        // Mutate against a snapshot so admission order within the
        // round cannot feed back into candidate construction.
        let snapshot = corpus.inputs();
        let mut candidates: Vec<(usize, FuzzInput)> = Vec::with_capacity(cfg.batch);
        for i in 0..cfg.batch {
            let candidate_seed = mix(cfg.seed ^ mix(((round as u64) << 32) | i as u64));
            let parent_index = (candidate_seed % snapshot.len() as u64) as usize;
            let mut rng = FuzzRng::new(candidate_seed);
            let child = mutator.mutate(&snapshot[parent_index], &snapshot, &mut rng);
            candidates.push((parent_index, child));
        }

        let inputs: Vec<FuzzInput> = candidates.iter().map(|(_, c)| c.clone()).collect();
        let evals = evaluate_batch(&inputs, &cfg.ctx, cfg.threads, evaluator);
        executions += inputs.len() * 4;

        let admitted_before = corpus.len();
        for ((parent_index, child), child_evals) in candidates.into_iter().zip(evals) {
            if corpus.contains_signature(child_evals.signature()) {
                continue;
            }
            let parent_evals = corpus.entries()[parent_index].evals;
            corpus.admit(child.clone(), child_evals);
            if finds.len() >= cfg.max_finds {
                continue;
            }
            if let Some(find) = detect(
                &child,
                &child_evals,
                &parent_evals,
                cfg,
                &mut emitted_names,
                &mut executions,
            ) {
                let _ = writeln!(
                    journal,
                    "find {}: {}",
                    finds.len() + 1,
                    describe(&find.kind)
                );
                for line in find.input.render().lines() {
                    let _ = writeln!(journal, "  {line}");
                }
                let _ = writeln!(
                    journal,
                    "  shrunk {} -> {} events; scenario {}",
                    find.original_events,
                    find.input.events.len(),
                    find.emitted.name
                );
                finds.push(find);
            }
        }
        let _ = writeln!(
            journal,
            "round {round}: corpus {} (+{}) finds {}",
            corpus.len(),
            corpus.len() - admitted_before,
            finds.len()
        );
    }

    let _ = writeln!(
        journal,
        "done: rounds {} corpus {} executions {} finds {}",
        rounds_run,
        corpus.len(),
        executions,
        finds.len()
    );

    FuzzOutcome {
        journal,
        finds,
        rounds_run,
        corpus_size: corpus.len(),
        corpus: corpus.inputs(),
        executions,
    }
}

/// Checks one admitted candidate for a cliff or flip; shrinks and
/// emits on success. Returns `None` when nothing interesting happened
/// or the find failed its emission self-check (suppressed).
fn detect(
    child: &FuzzInput,
    child_evals: &EvalSet,
    parent_evals: &EvalSet,
    cfg: &FuzzConfig,
    emitted_names: &mut Vec<String>,
    executions: &mut usize,
) -> Option<Find> {
    // Cliff: the steepest per-authority availability drop vs parent.
    let mut cliff: Option<(CouplerAuthority, f64, f64)> = None;
    for (parent, child_eval) in parent_evals.evals.iter().zip(&child_evals.evals) {
        let drop = parent.availability - child_eval.availability;
        if drop >= cfg.delta && cliff.is_none_or(|(_, p, a)| drop > p - a) {
            cliff = Some((
                parent.authority,
                parent.availability,
                child_eval.availability,
            ));
        }
    }
    if let Some((authority, parent_availability, _)) = cliff {
        let threshold = parent_availability - cfg.delta;
        let shrunk = shrink(child, |input| {
            *executions += 1;
            evaluate_under(input, &cfg.ctx, authority).availability <= threshold
        });
        let availability = evaluate_under(&shrunk, &cfg.ctx, authority).availability;
        let kind = FindKind::Cliff {
            authority,
            parent_availability,
            availability,
        };
        return finish(child, shrunk, kind, authority, cfg, emitted_names);
    }

    // Flip: adjacent authority levels disagreeing on the class.
    for pair in child_evals.evals.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        if lo.outcome != hi.outcome {
            let (lo_a, lo_o, hi_a, hi_o) = (lo.authority, lo.outcome, hi.authority, hi.outcome);
            let shrunk = shrink(child, |input| {
                *executions += 2;
                evaluate_under(input, &cfg.ctx, lo_a).outcome == lo_o
                    && evaluate_under(input, &cfg.ctx, hi_a).outcome == hi_o
            });
            let kind = FindKind::Flip {
                lo: lo_a,
                lo_outcome: lo_o,
                hi: hi_a,
                hi_outcome: hi_o,
            };
            return finish(child, shrunk, kind, hi_a, cfg, emitted_names);
        }
    }
    None
}

/// Deduplicates (post-shrink) and emits; `None` when already seen or
/// the emission self-check rejects the scenario.
fn finish(
    child: &FuzzInput,
    shrunk: FuzzInput,
    kind: FindKind,
    authority: CouplerAuthority,
    cfg: &FuzzConfig,
    emitted_names: &mut Vec<String>,
) -> Option<Find> {
    let request = EmitRequest {
        input: &shrunk,
        authority,
        kind_word: match kind {
            FindKind::Cliff { .. } => "cliff",
            FindKind::Flip { .. } => "flip",
        },
        description: format!("{} (tta_fuzz seed {})", describe(&kind), cfg.seed),
        ctx: &cfg.ctx,
    };
    let emitted = emit_scenario(&request).ok()?;
    if emitted_names.contains(&emitted.name) {
        return None;
    }
    emitted_names.push(emitted.name.clone());
    Some(Find {
        kind,
        input: shrunk,
        original_events: child.events.len(),
        emitted,
    })
}

/// One deterministic sentence per find kind (journal + description).
#[must_use]
pub fn describe(kind: &FindKind) -> String {
    match kind {
        FindKind::Cliff {
            authority,
            parent_availability,
            availability,
        } => format!(
            "availability cliff under {}: {:.4} -> {:.4}",
            authority_token(*authority),
            parent_availability,
            availability
        ),
        FindKind::Flip {
            lo,
            lo_outcome,
            hi,
            hi_outcome,
        } => format!(
            "outcome flip {} {} -> {} {}",
            authority_token(*lo),
            lo_outcome,
            authority_token(*hi),
            hi_outcome
        ),
    }
}

/// Evaluates a batch on a scoped worker pool, returning results in
/// input order: inputs are split into contiguous chunks, each worker
/// owns a chunk, and chunk results are concatenated in chunk order.
fn evaluate_batch(
    inputs: &[FuzzInput],
    ctx: &EvalContext,
    threads: usize,
    evaluator: &dyn Evaluator,
) -> Vec<EvalSet> {
    if inputs.is_empty() {
        return Vec::new();
    }
    // detlint: allow(DL03) reason=default worker count; picks a schedule only, exploration results are identical at any thread count
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    let workers = if threads == 0 { available } else { threads }.clamp(1, inputs.len());
    let chunk = inputs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|i| evaluator.evaluate(i, ctx))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("evaluation worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_is_deterministic_and_finds_the_seeded_cliff() {
        let cfg = FuzzConfig {
            rounds: 2,
            batch: 8,
            max_finds: 2,
            ..FuzzConfig::default()
        };
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.journal, b.journal);
        assert_eq!(a.finds.len(), b.finds.len());
    }
}
