//! Mutation operators over [`FuzzInput`]s.
//!
//! Every operator preserves the structural invariants [`FuzzInput`]
//! relies on (`1 <= from < to <= slots`, intermittent `period >= 2`
//! with `1 <= duty < period`, magnitudes from a fixed palette,
//! claimed slots in `1..=nodes`) so the only repair [`FuzzInput::plan`]
//! ever performs is the cross-channel coupler-overlap drop. Operators
//! draw all randomness from the per-candidate [`FuzzRng`], so a mutant
//! is a pure function of `(parent, corpus, seed)`.

use tta_guardian::sos::SosDomain;
use tta_guardian::CouplerFaultMode;
use tta_sim::{FaultPersistence, NodeFaultKind};

use crate::input::{FuzzEvent, FuzzEventKind, FuzzInput};
use crate::rng::FuzzRng;

/// Magnitudes the SOS mutator draws from. A fixed palette keeps
/// rendering, hashing, and TOML round-trips exact; 0.5 is the paper's
/// "slightly off-specification" sweet spot that splits receivers.
const MAGNITUDES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Cap on events per input: plans worth pinning are small, and the
/// shrinker removes the rest.
const MAX_EVENTS: usize = 5;

/// The mutation engine: cluster-shape parameters plus the operator set.
#[derive(Debug, Clone, Copy)]
pub struct Mutator {
    /// Cluster size (node indices and claimed slots derive from it).
    pub nodes: usize,
    /// Simulation horizon; windows stay inside it so emitted scenarios
    /// are free of ML30 beyond-horizon lint findings.
    pub slots: u64,
    /// Whether the out-of-slot coupler mode is offered. The engine
    /// enables this only when the coverage probe shows some authority
    /// level actually admits replay steps.
    pub allow_out_of_slot: bool,
}

impl Mutator {
    /// The deterministic seed corpus: the fault-free origin plus one
    /// representative of each single-fault family from the E9/E10
    /// campaigns, all mid-horizon transients.
    #[must_use]
    pub fn seed_corpus(&self) -> Vec<FuzzInput> {
        let from = self.slots / 8;
        let to = self.slots / 2;
        let single = |kind| FuzzInput {
            events: vec![FuzzEvent {
                kind,
                from_slot: from,
                to_slot: to,
                persistence: FaultPersistence::Transient,
            }],
        };
        let mut seeds = vec![
            FuzzInput::empty(),
            single(FuzzEventKind::Coupler {
                channel: 0,
                mode: CouplerFaultMode::Silence,
            }),
            single(FuzzEventKind::Coupler {
                channel: 0,
                mode: CouplerFaultMode::BadFrame,
            }),
            single(FuzzEventKind::Node {
                node: 1,
                kind: NodeFaultKind::Sos {
                    domain: SosDomain::Time,
                    magnitude: 0.5,
                },
            }),
            single(FuzzEventKind::Node {
                node: 1,
                kind: NodeFaultKind::Babbling,
            }),
            single(FuzzEventKind::Node {
                node: 2,
                kind: NodeFaultKind::Mute,
            }),
        ];
        if self.allow_out_of_slot {
            seeds.push(single(FuzzEventKind::Coupler {
                channel: 0,
                mode: CouplerFaultMode::OutOfSlot,
            }));
        }
        seeds
    }

    /// Produces one mutant of `parent`. `corpus` feeds the splice
    /// operator (crossover with another entry's events).
    #[must_use]
    pub fn mutate(&self, parent: &FuzzInput, corpus: &[FuzzInput], rng: &mut FuzzRng) -> FuzzInput {
        let mut child = parent.clone();
        // One to three stacked operators: single steps explore the
        // neighborhood, occasional doubles jump saddle points.
        let applications = 1 + rng.gen_range(3) as usize / 2;
        for _ in 0..applications {
            self.apply_one(&mut child, corpus, rng);
        }
        child
    }

    fn apply_one(&self, child: &mut FuzzInput, corpus: &[FuzzInput], rng: &mut FuzzRng) {
        if child.events.is_empty() {
            child.events.push(self.random_event(rng));
            return;
        }
        match rng.gen_range(9) {
            // Add an event.
            0 => {
                if child.events.len() < MAX_EVENTS {
                    child.events.push(self.random_event(rng));
                }
            }
            // Remove an event.
            1 => {
                let i = rng.gen_range(child.events.len() as u64) as usize;
                child.events.remove(i);
            }
            // Shift the window.
            2 => {
                let event = self.pick_event(child, rng);
                let width = event.to_slot - event.from_slot;
                let delta = 1 + rng.gen_range(self.slots / 8);
                if rng.gen_bool(1, 2) {
                    event.to_slot = (event.to_slot + delta).min(self.slots);
                    event.from_slot = event.to_slot - width.min(event.to_slot - 1);
                } else {
                    event.from_slot = event.from_slot.saturating_sub(delta).max(1);
                    event.to_slot = (event.from_slot + width).min(self.slots);
                }
            }
            // Grow the window.
            3 => {
                let slots = self.slots;
                let event = self.pick_event(child, rng);
                let delta = 1 + rng.gen_range(slots / 4);
                event.to_slot = (event.to_slot + delta).min(slots);
            }
            // Shrink the window (keep at least one slot).
            4 => {
                let event = self.pick_event(child, rng);
                let width = event.to_slot - event.from_slot;
                if width > 1 {
                    let delta = 1 + rng.gen_range(width - 1);
                    event.to_slot -= delta;
                }
            }
            // Cycle persistence.
            5 => {
                let event = self.pick_event(child, rng);
                event.persistence = match event.persistence {
                    FaultPersistence::Transient => {
                        if rng.gen_bool(1, 2) {
                            let period = 2 + rng.gen_range(7);
                            let duty = 1 + rng.gen_range(period - 1);
                            FaultPersistence::Intermittent { period, duty }
                        } else {
                            FaultPersistence::Permanent
                        }
                    }
                    FaultPersistence::Intermittent { .. } | FaultPersistence::Permanent => {
                        FaultPersistence::Transient
                    }
                };
            }
            // Retarget: flip the channel or move the fault to another
            // node.
            6 => {
                let nodes = self.nodes;
                let event = self.pick_event(child, rng);
                match &mut event.kind {
                    FuzzEventKind::Coupler { channel, .. } => *channel = 1 - *channel,
                    FuzzEventKind::Node { node, .. } => {
                        *node = rng.gen_range(nodes as u64) as u8;
                    }
                }
            }
            // Change the fault mode / kind in place.
            7 => {
                let event = self.pick_event(child, rng);
                match &mut event.kind {
                    FuzzEventKind::Coupler { mode, .. } => *mode = self.random_mode(rng),
                    FuzzEventKind::Node { kind, .. } => *kind = self.random_kind(rng),
                }
            }
            // Splice: graft one event from another corpus entry.
            _ => {
                let donors: Vec<&FuzzEvent> =
                    corpus.iter().flat_map(|input| &input.events).collect();
                if !donors.is_empty() && child.events.len() < MAX_EVENTS {
                    child.events.push(**rng.pick(&donors));
                }
            }
        }
    }

    fn pick_event<'a>(&self, child: &'a mut FuzzInput, rng: &mut FuzzRng) -> &'a mut FuzzEvent {
        let i = rng.gen_range(child.events.len() as u64) as usize;
        &mut child.events[i]
    }

    fn random_mode(&self, rng: &mut FuzzRng) -> CouplerFaultMode {
        let modes: &[CouplerFaultMode] = if self.allow_out_of_slot {
            &[
                CouplerFaultMode::Silence,
                CouplerFaultMode::BadFrame,
                CouplerFaultMode::OutOfSlot,
            ]
        } else {
            &[CouplerFaultMode::Silence, CouplerFaultMode::BadFrame]
        };
        *rng.pick(modes)
    }

    fn random_kind(&self, rng: &mut FuzzRng) -> NodeFaultKind {
        let claimed = 1 + rng.gen_range(self.nodes as u64) as u16;
        match rng.gen_range(5) {
            0 => NodeFaultKind::Sos {
                domain: if rng.gen_bool(1, 2) {
                    SosDomain::Time
                } else {
                    SosDomain::Value
                },
                magnitude: *rng.pick(&MAGNITUDES),
            },
            1 => NodeFaultKind::MasqueradeColdStart {
                claimed_slot: claimed,
            },
            2 => NodeFaultKind::InvalidCState {
                claimed_slot: claimed,
            },
            3 => NodeFaultKind::Babbling,
            _ => NodeFaultKind::Mute,
        }
    }

    fn random_event(&self, rng: &mut FuzzRng) -> FuzzEvent {
        let from_slot = 1 + rng.gen_range(self.slots / 2);
        let width = 1 + rng.gen_range(self.slots / 2);
        let to_slot = (from_slot + width).min(self.slots);
        let kind = if rng.gen_bool(1, 2) {
            FuzzEventKind::Coupler {
                channel: rng.gen_range(2) as usize,
                mode: self.random_mode(rng),
            }
        } else {
            FuzzEventKind::Node {
                node: rng.gen_range(self.nodes as u64) as u8,
                kind: self.random_kind(rng),
            }
        };
        FuzzEvent {
            kind,
            from_slot,
            to_slot,
            persistence: FaultPersistence::Transient,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_formed(mutator: &Mutator, input: &FuzzInput) {
        assert!(input.events.len() <= MAX_EVENTS);
        for event in &input.events {
            assert!(event.from_slot >= 1, "{}", event.render());
            assert!(event.from_slot < event.to_slot, "{}", event.render());
            assert!(event.to_slot <= mutator.slots, "{}", event.render());
            if let FaultPersistence::Intermittent { period, duty } = event.persistence {
                assert!(period >= 2 && (1..period).contains(&duty));
            }
            match event.kind {
                FuzzEventKind::Coupler { channel, mode } => {
                    assert!(channel < 2);
                    assert!(mutator.allow_out_of_slot || mode != CouplerFaultMode::OutOfSlot);
                }
                FuzzEventKind::Node { node, .. } => {
                    assert!((node as usize) < mutator.nodes);
                }
            }
        }
        // The lowering must never panic.
        let _ = input.plan();
    }

    #[test]
    fn thousands_of_mutants_stay_structurally_valid() {
        let mutator = Mutator {
            nodes: 4,
            slots: 400,
            allow_out_of_slot: false,
        };
        let corpus = mutator.seed_corpus();
        let mut rng = FuzzRng::new(42);
        for seed in &corpus {
            let mut current = seed.clone();
            for _ in 0..500 {
                current = mutator.mutate(&current, &corpus, &mut rng);
                well_formed(&mutator, &current);
            }
        }
    }

    #[test]
    fn mutation_is_a_pure_function_of_the_seed() {
        let mutator = Mutator {
            nodes: 4,
            slots: 400,
            allow_out_of_slot: true,
        };
        let corpus = mutator.seed_corpus();
        let a = mutator.mutate(&corpus[3], &corpus, &mut FuzzRng::new(99));
        let b = mutator.mutate(&corpus[3], &corpus, &mut FuzzRng::new(99));
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_slot_is_gated() {
        let mutator = Mutator {
            nodes: 4,
            slots: 400,
            allow_out_of_slot: false,
        };
        let corpus = mutator.seed_corpus();
        let mut rng = FuzzRng::new(5);
        for _ in 0..2000 {
            let mutant = mutator.mutate(&corpus[1], &corpus, &mut rng);
            well_formed(&mutator, &mutant);
        }
    }
}
