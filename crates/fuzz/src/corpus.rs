//! The fuzzing corpus: inputs that reached novel coverage.
//!
//! Novelty is the [`EvalSet::signature`] — a quantized summary of what
//! every authority level did with the plan. The corpus is
//! append-only, capped, and deduplicated by signature, so parents for
//! the next round always come from a deterministic, bounded pool.

use std::collections::BTreeSet;

use crate::eval::EvalSet;
use crate::input::FuzzInput;

/// One admitted corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The input itself.
    pub input: FuzzInput,
    /// Its coverage evaluation at admission time.
    pub evals: EvalSet,
}

/// The admission-gated input pool.
#[derive(Debug)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    seen: BTreeSet<u64>,
    cap: usize,
}

impl Corpus {
    /// An empty corpus holding at most `cap` entries.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Corpus {
            entries: Vec::new(),
            seen: BTreeSet::new(),
            cap: cap.max(1),
        }
    }

    /// Admits the input when its signature is novel and the cap has
    /// room. Returns whether it entered the pool. A known signature is
    /// recorded-by-construction (the original holder stays).
    pub fn admit(&mut self, input: FuzzInput, evals: EvalSet) -> bool {
        let signature = evals.signature();
        if self.entries.len() >= self.cap || !self.seen.insert(signature) {
            return false;
        }
        self.entries.push(CorpusEntry { input, evals });
        true
    }

    /// Whether this signature has already been admitted.
    #[must_use]
    pub fn contains_signature(&self, signature: u64) -> bool {
        self.seen.contains(&signature)
    }

    /// The admitted entries, in admission order.
    #[must_use]
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of admitted entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been admitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry inputs alone — what the splice operator feeds on.
    #[must_use]
    pub fn inputs(&self) -> Vec<FuzzInput> {
        self.entries.iter().map(|e| e.input.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, EvalContext};

    #[test]
    fn duplicate_signatures_are_rejected() {
        let ctx = EvalContext::default();
        let empty = FuzzInput::empty();
        let evals = evaluate(&empty, &ctx);
        let mut corpus = Corpus::new(8);
        assert!(corpus.admit(empty.clone(), evals));
        assert!(!corpus.admit(empty, evals));
        assert_eq!(corpus.len(), 1);
    }
}
