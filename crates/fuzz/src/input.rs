//! The fuzzer's genotype: a flat, order-preserving list of fault
//! events that lowers into a [`FaultPlan`].
//!
//! [`FaultPlan`]'s builders *panic* on ill-formed plans (empty windows,
//! out-of-range channels, dual-channel coupler overlap) because
//! hand-written plans should fail loudly. A fuzzer cannot afford
//! panics, so [`FuzzInput`] keeps the mutation-friendly representation
//! and [`FuzzInput::plan`] performs the one repair mutation operators
//! cannot locally guarantee: dropping coupler events that would violate
//! the single-faulty-coupler hypothesis against an earlier kept event.
//! Everything else (window shape, persistence parameters) is a
//! structural invariant the mutators maintain.

use std::fmt::Write as _;
use tta_guardian::sos::SosDomain;
use tta_guardian::CouplerFaultMode;
use tta_sim::{CouplerFaultEvent, FaultPersistence, FaultPlan, NodeFault, NodeFaultKind};
use tta_types::NodeId;

/// What one event injects: a coupler (channel-side) or node
/// (transmitter-side) fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FuzzEventKind {
    /// A star-coupler fault on one channel.
    Coupler {
        /// Affected channel (0 or 1).
        channel: usize,
        /// Fault mode during the window.
        mode: CouplerFaultMode,
    },
    /// A node fault.
    Node {
        /// Dense index of the faulty node.
        node: u8,
        /// Kind of misbehavior.
        kind: NodeFaultKind,
    },
}

/// One fault event: a kind plus the window and persistence shared by
/// every injectable fault in the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzEvent {
    /// Coupler- or node-side fault.
    pub kind: FuzzEventKind,
    /// First absolute slot at which the fault is active.
    pub from_slot: u64,
    /// First absolute slot at which it is no longer active.
    pub to_slot: u64,
    /// Temporal persistence within (or beyond) the window.
    pub persistence: FaultPersistence,
}

impl FuzzEvent {
    /// First slot at which the event can never be active again.
    #[must_use]
    pub fn envelope_end(&self) -> u64 {
        self.persistence.envelope_end(self.to_slot)
    }

    /// Renders the event as one deterministic journal token, e.g.
    /// `coupler ch0 silence 10..50 transient`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.kind {
            FuzzEventKind::Coupler { channel, mode } => {
                let _ = write!(out, "coupler ch{channel} {}", coupler_mode_name(mode));
            }
            FuzzEventKind::Node { node, kind } => {
                let _ = write!(out, "node {node} {}", node_kind_token(kind));
            }
        }
        let _ = write!(
            out,
            " {}..{} {}",
            self.from_slot, self.to_slot, self.persistence
        );
        out
    }
}

/// The DSL spelling of a coupler fault mode (underscored, unlike the
/// type's `Display`).
#[must_use]
pub fn coupler_mode_name(mode: CouplerFaultMode) -> &'static str {
    match mode {
        CouplerFaultMode::None => "none",
        CouplerFaultMode::Silence => "silence",
        CouplerFaultMode::BadFrame => "bad_frame",
        CouplerFaultMode::OutOfSlot => "out_of_slot",
    }
}

/// The DSL spelling of a node fault kind (parameters rendered inline
/// for journal lines; the scenario emitter writes them as keys).
#[must_use]
pub fn node_kind_token(kind: NodeFaultKind) -> String {
    match kind {
        NodeFaultKind::Sos { domain, magnitude } => {
            let domain = match domain {
                SosDomain::Time => "time",
                SosDomain::Value => "value",
            };
            format!("sos({domain}, {magnitude})")
        }
        NodeFaultKind::MasqueradeColdStart { claimed_slot } => {
            format!("masquerade_cold_start({claimed_slot})")
        }
        NodeFaultKind::InvalidCState { claimed_slot } => {
            format!("invalid_cstate({claimed_slot})")
        }
        NodeFaultKind::Babbling => "babbling".to_string(),
        NodeFaultKind::Mute => "mute".to_string(),
    }
}

/// A mutable fault plan: the corpus entry the mutation engine works on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuzzInput {
    /// Events in injection order (first-match-wins in the simulator).
    pub events: Vec<FuzzEvent>,
}

impl FuzzInput {
    /// An input with no faults — the corpus origin.
    #[must_use]
    pub fn empty() -> Self {
        FuzzInput::default()
    }

    /// Lowers into a [`FaultPlan`], dropping any coupler event whose
    /// active envelope overlaps an earlier *kept* coupler event on the
    /// other channel (the builder would panic on it: the simulator
    /// enforces the single-faulty-coupler hypothesis). Node events are
    /// unconstrained. Keeping earlier events mirrors the simulator's
    /// first-match-wins dispatch, so repair never changes what an
    /// already-admitted prefix means.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let mut kept: Vec<(usize, u64, u64)> = Vec::new();
        for event in &self.events {
            match event.kind {
                FuzzEventKind::Coupler { channel, mode } => {
                    let overlaps = kept.iter().any(|&(ch, from, end)| {
                        ch != channel && event.from_slot < end && from < event.envelope_end()
                    });
                    if overlaps {
                        continue;
                    }
                    kept.push((channel, event.from_slot, event.envelope_end()));
                    plan = plan.with_coupler_fault(CouplerFaultEvent {
                        channel,
                        mode,
                        from_slot: event.from_slot,
                        to_slot: event.to_slot,
                        persistence: event.persistence,
                    });
                }
                FuzzEventKind::Node { node, kind } => {
                    plan = plan.with_node_fault(NodeFault {
                        node: NodeId::new(node),
                        kind,
                        from_slot: event.from_slot,
                        to_slot: event.to_slot,
                        persistence: event.persistence,
                    });
                }
            }
        }
        plan
    }

    /// Deterministic multi-line rendering: one event per line, or
    /// `(no faults)` for the empty input. Journal text and content
    /// hashes both build on this.
    #[must_use]
    pub fn render(&self) -> String {
        if self.events.is_empty() {
            return "(no faults)".to_string();
        }
        self.events
            .iter()
            .map(FuzzEvent::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coupler(channel: usize, from: u64, to: u64) -> FuzzEvent {
        FuzzEvent {
            kind: FuzzEventKind::Coupler {
                channel,
                mode: CouplerFaultMode::Silence,
            },
            from_slot: from,
            to_slot: to,
            persistence: FaultPersistence::Transient,
        }
    }

    #[test]
    fn overlapping_dual_channel_events_are_repaired_not_panicked() {
        let input = FuzzInput {
            events: vec![coupler(0, 10, 50), coupler(1, 20, 30)],
        };
        let plan = input.plan();
        // The second event is dropped; the first survives.
        assert_eq!(plan.coupler_fault_at(0, 15), CouplerFaultMode::Silence);
        assert_eq!(plan.coupler_fault_at(1, 25), CouplerFaultMode::None);
    }

    #[test]
    fn permanent_envelope_blocks_the_other_channel_forever() {
        let mut first = coupler(0, 10, 11);
        first.persistence = FaultPersistence::Permanent;
        let input = FuzzInput {
            events: vec![first, coupler(1, 300, 310)],
        };
        let plan = input.plan();
        assert_eq!(plan.coupler_fault_at(1, 305), CouplerFaultMode::None);
    }

    #[test]
    fn abutting_windows_on_both_channels_are_legal() {
        let input = FuzzInput {
            events: vec![coupler(0, 10, 50), coupler(1, 50, 60)],
        };
        let plan = input.plan();
        assert_eq!(plan.coupler_fault_at(1, 55), CouplerFaultMode::Silence);
    }

    #[test]
    fn render_is_deterministic_and_readable() {
        let input = FuzzInput {
            events: vec![coupler(0, 10, 50)],
        };
        assert_eq!(input.render(), "coupler ch0 silence 10..50 transient");
        assert_eq!(FuzzInput::empty().render(), "(no faults)");
    }
}
