//! Delta-debugging shrinker: reduces an interesting input to a
//! 1-minimal one while preserving a caller-supplied predicate.
//!
//! The reduction passes are, in order: drop whole events, simplify
//! persistence to plain transient, then narrow windows (binary halves
//! first, single slots last, both ends). The passes repeat to a
//! fixpoint; termination *is* the minimality certificate, because a
//! fixpoint means every single-step reduction — removing any one
//! remaining event, or narrowing any remaining window by one slot —
//! was tried against the predicate and failed. The proptests in
//! `tests/shrink_prop.rs` re-verify that certificate independently via
//! [`is_one_minimal`].
//!
//! The predicate is re-executed, never assumed: shrinking an
//! availability cliff re-runs the simulator at every step, exactly as
//! classic delta debugging re-runs the failing test.

use crate::input::FuzzInput;

/// Shrinks `input` to a 1-minimal input still satisfying `keeps`.
///
/// `keeps(input)` must hold on entry; the result always satisfies
/// `keeps` and no single-event removal or one-slot window narrowing of
/// the result does.
pub fn shrink<F: FnMut(&FuzzInput) -> bool>(input: &FuzzInput, mut keeps: F) -> FuzzInput {
    debug_assert!(keeps(input), "shrink requires an interesting input");
    let mut current = input.clone();
    loop {
        let mut changed = false;

        // Pass 1: drop events, last first so indices stay stable.
        let mut i = current.events.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            candidate.events.remove(i);
            if keeps(&candidate) {
                current = candidate;
                changed = true;
            }
        }

        // Pass 2: simplify persistence — a transient window is the
        // weakest temporal shape, so prefer it whenever it suffices.
        for i in 0..current.events.len() {
            if current.events[i].persistence != tta_sim::FaultPersistence::Transient {
                let mut candidate = current.clone();
                candidate.events[i].persistence = tta_sim::FaultPersistence::Transient;
                if keeps(&candidate) {
                    current = candidate;
                    changed = true;
                }
            }
        }

        // Pass 3: narrow windows. Halving gets within a factor of two
        // cheaply; the single-slot trims establish 1-minimality.
        for i in 0..current.events.len() {
            changed |= narrow(&mut current, i, &mut keeps);
        }

        if !changed {
            return current;
        }
    }
}

/// Narrows one event's window as far as the predicate allows. Returns
/// whether anything changed.
fn narrow<F: FnMut(&FuzzInput) -> bool>(current: &mut FuzzInput, i: usize, keeps: &mut F) -> bool {
    let mut changed = false;
    // Halve from the right.
    loop {
        let event = current.events[i];
        let width = event.to_slot - event.from_slot;
        if width <= 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.events[i].to_slot = event.from_slot + width.div_ceil(2);
        if keeps(&candidate) {
            *current = candidate;
            changed = true;
        } else {
            break;
        }
    }
    // Halve from the left.
    loop {
        let event = current.events[i];
        let width = event.to_slot - event.from_slot;
        if width <= 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.events[i].from_slot = event.to_slot - width.div_ceil(2);
        if keeps(&candidate) {
            *current = candidate;
            changed = true;
        } else {
            break;
        }
    }
    // Single-slot trims, both ends.
    loop {
        let event = current.events[i];
        if event.to_slot - event.from_slot <= 1 {
            break;
        }
        let mut candidate = current.clone();
        candidate.events[i].to_slot -= 1;
        if keeps(&candidate) {
            *current = candidate;
            changed = true;
            continue;
        }
        let mut candidate = current.clone();
        candidate.events[i].from_slot += 1;
        if keeps(&candidate) {
            *current = candidate;
            changed = true;
            continue;
        }
        break;
    }
    changed
}

/// Checks 1-minimality directly: `keeps` holds on `input`, fails when
/// any single event is removed, and fails when any single window is
/// narrowed by one slot (either end). Windows already one slot wide
/// cannot narrow further and are vacuously minimal.
pub fn is_one_minimal<F: FnMut(&FuzzInput) -> bool>(input: &FuzzInput, mut keeps: F) -> bool {
    if !keeps(input) {
        return false;
    }
    for i in 0..input.events.len() {
        let mut removed = input.clone();
        removed.events.remove(i);
        if keeps(&removed) {
            return false;
        }
        if input.events[i].to_slot - input.events[i].from_slot > 1 {
            let mut trimmed = input.clone();
            trimmed.events[i].to_slot -= 1;
            if keeps(&trimmed) {
                return false;
            }
            let mut trimmed = input.clone();
            trimmed.events[i].from_slot += 1;
            if keeps(&trimmed) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{FuzzEvent, FuzzEventKind};
    use tta_guardian::CouplerFaultMode;
    use tta_sim::FaultPersistence;

    fn event(channel: usize, from: u64, to: u64) -> FuzzEvent {
        FuzzEvent {
            kind: FuzzEventKind::Coupler {
                channel,
                mode: CouplerFaultMode::Silence,
            },
            from_slot: from,
            to_slot: to,
            persistence: FaultPersistence::Transient,
        }
    }

    #[test]
    fn shrinks_to_the_single_load_bearing_event() {
        let input = FuzzInput {
            events: vec![event(0, 10, 200), event(1, 250, 300), event(0, 310, 320)],
        };
        // Interesting: some channel-0 event covers slot 42.
        let keeps = |input: &FuzzInput| {
            input.events.iter().any(|e| {
                matches!(e.kind, FuzzEventKind::Coupler { channel: 0, .. })
                    && (e.from_slot..e.to_slot).contains(&42)
            })
        };
        let shrunk = shrink(&input, keeps);
        assert_eq!(shrunk.events.len(), 1);
        assert_eq!(
            (shrunk.events[0].from_slot, shrunk.events[0].to_slot),
            (42, 43)
        );
        assert!(is_one_minimal(&shrunk, keeps));
    }

    #[test]
    fn persistence_simplifies_when_transient_suffices() {
        let mut permanent = event(0, 50, 60);
        permanent.persistence = FaultPersistence::Permanent;
        let input = FuzzInput {
            events: vec![permanent],
        };
        let keeps = |input: &FuzzInput| !input.events.is_empty();
        let shrunk = shrink(&input, keeps);
        assert_eq!(shrunk.events[0].persistence, FaultPersistence::Transient);
        assert_eq!(
            shrunk.events[0].to_slot - shrunk.events[0].from_slot,
            1,
            "window narrowed to one slot"
        );
    }

    #[test]
    fn minimality_checker_rejects_padded_inputs() {
        let input = FuzzInput {
            events: vec![event(0, 10, 50), event(1, 60, 70)],
        };
        // Only the first event matters.
        let keeps = |input: &FuzzInput| {
            input
                .events
                .iter()
                .any(|e| matches!(e.kind, FuzzEventKind::Coupler { channel: 0, .. }))
        };
        assert!(!is_one_minimal(&input, keeps));
    }
}
