//! Deterministic pseudo-randomness for the fuzzer.
//!
//! The engine derives one [`FuzzRng`] per candidate from `(seed, round,
//! index)` through the same SplitMix64 finalizer the campaign layer
//! uses, so mutation decisions never depend on thread scheduling or
//! global RNG state — a candidate's content is a pure function of its
//! coordinates. No external RNG crate is involved: determinism across
//! platforms and toolchains is the whole point.

/// SplitMix64: tiny, fast, and statistically fine for fuzzing choices.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator whose entire stream is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform-ish value in `0..bound` (`bound` must be nonzero).
    /// Lemire's widening multiply without rejection: the bias is
    /// irrelevant for mutation choices and the cost is one multiply.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range bound must be nonzero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// `true` with probability `num / den`.
    pub fn gen_bool(&mut self, num: u64, den: u64) -> bool {
        self.gen_range(den) < num
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range(items.len() as u64) as usize]
    }
}

/// The SplitMix64 finalizer (also used by the campaign layer): a full
/// avalanche, so neighboring inputs yield unrelated outputs.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string: the stable content hash behind corpus
/// dedup keys and emitted scenario names.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = FuzzRng::new(7);
        let mut b = FuzzRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_the_bound() {
        let mut rng = FuzzRng::new(11);
        for _ in 0..1000 {
            assert!(rng.gen_range(13) < 13);
        }
    }

    #[test]
    fn fnv_is_content_stable() {
        assert_eq!(fnv1a(b"tta"), fnv1a(b"tta"));
        assert_ne!(fnv1a(b"tta"), fnv1a(b"ttb"));
    }
}
