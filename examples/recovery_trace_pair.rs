//! The recovery story in one trace pair: the *same* transient replay
//! fault run twice, once with the seed's absorbing freeze
//! (`RestartPolicy::Never`) and once with a watchdog host.
//!
//! Under `never` the disturbance outlives the fault — the frozen node is
//! lost for the remaining life of the system even though the coupler
//! recovered at slot 60. The watchdog notices the silence, power-cycles
//! the controller, and the node re-runs startup and reintegrates: a
//! bounded time-to-repair instead of a permanent loss.
//!
//! ```sh
//! cargo run --release --example recovery_trace_pair
//! ```

use tta::guardian::{CouplerAuthority, CouplerFaultMode};
use tta::protocol::RestartPolicy;
use tta::sim::{
    CouplerFaultEvent, FaultPersistence, FaultPlan, RecoveryOutcome, SimBuilder, SimReport,
    Topology,
};

fn run(policy: RestartPolicy) -> SimReport {
    let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
        channel: 0,
        mode: CouplerFaultMode::OutOfSlot,
        from_slot: 16,
        to_slot: 64, // transient: the coupler is healthy again afterwards
        persistence: FaultPersistence::Transient,
    });
    SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::FullShifting)
        .slots(400)
        .plan(plan)
        .restart_policy(policy)
        .build()
        .run()
}

fn narrate(title: &str, report: &SimReport) {
    println!("## {title}\n");
    for (slot, event) in report.log().entries() {
        println!("[{slot:>4}] {event}");
    }
    println!();
    println!("{report}");
    println!(
        "outcome: {}, unavailability {:.3}\n",
        RecoveryOutcome::classify(report),
        report.unavailability(4)
    );
}

fn main() {
    let lost = run(RestartPolicy::Never);
    narrate(
        "1. restart policy `never`: the transient becomes permanent",
        &lost,
    );
    assert_eq!(
        RecoveryOutcome::classify(&lost),
        RecoveryOutcome::PermanentLoss
    );

    let recovered = run(RestartPolicy::Watchdog { silence_slots: 8 });
    narrate(
        "2. restart policy `watchdog(8)`: bounded time-to-repair",
        &recovered,
    );
    assert_eq!(
        RecoveryOutcome::classify(&recovered),
        RecoveryOutcome::Recovered
    );

    println!(
        "same fault, same seed, same horizon: availability {:.3} -> {:.3}, \
         time to reintegration {} slots",
        1.0 - lost.unavailability(4),
        1.0 - recovered.unavailability(4),
        recovered
            .time_to_reintegration()
            .expect("the watchdog run recovered"),
    );
}
