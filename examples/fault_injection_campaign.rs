//! A compact bus-vs-star fault-injection campaign: which topology
//! contains which fault class?
//!
//! This is the interactive version of `exp_fault_injection`; it runs
//! fewer trials and prints one concrete failing log so the propagation
//! mechanism is visible, not just counted.
//!
//! ```sh
//! cargo run --release --example fault_injection_campaign
//! ```

use tta::guardian::sos::SosDomain;
use tta::guardian::CouplerAuthority;
use tta::sim::{
    Campaign, FaultPersistence, FaultPlan, NodeFault, NodeFaultKind, Scenario, SimBuilder,
    SlotEvent, Topology,
};
use tta::types::NodeId;

fn main() {
    // --- 1. Aggregate: propagation rates per topology.
    println!("## 1. Campaign: SOS sender, 20 trials per topology\n");
    for (label, topology, authority) in [
        (
            "bus / local guardians ",
            Topology::Bus,
            CouplerAuthority::Passive,
        ),
        (
            "star / small shifting ",
            Topology::Star,
            CouplerAuthority::SmallShifting,
        ),
    ] {
        let report = Campaign::new(4, topology, authority)
            .trials(20)
            .run(Scenario::SosSender);
        println!(
            "  {label}: {:>3.0}% of trials froze a healthy node or broke startup",
            report.propagation_rate() * 100.0
        );
    }

    // --- 2. One concrete bus trial, step by step.
    println!("\n## 2. Anatomy of one SOS propagation on the bus\n");
    let plan = FaultPlan::none().with_node_fault(NodeFault {
        node: NodeId::new(0),
        kind: NodeFaultKind::Sos {
            domain: SosDomain::Value,
            magnitude: 0.5,
        },
        from_slot: 60,
        to_slot: 300,
        persistence: FaultPersistence::Transient,
    });
    let report = SimBuilder::new(4)
        .topology(Topology::Bus)
        .slots(300)
        .plan(plan.clone())
        .build()
        .run();
    for (slot, event) in report.log().entries().iter().filter(|(_, e)| {
        matches!(
            e,
            SlotEvent::SosDisagreement { .. } | SlotEvent::HealthyNodeFroze { .. }
        )
    }) {
        println!("  [{slot:>4}] {event}");
    }
    println!("\n{report}");

    // --- 3. The same fault against the reshaping star.
    println!("## 3. The same fault against a small-shifting star coupler\n");
    let star = SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::SmallShifting)
        .slots(300)
        .plan(plan)
        .build()
        .run();
    let reshaped = star
        .log()
        .count(|e| matches!(e, SlotEvent::GuardianReshaped { .. }));
    println!("  frames reshaped by the central guardian: {reshaped}");
    println!("  healthy nodes frozen: {}", star.healthy_frozen().len());
    assert!(star.healthy_frozen().is_empty());
    println!(
        "\nThe guardian repairs the marginal signal before any receiver can disagree\n\
         about it — the benefit that motivated centralization (paper Section 2.2)."
    );
}
