//! Exploring the formal model interactively: liveness witnesses, the
//! reachable state graph as Graphviz DOT, and reachability queries.
//!
//! ```sh
//! cargo run --release --example model_explorer > cluster.dot
//! dot -Tsvg cluster.dot -o cluster.svg   # if graphviz is installed
//! ```

use tta::core::{find_startup_witness, narrate_compressed, ClusterConfig, ClusterModel};
use tta::guardian::CouplerAuthority;
use tta::modelcheck::{Explorer, StateGraph};
use tta::protocol::ProtocolState;

fn main() {
    // --- 1. Liveness witness: the cluster CAN fully start (non-vacuity
    //        of the paper's safety property), and here is how.
    eprintln!("## 1. Shortest path to a fully active 4-node cluster\n");
    let config = ClusterConfig::paper(CouplerAuthority::SmallShifting);
    let witness = find_startup_witness(&config).expect("the cluster can start");
    let model = ClusterModel::new(config);
    for line in narrate_compressed(&model, &witness) {
        eprintln!("{line}");
    }
    eprintln!(
        "\n({} slot transitions from all-frozen to all-active)\n",
        witness.transition_count()
    );

    // --- 2. Reachability query: how early can the first replay happen?
    eprintln!("## 2. Reachability: earliest slot with a spent replay budget\n");
    let full = ClusterModel::new(ClusterConfig::paper(CouplerAuthority::FullShifting));
    let first_replay = Explorer::new()
        .find(&full, |s: &tta::core::ClusterState| {
            s.out_of_slot_used() > 0
        })
        .expect("replays are reachable");
    eprintln!(
        "a coupler can commit its first out-of-slot replay after {} slots\n\
         (it needs a buffered frame first — nothing can be replayed before\n\
         the first cold-start frame has crossed the coupler)\n",
        first_replay.transition_count()
    );

    // --- 3. State graph of a 2-node cluster, DOT on stdout.
    eprintln!("## 3. Writing the 2-node passive-coupler state graph to stdout as DOT\n");
    let small = ClusterModel::new(ClusterConfig {
        nodes: 2,
        ..ClusterConfig::paper(CouplerAuthority::Passive)
    });
    let graph = StateGraph::explore(&small, 200);
    eprintln!(
        "{} states, {} transitions{}",
        graph.states().len(),
        graph.edges().len(),
        if graph.is_truncated() {
            " (truncated)"
        } else {
            ""
        }
    );
    let dot = graph.to_dot(
        "two_node_cluster",
        |s| {
            s.nodes()
                .iter()
                .map(|n| format!("{}:{}", n.node_id(), n.protocol_state()))
                .collect::<Vec<_>>()
                .join("\\n")
        },
        |s| {
            s.nodes()
                .iter()
                .any(|n| n.protocol_state() == ProtocolState::Active)
        },
    );
    println!("{dot}");
    eprintln!("(highlighted nodes contain an active controller)");
}
