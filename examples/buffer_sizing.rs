//! Design-space exploration with the Section 6 analysis: given a crystal
//! tolerance and a frame mix, is a central guardian feasible — and what
//! frame sizes / clock rates does it permit?
//!
//! ```sh
//! cargo run --release --example buffer_sizing
//! ```

use tta::analysis::{
    clock_ratio_limit, max_buffer_bits, max_frame_bits, max_rho, min_buffer_bits,
    rho_from_crystal_ppm,
};
use tta::guardian::buffer::simulate_forwarding;
use tta::types::constants::{LINE_ENCODING_BITS, N_FRAME_MIN_BITS, X_FRAME_MAX_BITS};

fn main() {
    let le = LINE_ENCODING_BITS;
    let f_min = N_FRAME_MIN_BITS;

    println!("## Sizing a central bus guardian's bit buffer\n");

    // 1. A concrete design point: ±100 ppm crystals, full TTP/C frame mix.
    let rho = rho_from_crystal_ppm(100.0);
    let b_min = min_buffer_bits(le, rho, X_FRAME_MAX_BITS);
    let b_max = max_buffer_bits(f_min);
    println!(
        "design point: ±100 ppm crystals (ρ = {rho:.4}), frames {f_min}..{X_FRAME_MAX_BITS} bits"
    );
    println!("  required buffer  B_min = le + ρ·f_max = {b_min:.2} bits");
    println!("  permitted buffer B_max = f_min − 1    = {b_max} bits");
    println!(
        "  → feasible: {} (margin {:.1} bits)\n",
        b_min < f64::from(b_max),
        f64::from(b_max) - b_min
    );

    // 2. How far can the frame size grow before the bound binds? (eq. 6)
    let headline = max_frame_bits(f_min, le, rho).expect("feasible ρ");
    println!("largest safe frame at this ρ (eq. 6): {headline:.0} bits");
    let sim = simulate_forwarding(headline.round() as u32, 1.0, 1.0 - rho, le);
    println!(
        "  executable check: forwarding such a frame peaks at {} buffered bits (B_max = {b_max})\n",
        sim.peak_occupancy_bits
    );

    // 3. Sweep crystal quality: how much clock mismatch can each frame mix take?
    println!("clock-rate budget per frame mix (eq. 7):");
    println!("  {:<28} {:>10}", "frame mix", "ρ limit");
    for (label, f_max) in [
        ("protocol minimum (76 b)", 76u32),
        ("CAN-sized payloads (512 b)", 512),
        ("full X-frames (2076 b)", X_FRAME_MAX_BITS),
        ("jumbo (10 kb)", 10_000),
    ] {
        let limit = max_rho(f_min, f_max, le).expect("feasible");
        println!("  {label:<28} {:>9.2}%", limit * 100.0);
    }

    // 4. Mixed-speed links: the Figure 3 ratio limit.
    println!("\nmixed-speed links (eq. 10): admissible fast:slow clock ratio");
    println!("  {:<28} {:>10}", "f_min..f_max (bits)", "max ratio");
    for (f_lo, f_hi) in [(28u32, 76u32), (28, 2076), (128, 128), (512, 2076)] {
        let ratio = clock_ratio_limit(f_hi, f_lo, le).expect("feasible");
        println!("  {:<28} {ratio:>9.1}:1", format!("{f_lo}..{f_hi}"));
    }
    println!(
        "\nConclusion (paper Section 6): slow cheap links and fast capable links on one\n\
         guarded hub are mutually exclusive unless the frame-size range stays narrow."
    );
}
