//! Quickstart: bring up a TTA cluster, watch it cold-start, then verify
//! the paper's property for every guardian authority level.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tta::core::{verify_cluster, ClusterConfig, Verdict};
use tta::guardian::CouplerAuthority;
use tta::sim::{FaultPlan, SimBuilder, Topology};

fn main() {
    // --- 1. Simulate a fault-free startup and print the interesting slots.
    println!("## 1. Cold-starting a 4-node TTA star cluster (no faults)\n");
    let report = SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::SmallShifting)
        .slots(120)
        .plan(FaultPlan::none())
        .build()
        .run();
    println!("{}", report.log());
    println!("{report}");

    // --- 2. Verify the Section 5 property for each authority level.
    println!("## 2. Model-checking the Section 5 property per authority level\n");
    for authority in CouplerAuthority::all() {
        let result = verify_cluster(&ClusterConfig::paper(authority));
        let verdict = match result.verdict {
            Verdict::Holds => "holds".to_string(),
            Verdict::Violated => format!(
                "VIOLATED (shortest counterexample: {} slots)",
                result.counterexample_len().expect("violated ⇒ trace")
            ),
            Verdict::BudgetExhausted => "inconclusive (budget)".to_string(),
        };
        println!(
            "  {authority:<16} → {verdict}  [{} states in {:?}]",
            result.stats.states_explored, result.stats.duration
        );
    }
    println!(
        "\nFull-frame buffering is the only capability that breaks the property —\n\
         the paper's headline tradeoff. Run `cargo run -p tta-bench --bin \
         exp_trace_coldstart`\nfor the narrated counterexample."
    );
}
