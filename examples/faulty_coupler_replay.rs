//! The paper's headline failure, end to end: a full-shifting star coupler
//! replays a buffered frame out of its slot and a healthy node freezes.
//!
//! Shown twice — first found exhaustively by the model checker (with the
//! paper's numbered narrative), then executed concretely in the
//! simulator.
//!
//! ```sh
//! cargo run --release --example faulty_coupler_replay
//! ```

use tta::core::{narrate_compressed, verify_cluster, ClusterConfig, ClusterModel, Verdict};
use tta::guardian::{CouplerAuthority, CouplerFaultMode};
use tta::sim::{CouplerFaultEvent, FaultPersistence, FaultPlan, SimBuilder, SlotEvent, Topology};

fn main() {
    // --- 1. The model checker finds the failure and narrates it.
    println!("## 1. Model checker: shortest path to the failure (≤1 replay)\n");
    let config = ClusterConfig::paper_trace_cold_start();
    let report = verify_cluster(&config);
    assert_eq!(report.verdict, Verdict::Violated);
    let trace = report.counterexample.expect("violated ⇒ counterexample");
    let model = ClusterModel::new(config);
    for line in narrate_compressed(&model, &trace) {
        println!("{line}");
    }
    println!(
        "\n(found in {:?}, {} states — the paper reports \"less than a minute\")\n",
        report.stats.duration, report.stats.states_explored
    );

    // --- 2. The simulator executes the same fault against a starting cluster.
    println!("## 2. Simulator: replaying frames while nodes integrate\n");
    let plan = FaultPlan::none().with_coupler_fault(CouplerFaultEvent {
        channel: 0,
        mode: CouplerFaultMode::OutOfSlot,
        from_slot: 12,
        to_slot: 200,
        persistence: FaultPersistence::Transient,
    });
    let sim_report = SimBuilder::new(4)
        .topology(Topology::Star)
        .authority(CouplerAuthority::FullShifting)
        .slots(200)
        .plan(plan)
        .build()
        .run();
    let replays = sim_report
        .log()
        .count(|e| matches!(e, SlotEvent::CouplerReplay { .. }));
    println!("{sim_report}");
    println!("coupler replays injected: {replays}");
    assert!(
        !sim_report.healthy_frozen().is_empty() || !sim_report.cluster_started(),
        "the replay fault disturbs the cluster"
    );
    println!(
        "\nThe same fault cannot exist below full-shifting authority: a coupler\n\
         prohibited from buffering a whole frame has nothing to replay (eq. 3)."
    );
}
